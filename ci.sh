#!/usr/bin/env bash
# Offline CI gate: format, build, tier-1 tests, smoke benches (perf,
# trace, robustness, portfolio, sweep, serve).
# The workspace is hermetic (no registry deps), so everything here runs
# with no network access. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --workspace --release --offline

echo "== tier-1: cargo test"
cargo test --workspace -q --offline

echo "== perf smoke (--quick)"
cargo run --release --offline -p tlb-bench --bin perf_smoke -- --quick

echo "== trace smoke (--quick)"
cargo run --release --offline -p tlb-bench --bin trace_smoke -- --quick

echo "== robustness smoke (--quick)"
cargo run --release --offline -p tlb-bench --bin robustness_smoke -- --quick

echo "== portfolio smoke (--quick)"
cargo run --release --offline -p tlb-bench --bin portfolio_smoke -- --quick

echo "== sweep smoke (--quick)"
cargo run --release --offline -p tlb-bench --bin sweep_smoke -- --quick

echo "== serve smoke (--quick, loopback only)"
cargo run --release --offline -p tlb-bench --bin serve_smoke -- --quick

echo "CI gate passed."
