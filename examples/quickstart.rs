//! Quickstart: balance an imbalanced MPI+OmpSs-2-style workload across
//! two nodes, comparing the paper's configurations.
//!
//! Run with: `cargo run --release --example quickstart`

use tlb::cluster::{ClusterSim, RunSpec, SpecWorkload, TaskSpec};
use tlb::core::{BalanceConfig, DromPolicy, Platform, Preset};

fn main() {
    // A 2-node, 8-cores-per-node virtual cluster.
    let platform = Platform::homogeneous(2, 8);

    // Two appranks (one per node). Apprank 0 creates 3x the work: the
    // kind of imbalance a mixed linear/non-linear FE mesh produces.
    let task = TaskSpec::compute(0.050); // 50 ms of single-core compute
    let heavy: Vec<TaskSpec> = (0..240).map(|_| task.clone()).collect();
    let light: Vec<TaskSpec> = (0..80).map(|_| task.clone()).collect();
    let workload = SpecWorkload::iterated(vec![heavy, light], 6);

    let total_work = workload.total_work();
    let perfect = total_work / platform.effective_capacity() / 6.0;
    println!("perfect balance bound: {perfect:.3} s/iteration\n");

    let configs = [
        (
            "baseline (no DLB, no offloading)",
            BalanceConfig::preset(Preset::Baseline),
        ),
        ("single-node DLB", BalanceConfig::preset(Preset::NodeDlb)),
        (
            "LeWI only, degree 2",
            BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Off,
            }),
        ),
        (
            "local policy, degree 2",
            BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Local,
            }),
        ),
        (
            "global policy, degree 2",
            BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Global,
            }),
        ),
    ];
    for (name, cfg) in configs {
        let report =
            ClusterSim::execute(RunSpec::new(&platform, &cfg, workload.clone()).trace(true))
                .expect("valid configuration");
        println!(
            "{name:36} {:7.3} s/iter  (offloaded {:4.1}% of tasks, {} events)",
            report.mean_iteration_secs(2),
            100.0 * report.offload_fraction(),
            report.events,
        );
    }
}
