//! A miniature of the paper's Fig. 8 sweep: execution time per iteration
//! vs application imbalance, for several offloading degrees, printed as
//! an ASCII chart.
//!
//! Run with: `cargo run --release --example synthetic_sweep`

use tlb::apps::synthetic::{synthetic_workload, SyntheticConfig};
use tlb::cluster::{ClusterSim, RunSpec};
use tlb::core::{BalanceConfig, DromPolicy, Platform, Preset};

fn main() {
    let nodes = 8;
    let platform = Platform::mn4(nodes);
    let degrees = [1usize, 2, 4];
    let imbalances = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];

    println!("synthetic benchmark, {nodes} nodes, 1 apprank/node (s/iteration)\n");
    print!("{:>10}", "imbalance");
    for d in degrees {
        print!("{:>12}", format!("degree {d}"));
    }
    println!("{:>12}", "perfect");

    for imb in imbalances {
        let mut cfg = SyntheticConfig::new(nodes, imb);
        cfg.iterations = 3;
        let wl = synthetic_workload(&cfg, &platform);
        let perfect = wl.rank_work(0).iter().sum::<f64>() / platform.effective_capacity();
        print!("{imb:>10.1}");
        for d in degrees {
            let bc = if d == 1 {
                BalanceConfig::preset(Preset::NodeDlb)
            } else {
                BalanceConfig::preset(Preset::Offload {
                    degree: d,
                    drom: DromPolicy::Global,
                })
            };
            let r = ClusterSim::execute(RunSpec::new(&platform, &bc, wl.clone())).unwrap();
            print!("{:>12.3}", r.mean_iteration_secs(1));
        }
        println!("{perfect:>12.3}");
    }
    println!("\ndegree 1 grows linearly with the imbalance; degree 4 stays near perfect.");
}
