//! n-body with one slow node: first a *real* Barnes–Hut step (octree +
//! forces + leapfrog) on threads, then the paper's Fig. 6(c) scenario in
//! the cluster simulator — ORB equalises body counts, the slow node lags,
//! and transparent offloading recovers the loss.
//!
//! Run with: `cargo run --release --example nbody_slow_node`

use tlb::apps::nbody::{
    direct_accelerations, orb_partition, Body, NBodyConfig, NBodyWorkload, Octree,
};
use tlb::cluster::{ClusterSim, RunSpec};
use tlb::core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb::smprt::parallel_for;

fn main() {
    // --- Real kernel: one Barnes–Hut step on this machine. ---
    let mut rng = tlb::core::rng::Rng::seed_from_u64(11);
    let n = 20_000;
    let bodies: Vec<Body> = (0..n)
        .map(|_| {
            Body::at(
                [
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                ],
                rng.range_f64(0.5, 2.0),
            )
        })
        .collect();
    let tree = Octree::build(&bodies, 0.5);
    let acc: Vec<std::sync::Mutex<[f64; 3]>> =
        (0..n).map(|_| std::sync::Mutex::new([0.0; 3])).collect();
    let threads = std::thread::available_parallelism().map_or(4, |v| v.get());
    let t0 = std::time::Instant::now();
    parallel_for(n, 256, threads, |i| {
        *acc[i].lock().unwrap() = tree.acceleration(&bodies[i].pos, Some(i));
    });
    println!(
        "Barnes-Hut forces for {n} bodies on {threads} threads: {:.1?}",
        t0.elapsed()
    );
    // Spot-check against the direct sum on a small subset.
    let sample: Vec<Body> = bodies.iter().take(200).copied().collect();
    let direct = direct_accelerations(&sample);
    let a0 = *acc[0].lock().unwrap();
    let rel = (0..3).map(|d| (a0[d] - direct[0][d]).abs()).sum::<f64>()
        / direct[0].iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
    println!("force error vs direct (body 0, partial sum basis): {rel:.3}\n");

    // ORB partitioning of the same bodies.
    let parts = orb_partition(&bodies, 8);
    let mut counts = vec![0usize; 8];
    for &r in &parts {
        counts[r] += 1;
    }
    println!("ORB body counts over 8 ranks: {counts:?}\n");

    // --- Fig. 6(c) scenario in the cluster simulator. ---
    let nodes = 8;
    let ranks = nodes * 2;
    let platform = Platform::nord3(nodes, &[0]); // node 0 at 1.8 GHz
    let mk = || {
        let mut cfg = NBodyConfig::new(20_000 * ranks, ranks);
        cfg.force_cost = 2e-6;
        cfg.iterations = 6;
        NBodyWorkload::new(cfg)
    };
    for (name, cfg) in [
        ("baseline", BalanceConfig::preset(Preset::Baseline)),
        ("single-node DLB", BalanceConfig::preset(Preset::NodeDlb)),
        (
            "degree-3 offloading",
            BalanceConfig::preset(Preset::Offload {
                degree: 3,
                drom: DromPolicy::Global,
            }),
        ),
    ] {
        let r = ClusterSim::execute(RunSpec::new(&platform, &cfg, mk())).unwrap();
        println!("{name:22} {:7.3} s/iter", r.mean_iteration_secs(2));
    }
}
