//! Dynamic work spreading (paper §5.2 future work): the runtime grows the
//! expander graph at run time — helper ranks are spawned only where the
//! global solver finds an apprank capacity-constrained.
//!
//! Run with: `cargo run --release --example dynamic_spreading`

use tlb::cluster::{ClusterSim, RunSpec, SpecWorkload, TaskSpec};
use tlb::core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb::des::SimTime;

fn main() {
    // 6 nodes, one very hot apprank: the interesting case for provisioning.
    let nodes = 6;
    let cores = 8;
    let platform = Platform::homogeneous(nodes, cores);
    let mk_rank = |n: usize| (0..n).map(|_| TaskSpec::compute(0.05)).collect::<Vec<_>>();
    let mut ranks = vec![mk_rank(cores * 30)]; // hot rank: ~3.8x the average
    ranks.extend((1..nodes).map(|_| mk_rank(cores * 6)));
    let workload = SpecWorkload::iterated(ranks, 10);

    let mut configs: Vec<(&str, BalanceConfig)> = vec![
        (
            "baseline (degree 1)",
            BalanceConfig::preset(Preset::Baseline),
        ),
        (
            "static degree 2",
            BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Global,
            }),
        ),
        (
            "static degree 4",
            BalanceConfig::preset(Preset::Offload {
                degree: 4,
                drom: DromPolicy::Global,
            }),
        ),
        (
            "dynamic (1 -> <=4)",
            BalanceConfig::preset(Preset::DynamicSpread { max_degree: 4 }),
        ),
    ];
    for (_, cfg) in configs.iter_mut() {
        cfg.global_period = SimTime::from_millis(500);
    }

    println!("one hot apprank on {nodes} nodes x {cores} cores; 10 iterations\n");
    for (name, cfg) in configs {
        let r = ClusterSim::execute(RunSpec::new(&platform, &cfg, workload.clone())).unwrap();
        println!(
            "{name:22} {:7.3} s/iter   helpers spawned: {:2}   offloaded {:4.1}%",
            r.mean_iteration_secs(4),
            r.spawned_helpers,
            100.0 * r.offload_fraction(),
        );
    }
    println!(
        "\nthe dynamic variant provisions helpers only for the hot apprank, \
approaching the\nstatically over-provisioned configurations with a fraction of the helper ranks."
    );
}
