//! Blocked Cholesky as a task DAG: the canonical OmpSs-2 workload running
//! on the real-thread runtime, verified against `L·Lᵀ = A`.
//!
//! Run with: `cargo run --release --example cholesky_tasks`

use tlb::apps::cholesky::{BlockMatrix, Cholesky};
use tlb::smprt::Pool;

fn main() {
    let (nb, b) = (8usize, 32usize);
    let n = nb * b;
    let a = BlockMatrix::spd(nb, b, 42);
    println!("factorising a {n}x{n} SPD matrix in {b}x{b} blocks ({nb}x{nb} grid)\n");

    // Serial reference.
    let mut serial = a.clone();
    let t0 = std::time::Instant::now();
    Cholesky::factor_serial(&mut serial);
    let serial_time = t0.elapsed();
    println!(
        "serial: {serial_time:.2?}, residual {:.2e}",
        Cholesky::residual(&serial, &a)
    );

    // Task DAG on the pool.
    let threads = std::thread::available_parallelism()
        .map_or(4, |v| v.get())
        .min(8);
    let pool = Pool::new(threads);
    let mut tasked = a.clone();
    let t0 = std::time::Instant::now();
    let tasks = Cholesky::factor_tasked(&mut tasked, &pool);
    let tasked_time = t0.elapsed();
    println!(
        "tasked: {tasked_time:.2?} with {tasks} tasks on {threads} threads, residual {:.2e}",
        Cholesky::residual(&tasked, &a)
    );
    // ~n³/3 flops.
    let gflops = (n as f64).powi(3) / 3.0 / tasked_time.as_secs_f64() / 1e9;
    println!("effective: {gflops:.2} GF/s (naive kernels, no SIMD/BLAS)");
}
