//! Explore expander graph quality: generate random bipartite biregular
//! graphs for several shapes, check connectivity and the vertex
//! isoperimetric number, and compare against ring (circulant) layouts.
//!
//! Run with: `cargo run --release --example expander_explore`

use tlb::expander::{generate_circulant, isoperimetric_exact, BipartiteGraph, ExpanderConfig};

fn main() {
    println!(
        "{:>14} {:>7} {:>11} {:>12}",
        "shape", "degree", "connected", "iso (1+eps)"
    );
    for &(appranks, nodes) in &[(8usize, 8usize), (16, 16), (32, 16)] {
        for degree in 1..=4usize {
            let cfg = ExpanderConfig::new(appranks, nodes, degree)
                .with_seed(42)
                .with_candidates(32);
            let g = BipartiteGraph::generate(&cfg).expect("generate");
            let iso = if appranks <= 20 {
                isoperimetric_exact(&g)
            } else {
                g.isoperimetric_number()
            };
            println!(
                "{:>14} {degree:>7} {:>11} {iso:>12.3}",
                format!("{appranks}x{nodes}"),
                g.is_connected(),
            );
        }
    }

    // Random expander vs deterministic ring at the same degree.
    println!("\nrandom vs ring at 16x16:");
    for degree in 2..=4usize {
        let ring_strides: Vec<usize> = (1..degree).collect();
        let ring = generate_circulant(&ExpanderConfig::new(16, 16, degree), &ring_strides).unwrap();
        let rnd = BipartiteGraph::generate(
            &ExpanderConfig::new(16, 16, degree)
                .with_seed(7)
                .with_candidates(64),
        )
        .unwrap();
        println!(
            "  degree {degree}: ring iso {:.3}, random iso {:.3}",
            isoperimetric_exact(&ring),
            isoperimetric_exact(&rnd),
        );
    }
    println!("\nan apprank's nodes (32x16, degree 3): {:?}", {
        let g = BipartiteGraph::generate(&ExpanderConfig::new(32, 16, 3).with_seed(7)).unwrap();
        (0..4).map(|a| g.nodes_of(a).to_vec()).collect::<Vec<_>>()
    });
}
