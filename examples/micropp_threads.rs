//! Run the *real* MicroPP micro-scale FE kernel on the real-thread
//! work-stealing runtime, with LeWI sharing cores between two imbalanced
//! "processes" on one node — shared-memory DLB with actual compute.
//!
//! Run with: `cargo run --release --example micropp_threads`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tlb::apps::micropp::{calibrate, MicroProblem};
use tlb::smprt::{GraphRun, LewiCoupler, Pool};
use tlb::tasking::TaskDef;

fn subproblem_run(
    n_tasks: usize,
    grid: usize,
    nonlinear_every: usize,
    solved: Arc<AtomicUsize>,
) -> GraphRun {
    let mut run = GraphRun::new();
    for i in 0..n_tasks {
        let solved = Arc::clone(&solved);
        let nonlinear = nonlinear_every != 0 && i % nonlinear_every == 0;
        run.task(TaskDef::new("subproblem").cost(1.0), move || {
            let mut p = MicroProblem::new(grid, nonlinear);
            let stats = p.solve();
            assert!(stats.residual.is_finite());
            solved.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
    }
    run
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(8);
    println!("host calibration (8³ grid): {:?}\n", calibrate(8, 2));

    // Two "MPI processes" on one node share `cores` cores via DLB/LeWI.
    let pool_a = Arc::new(Pool::new(cores));
    let pool_b = Arc::new(Pool::new(cores));
    let own = cores / 2;
    let coupler = LewiCoupler::start(
        vec![Arc::clone(&pool_a), Arc::clone(&pool_b)],
        vec![own, cores - own],
        Duration::from_micros(500),
    );

    // Process A has the non-linear-heavy mesh partition (3x the work);
    // process B a light one. LeWI lends B's idle cores to A.
    let solved_a = Arc::new(AtomicUsize::new(0));
    let solved_b = Arc::new(AtomicUsize::new(0));
    let run_a = subproblem_run(120, 8, 3, Arc::clone(&solved_a));
    let run_b = subproblem_run(40, 8, 0, Arc::clone(&solved_b));

    let t0 = std::time::Instant::now();
    let a = Arc::clone(&pool_a);
    let handle = std::thread::spawn(move || a.run(run_a));
    let stats_b = pool_b.run(run_b);
    let stats_a = handle.join().expect("process A");
    let elapsed = t0.elapsed();
    let dlb = coupler.stop();

    println!(
        "process A: {} subproblems on up to {} workers ({} steals)",
        solved_a.load(Ordering::Relaxed),
        stats_a.per_worker.iter().filter(|&&n| n > 0).count(),
        stats_a.steals,
    );
    println!(
        "process B: {} subproblems ({} steals)",
        solved_b.load(Ordering::Relaxed),
        stats_b.steals,
    );
    println!(
        "wall time: {elapsed:.2?}; all cores idle again: {}",
        dlb.busy_count() == 0
    );
}
