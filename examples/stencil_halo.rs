//! Heat-diffusion stencil: first the *real* Jacobi kernel as OmpSs-2-style
//! tasks on real threads (halo rows expressed as data regions, so edge
//! blocks automatically order behind their neighbours), then the
//! distributed halo-exchange workload in the cluster simulator with an
//! imbalanced material profile.
//!
//! Run with: `cargo run --release --example stencil_halo`

use std::sync::Arc;
use tlb::apps::stencil::{JacobiGrid, StencilConfig, StencilWorkload};
use tlb::cluster::{ClusterSim, RunSpec};
use tlb::core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb::smprt::{GraphRun, Pool};
use tlb::tasking::{DataRegion, TaskDef};

fn main() {
    // --- Real kernel, serial reference. ---
    let mut grid = JacobiGrid::new(256, 256);
    let t0 = std::time::Instant::now();
    let (iters, res) = grid.solve(1e-4, 2000);
    println!(
        "serial Jacobi 256x256: {iters} sweeps to residual {res:.2e} in {:.2?}",
        t0.elapsed()
    );

    // --- The same sweeps as tasks with region dependencies. ---
    // Each task re-runs `sweeps_per_task` sweeps of a private sub-grid;
    // region annotations order tasks that share strip boundaries.
    let pool = Pool::new(
        std::thread::available_parallelism()
            .map_or(4, |n| n.get())
            .min(8),
    );
    let strips = 8usize;
    let mut run = GraphRun::new();
    let grids: Vec<Arc<parking::Mutex<JacobiGrid>>> = (0..strips)
        .map(|_| Arc::new(parking::Mutex::new(JacobiGrid::new(128, 64))))
        .collect();
    // Double-buffered virtual layout: bank b, strip k owns
    // [bank_base(b) + k*0x1000, ...). Each step reads its neighbourhood in
    // one bank and writes the other, so strips of the same step run in
    // parallel while consecutive steps order through the banks.
    let strip_region =
        |bank: usize, k: usize| DataRegion::new(0x10_0000 + bank * 0x100_0000 + k * 0x1000, 0x1000);
    for step in 0..4 {
        let (read_bank, write_bank) = (step % 2, (step + 1) % 2);
        for (k, g) in grids.iter().enumerate() {
            let g = Arc::clone(g);
            let mut def = TaskDef::new(format!("sweep s{step} k{k}"))
                .reads(strip_region(read_bank, k))
                .writes(strip_region(write_bank, k));
            // Edge coupling: also read the neighbouring strips.
            if k > 0 {
                def = def.reads(strip_region(read_bank, k - 1));
            }
            if k + 1 < strips {
                def = def.reads(strip_region(read_bank, k + 1));
            }
            run.task(def, move || {
                let mut g = g.lock();
                for _ in 0..10 {
                    g.step();
                }
            })
            .unwrap();
        }
    }
    let t0 = std::time::Instant::now();
    let stats = pool.run(run);
    println!(
        "tasked sweeps: {} tasks over {} workers in {:.2?} ({} steals)\n",
        stats.tasks_executed,
        stats.per_worker.iter().filter(|&&n| n > 0).count(),
        t0.elapsed(),
        stats.steals,
    );

    // --- Distributed stencil with an imbalanced material gradient. ---
    let nodes = 4;
    let platform = Platform::homogeneous(nodes, 8);
    let mk = || {
        let mut cfg = StencilConfig::new(nodes, 256, 128).with_gradient(0.5, 2.0);
        cfg.secs_per_row = 1e-3;
        cfg.rows_per_task = 4; // fine-grained blocks give the balancer room
        cfg.iterations = 20;
        StencilWorkload::new(cfg)
    };
    for (name, mut cfg) in [
        ("baseline", BalanceConfig::preset(Preset::Baseline)),
        (
            "degree-2 global",
            BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Global,
            }),
        ),
        (
            "degree-3 global",
            BalanceConfig::preset(Preset::Offload {
                degree: 3,
                drom: DromPolicy::Global,
            }),
        ),
    ] {
        cfg.global_period = tlb::des::SimTime::from_millis(100);
        let r = ClusterSim::execute(RunSpec::new(&platform, &cfg, mk())).unwrap();
        println!(
            "{name:18} {:7.3} s/iter  (offloaded {:4.1}%, efficiency {:.2})",
            r.mean_iteration_secs(5),
            100.0 * r.offload_fraction(),
            r.parallel_efficiency,
        );
    }
}

// Tiny unwrapping-mutex shim to keep the example dependency-free.
mod parking {
    pub struct Mutex<T>(std::sync::Mutex<T>);
    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap()
        }
    }
}
