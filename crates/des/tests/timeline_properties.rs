//! Randomized tests for the timeline/statistics machinery: the trace maths
//! every figure rests on must satisfy basic measure-theoretic identities.
//! Seeded `tlb-rng` loops stand in for proptest (no registry deps).

use tlb_des::{BusyIntegral, SimTime, Timeline};
use tlb_rng::Rng;

fn gen_samples(rng: &mut Rng) -> Vec<(u64, f64)> {
    let n = rng.range_usize(1, 40);
    let mut v: Vec<(u64, f64)> = (0..n)
        .map(|_| (rng.range_u64(0, 10_000), rng.range_f64(0.0, 64.0)))
        .collect();
    v.sort_by_key(|&(t, _)| t);
    v.dedup_by_key(|&mut (t, _)| t);
    v
}

const CASES: usize = 256;

/// Integral is additive over adjacent intervals.
#[test]
fn integral_additivity() {
    let root = Rng::seed_from_u64(0xDE5_0001);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let samples = gen_samples(&mut rng);
        let cut = rng.range_u64(0, 10_000);
        let mut tl = Timeline::new();
        for &(ms, v) in &samples {
            tl.record(SimTime::from_millis(ms), v);
        }
        let lo = SimTime::ZERO;
        let mid = SimTime::from_millis(cut);
        let hi = SimTime::from_millis(10_000);
        let (a, b) = if mid <= hi { (mid, hi) } else { (hi, mid) };
        let whole = tl.integral(lo, b.max(hi));
        let split = tl.integral(lo, a) + tl.integral(a, b.max(hi));
        assert!(
            (whole - split).abs() < 1e-9 * whole.abs().max(1.0),
            "case {case}: {whole} vs {split}"
        );
    }
}

/// The integral equals the sum over recorded segments computed naively.
#[test]
fn integral_matches_naive() {
    let root = Rng::seed_from_u64(0xDE5_0002);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let samples = gen_samples(&mut rng);
        let mut tl = Timeline::new();
        for &(ms, v) in &samples {
            tl.record(SimTime::from_millis(ms), v);
        }
        let end = SimTime::from_millis(20_000);
        let fast = tl.integral(SimTime::ZERO, end);
        // Naive: step through the recorded sample points.
        let mut naive = 0.0;
        for w in samples.windows(2) {
            naive += w[0].1 * (w[1].0 - w[0].0) as f64 / 1000.0;
        }
        let last = samples.last().unwrap();
        naive += last.1 * (20_000 - last.0) as f64 / 1000.0;
        assert!(
            (fast - naive).abs() < 1e-6 * naive.abs().max(1.0),
            "case {case}: {fast} vs {naive}"
        );
    }
}

/// Mean lies within [min, max] of the recorded values.
#[test]
fn mean_is_bounded() {
    let root = Rng::seed_from_u64(0xDE5_0003);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let samples = gen_samples(&mut rng);
        let mut tl = Timeline::new();
        for &(ms, v) in &samples {
            tl.record(SimTime::from_millis(ms), v);
        }
        let start = SimTime::from_millis(samples[0].0);
        let end = SimTime::from_millis(samples.last().unwrap().0 + 1000);
        let mean = tl.mean(start, end);
        let lo = samples.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|s| s.1).fold(0.0f64, f64::max);
        assert!(
            mean >= lo - 1e-9 && mean <= hi + 1e-9,
            "case {case}: mean {mean} outside [{lo},{hi}]"
        );
    }
}

/// BusyIntegral windows telescope: consecutive take_window averages,
/// weighted by their spans, reconstruct the total integral.
#[test]
fn busy_windows_telescope() {
    let root = Rng::seed_from_u64(0xDE5_0004);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let n = rng.range_usize(1, 30);
        let changes: Vec<(u64, usize)> = (0..n)
            .map(|_| (rng.range_u64(1, 500), rng.range_usize(0, 16)))
            .collect();
        let mut b = BusyIntegral::new();
        let mut now = SimTime::ZERO;
        let mut reconstructed = 0.0;
        let mut last_window_end = SimTime::ZERO;
        for (i, &(dt, cores)) in changes.iter().enumerate() {
            now += SimTime::from_millis(dt);
            b.set(now, cores as f64);
            if i % 3 == 2 {
                let avg = b.take_window(now);
                reconstructed += avg * (now - last_window_end).as_secs_f64();
                last_window_end = now;
            }
        }
        let end = now + SimTime::from_millis(100);
        let avg = b.take_window(end);
        reconstructed += avg * (end - last_window_end).as_secs_f64();
        let total = b.total(end);
        assert!(
            (reconstructed - total).abs() < 1e-9 * total.max(1.0),
            "case {case}: windows {reconstructed} vs total {total}"
        );
    }
}
