//! Property tests for the timeline/statistics machinery: the trace maths
//! every figure rests on must satisfy basic measure-theoretic identities.

use proptest::prelude::*;
use tlb_des::{BusyIntegral, SimTime, Timeline};

fn gen_samples() -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec((0u64..10_000, 0.0f64..64.0), 1..40).prop_map(|mut v| {
        v.sort_by_key(|&(t, _)| t);
        v.dedup_by_key(|&mut (t, _)| t);
        v
    })
}

proptest! {
    /// Integral is additive over adjacent intervals.
    #[test]
    fn integral_additivity(samples in gen_samples(), cut in 0u64..10_000) {
        let mut tl = Timeline::new();
        for &(ms, v) in &samples {
            tl.record(SimTime::from_millis(ms), v);
        }
        let lo = SimTime::ZERO;
        let mid = SimTime::from_millis(cut);
        let hi = SimTime::from_millis(10_000);
        let (a, b) = if mid <= hi { (mid, hi) } else { (hi, mid) };
        let whole = tl.integral(lo, b.max(hi));
        let split = tl.integral(lo, a) + tl.integral(a, b.max(hi));
        prop_assert!((whole - split).abs() < 1e-9 * whole.abs().max(1.0));
    }

    /// The integral equals the sum over recorded segments computed naively.
    #[test]
    fn integral_matches_naive(samples in gen_samples()) {
        let mut tl = Timeline::new();
        for &(ms, v) in &samples {
            tl.record(SimTime::from_millis(ms), v);
        }
        let end = SimTime::from_millis(20_000);
        let fast = tl.integral(SimTime::ZERO, end);
        // Naive: step through milliseconds... too slow; step through the
        // recorded sample points instead.
        let mut naive = 0.0;
        for w in samples.windows(2) {
            naive += w[0].1 * (w[1].0 - w[0].0) as f64 / 1000.0;
        }
        let last = samples.last().unwrap();
        naive += last.1 * (20_000 - last.0) as f64 / 1000.0;
        prop_assert!((fast - naive).abs() < 1e-6 * naive.abs().max(1.0), "{fast} vs {naive}");
    }

    /// Mean lies within [min, max] of the recorded values.
    #[test]
    fn mean_is_bounded(samples in gen_samples()) {
        let mut tl = Timeline::new();
        for &(ms, v) in &samples {
            tl.record(SimTime::from_millis(ms), v);
        }
        let start = SimTime::from_millis(samples[0].0);
        let end = SimTime::from_millis(samples.last().unwrap().0 + 1000);
        let mean = tl.mean(start, end);
        let lo = samples.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|s| s.1).fold(0.0f64, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean {mean} outside [{lo},{hi}]");
    }

    /// BusyIntegral windows telescope: consecutive take_window averages,
    /// weighted by their spans, reconstruct the total integral.
    #[test]
    fn busy_windows_telescope(changes in prop::collection::vec((1u64..500, 0usize..16), 1..30)) {
        let mut b = BusyIntegral::new();
        let mut now = SimTime::ZERO;
        let mut reconstructed = 0.0;
        let mut last_window_end = SimTime::ZERO;
        for (i, &(dt, cores)) in changes.iter().enumerate() {
            now += SimTime::from_millis(dt);
            b.set(now, cores as f64);
            if i % 3 == 2 {
                let avg = b.take_window(now);
                reconstructed += avg * (now - last_window_end).as_secs_f64();
                last_window_end = now;
            }
        }
        let end = now + SimTime::from_millis(100);
        let avg = b.take_window(end);
        reconstructed += avg * (end - last_window_end).as_secs_f64();
        let total = b.total(end);
        prop_assert!((reconstructed - total).abs() < 1e-9 * total.max(1.0),
            "windows {reconstructed} vs total {total}");
    }
}
