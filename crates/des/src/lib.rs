//! Deterministic discrete-event simulation engine.
//!
//! This crate is the substrate on which the OmpSs-2@Cluster runtime
//! reproduction executes: it provides a virtual clock ([`SimTime`]), an
//! event queue with deterministic tie-breaking ([`Simulator`]), and
//! time-series recording utilities ([`Timeline`], [`BusyIntegral`]) used to
//! regenerate the paper's traces and convergence plots.
//!
//! # Determinism
//!
//! Events scheduled for the same virtual instant are delivered in the order
//! they were scheduled (FIFO per timestamp), so a simulation driven by a
//! seeded RNG is fully reproducible. This mirrors the requirement in the
//! paper's methodology that experiment configurations be re-runnable.
//!
//! # Example
//!
//! ```
//! use tlb_des::{Simulator, SimTime, World, Ctx};
//!
//! struct Counter { fired: u32 }
//! enum Ev { Tick }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Ctx<Ev>, _ev: Ev) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             ctx.schedule_in(SimTime::from_millis(10), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_at(SimTime::ZERO, Ev::Tick);
//! let mut world = Counter { fired: 0 };
//! let end = sim.run(&mut world);
//! assert_eq!(world.fired, 3);
//! assert_eq!(end, SimTime::from_millis(20));
//! ```

mod queue;
mod stats;
mod time;
mod timeline;

pub use queue::{Ctx, EventQueue, Simulator, World};
pub use stats::{BusyIntegral, RunningStats};
pub use time::SimTime;
pub use timeline::{Timeline, TimelineSample};
