//! Small statistics helpers used by the load-measurement machinery.

use crate::SimTime;

/// Accumulates core·seconds of busy time, the quantity both DROM policies in
/// the paper use as their load estimate ("average number of busy cores").
///
/// The integral is maintained incrementally: call [`BusyIntegral::set`] each
/// time the number of busy cores changes, then query the windowed average.
#[derive(Clone, Debug)]
pub struct BusyIntegral {
    /// Accumulated core·seconds up to `last_change`.
    integral: f64,
    /// Busy-core count holding since `last_change`.
    current: f64,
    last_change: SimTime,
    /// Window start used by `take_window`.
    window_start: SimTime,
    window_base: f64,
}

impl Default for BusyIntegral {
    fn default() -> Self {
        Self::new()
    }
}

impl BusyIntegral {
    /// A fresh accumulator at time zero with zero busy cores.
    pub fn new() -> Self {
        BusyIntegral {
            integral: 0.0,
            current: 0.0,
            last_change: SimTime::ZERO,
            window_start: SimTime::ZERO,
            window_base: 0.0,
        }
    }

    /// Record that from time `at` onward, `busy` cores are busy.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous update.
    pub fn set(&mut self, at: SimTime, busy: f64) {
        assert!(at >= self.last_change, "busy integral updated out of order");
        self.integral += self.current * (at - self.last_change).as_secs_f64();
        self.current = busy;
        self.last_change = at;
    }

    /// The busy-core count currently holding.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Total core·seconds accumulated from time zero to `now`.
    pub fn total(&self, now: SimTime) -> f64 {
        assert!(now >= self.last_change);
        self.integral + self.current * (now - self.last_change).as_secs_f64()
    }

    /// Average busy cores over the current measurement window, then restart
    /// the window at `now`. This is the quantity the local-convergence
    /// policy samples each period.
    pub fn take_window(&mut self, now: SimTime) -> f64 {
        let span = (now - self.window_start).as_secs_f64();
        let total = self.total(now);
        let avg = if span > 0.0 {
            (total - self.window_base) / span
        } else {
            self.current
        };
        self.window_start = now;
        self.window_base = total;
        avg
    }

    /// Average busy cores over the current window without restarting it.
    pub fn peek_window(&self, now: SimTime) -> f64 {
        let span = (now - self.window_start).as_secs_f64();
        if span > 0.0 {
            (self.total(now) - self.window_base) / span
        } else {
            self.current
        }
    }
}

/// Streaming mean/variance (Welford) for wall-clock style measurements in
/// the benchmark harness.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_integral_accumulates() {
        let mut b = BusyIntegral::new();
        b.set(SimTime::ZERO, 4.0);
        b.set(SimTime::from_secs(1), 2.0);
        // 4 cores for 1s + 2 cores for 1s = 6 core·s
        assert!((b.total(SimTime::from_secs(2)) - 6.0).abs() < 1e-12);
        assert_eq!(b.current(), 2.0);
    }

    #[test]
    fn window_average_resets() {
        let mut b = BusyIntegral::new();
        b.set(SimTime::ZERO, 4.0);
        let avg = b.take_window(SimTime::from_secs(2));
        assert!((avg - 4.0).abs() < 1e-12);
        b.set(SimTime::from_secs(3), 0.0);
        // Window [2s,4s): 1s at 4.0 + 1s at 0.0 → avg 2.0
        let avg = b.take_window(SimTime::from_secs(4));
        assert!((avg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn peek_window_does_not_reset() {
        let mut b = BusyIntegral::new();
        b.set(SimTime::ZERO, 2.0);
        assert!((b.peek_window(SimTime::from_secs(1)) - 2.0).abs() < 1e-12);
        assert!((b.peek_window(SimTime::from_secs(2)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_span_window_returns_current() {
        let mut b = BusyIntegral::new();
        b.set(SimTime::ZERO, 3.0);
        assert_eq!(b.take_window(SimTime::ZERO), 3.0);
    }

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic dataset is sqrt(32/7)
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert!(s.min().is_nan());
    }
}
