//! Piecewise-constant time series used to record traces (busy cores, owned
//! cores, node imbalance) exactly as the paper's Paraver timelines do.

use crate::SimTime;

/// One step of a piecewise-constant series: `value` holds from `at` until
/// the next sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelineSample {
    /// Virtual time at which the value took effect.
    pub at: SimTime,
    /// The recorded value.
    pub value: f64,
}

/// A piecewise-constant `f64` time series with time-weighted queries.
///
/// Samples must be appended in non-decreasing time order; appending a sample
/// at the same instant as the previous one overwrites it (the series records
/// the value that *held*, not transient intermediate states within an
/// event).
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    samples: Vec<TimelineSample>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Record that the series takes `value` from time `at` onwards.
    ///
    /// # Panics
    /// Panics if `at` precedes the last recorded sample.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(last) = self.samples.last_mut() {
            assert!(at >= last.at, "timeline samples must be time-ordered");
            if at == last.at {
                last.value = value;
                return;
            }
            if last.value == value {
                return; // run-length compression: value unchanged
            }
        }
        self.samples.push(TimelineSample { at, value });
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[TimelineSample] {
        &self.samples
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Value holding at time `t` (the last sample at or before `t`), or
    /// `None` if `t` precedes the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.samples.binary_search_by(|s| s.at.cmp(&t)) {
            Ok(i) => Some(self.samples[i].value),
            Err(0) => None,
            Err(i) => Some(self.samples[i - 1].value),
        }
    }

    /// Time-weighted integral of the series over `[from, to)`. Before the
    /// first sample the series is treated as zero.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to >= from, "integral over reversed interval");
        if self.samples.is_empty() || to == from {
            return 0.0;
        }
        let mut acc = 0.0;
        // Iterate segments [s[i].at, s[i+1].at) clipped to [from, to).
        for (i, s) in self.samples.iter().enumerate() {
            let seg_start = s.at;
            let seg_end = self
                .samples
                .get(i + 1)
                .map(|n| n.at)
                .unwrap_or(SimTime::MAX);
            let lo = seg_start.max(from);
            let hi = seg_end.min(to);
            if hi > lo {
                acc += s.value * (hi - lo).as_secs_f64();
            }
            if seg_end >= to {
                break;
            }
        }
        acc
    }

    /// Time-weighted mean over `[from, to)`.
    pub fn mean(&self, from: SimTime, to: SimTime) -> f64 {
        let span = (to - from).as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        self.integral(from, to) / span
    }

    /// Time-weighted mean over `[from, to)`, degrading to the
    /// *instantaneous* value at `to` when the window has zero width.
    ///
    /// [`Timeline::mean`] returns 0.0 for zero-width windows, which is
    /// the wrong answer for trailing-window resampling (a window that
    /// collapses at `t = 0`, or a zero-length window anywhere, should
    /// report the value that holds at `t`, not pretend the series is
    /// idle). Callers that sample with `from = t - window` should use
    /// this instead of widening the window artificially.
    pub fn mean_or_instant(&self, from: SimTime, to: SimTime) -> f64 {
        if to == from {
            self.value_at(to).unwrap_or(0.0)
        } else {
            self.mean(from, to)
        }
    }

    /// Resample onto a uniform grid of `n` points covering `[from, to]`,
    /// producing `(time_seconds, value)` pairs for plotting.
    pub fn resample(&self, from: SimTime, to: SimTime, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "resample needs at least two points");
        let span = (to - from).as_nanos();
        (0..n)
            .map(|i| {
                let t = SimTime::from_nanos(from.as_nanos() + span * i as u64 / (n as u64 - 1));
                (t.as_secs_f64(), self.value_at(t).unwrap_or(0.0))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(points: &[(u64, f64)]) -> Timeline {
        let mut t = Timeline::new();
        for &(ms, v) in points {
            t.record(SimTime::from_millis(ms), v);
        }
        t
    }

    #[test]
    fn value_at_steps() {
        let t = tl(&[(0, 1.0), (10, 3.0), (20, 2.0)]);
        assert_eq!(t.value_at(SimTime::ZERO), Some(1.0));
        assert_eq!(t.value_at(SimTime::from_millis(9)), Some(1.0));
        assert_eq!(t.value_at(SimTime::from_millis(10)), Some(3.0));
        assert_eq!(t.value_at(SimTime::from_millis(25)), Some(2.0));
    }

    #[test]
    fn value_before_first_sample_is_none() {
        let t = tl(&[(10, 3.0)]);
        assert_eq!(t.value_at(SimTime::from_millis(5)), None);
    }

    #[test]
    fn same_instant_overwrites() {
        let mut t = Timeline::new();
        t.record(SimTime::from_millis(5), 1.0);
        t.record(SimTime::from_millis(5), 7.0);
        assert_eq!(t.samples().len(), 1);
        assert_eq!(t.value_at(SimTime::from_millis(5)), Some(7.0));
    }

    #[test]
    fn unchanged_value_is_compressed() {
        let t = tl(&[(0, 2.0), (10, 2.0), (20, 3.0)]);
        assert_eq!(t.samples().len(), 2);
    }

    #[test]
    fn integral_and_mean() {
        // 1.0 for 10ms, then 3.0 for 10ms: integral = 0.01 + 0.03 = 0.04
        let t = tl(&[(0, 1.0), (10, 3.0)]);
        let integral = t.integral(SimTime::ZERO, SimTime::from_millis(20));
        assert!((integral - 0.04).abs() < 1e-12);
        let mean = t.mean(SimTime::ZERO, SimTime::from_millis(20));
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn integral_clips_to_window() {
        let t = tl(&[(0, 2.0), (100, 4.0)]);
        // Window [50ms, 150ms): 50ms of 2.0 + 50ms of 4.0 = 0.1 + 0.2
        let integral = t.integral(SimTime::from_millis(50), SimTime::from_millis(150));
        assert!((integral - 0.3).abs() < 1e-12);
    }

    #[test]
    fn integral_before_first_sample_is_zero() {
        let t = tl(&[(100, 5.0)]);
        assert_eq!(t.integral(SimTime::ZERO, SimTime::from_millis(100)), 0.0);
    }

    #[test]
    fn mean_or_instant_zero_width_returns_instantaneous() {
        let t = tl(&[(0, 4.0), (10, 2.0)]);
        // Plain mean collapses to 0.0 on zero-width windows...
        assert_eq!(t.mean(SimTime::ZERO, SimTime::ZERO), 0.0);
        // ...mean_or_instant reports the value that holds there.
        assert_eq!(t.mean_or_instant(SimTime::ZERO, SimTime::ZERO), 4.0);
        let at = SimTime::from_millis(15);
        assert_eq!(t.mean_or_instant(at, at), 2.0);
        // Before the first sample the series is zero.
        let empty = Timeline::new();
        assert_eq!(empty.mean_or_instant(SimTime::ZERO, SimTime::ZERO), 0.0);
        // Non-degenerate windows match the plain mean.
        let from = SimTime::ZERO;
        let to = SimTime::from_millis(20);
        assert_eq!(t.mean_or_instant(from, to), t.mean(from, to));
    }

    #[test]
    fn resample_grid() {
        let t = tl(&[(0, 1.0), (50, 2.0)]);
        let pts = t.resample(SimTime::ZERO, SimTime::from_millis(100), 5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].1, 1.0);
        assert_eq!(pts[2].1, 2.0); // t=50ms
        assert_eq!(pts[4].1, 2.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_record_panics() {
        let mut t = Timeline::new();
        t.record(SimTime::from_millis(10), 1.0);
        t.record(SimTime::from_millis(5), 2.0);
    }
}
