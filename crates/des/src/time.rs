//! Virtual time. Integer nanoseconds so that event ordering is exact and
//! arithmetic never accumulates floating-point error across long runs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in integer nanoseconds.
///
/// `SimTime` is used both as an instant (time since simulation start) and as
/// a duration; the engine never needs a distinct instant type because the
/// simulation origin is always zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation origin / zero duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from integer nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs saturate to zero: durations in the
    /// runtime are physically non-negative and a NaN must not poison the
    /// event queue ordering.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting; do not use in ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow of the u64 nanosecond counter.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Scale a duration by a non-negative factor (e.g. a node slowdown),
    /// rounding to the nearest nanosecond.
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Integer division rounding up; used for "how many periods fit".
    #[inline]
    pub fn div_ceil(self, rhs: SimTime) -> u64 {
        assert!(rhs.0 > 0, "division by zero duration");
        self.0.div_ceil(rhs.0)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(0.05), SimTime::from_millis(50));
    }

    #[test]
    fn from_secs_f64_saturates_bad_inputs() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(30);
        let b = SimTime::from_millis(20);
        assert_eq!(a + b, SimTime::from_millis(50));
        assert_eq!(a - b, SimTime::from_millis(10));
        assert_eq!(a * 3, SimTime::from_millis(90));
        assert_eq!(a / 3, SimTime::from_millis(10));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn scale_applies_slowdown() {
        let t = SimTime::from_millis(50);
        assert_eq!(t.scale(3.0), SimTime::from_millis(150));
        assert_eq!(t.scale(0.5), SimTime::from_millis(25));
        assert_eq!(t.scale(1.0), t);
    }

    #[test]
    fn div_ceil_counts_periods() {
        let period = SimTime::from_secs(2);
        assert_eq!(SimTime::from_secs(5).div_ceil(period), 3);
        assert_eq!(SimTime::from_secs(4).div_ceil(period), 2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_nanos(42).to_string(), "42ns");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&s| SimTime::from_secs(s)).sum();
        assert_eq!(total, SimTime::from_secs(6));
    }
}
