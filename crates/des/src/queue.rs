//! Event queue and simulation driver.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: timestamp, insertion sequence number (for FIFO
/// tie-breaking), and the payload.
struct Pending<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}

impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of timestamped events with deterministic FIFO ordering for
/// equal timestamps.
pub struct EventQueue<E> {
    heap: BinaryHeap<Pending<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Insert an event at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Pending { at, seq, event });
    }

    /// Remove and return the earliest event, FIFO among equal timestamps.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|p| (p.at, p.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|p| p.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The simulated system: receives events and schedules follow-ups through
/// the [`Ctx`] handle.
pub trait World {
    /// Event payload type delivered by the simulator.
    type Event;

    /// Handle one event at the context's current virtual time.
    fn handle(&mut self, ctx: &mut Ctx<Self::Event>, event: Self::Event);
}

/// Handle given to [`World::handle`] for reading the clock and scheduling
/// further events.
pub struct Ctx<E> {
    now: SimTime,
    queue: EventQueue<E>,
    stop: bool,
}

impl<E> Ctx<E> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute virtual time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past: causality violations are always bugs
    /// in the caller, never recoverable conditions.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({at:?} < {:?})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        let at = self.now.checked_add(delay).expect("virtual clock overflow");
        self.queue.push(at, event);
    }

    /// Request that the run loop stop after the current event is handled.
    /// Remaining events stay in the queue (inspectable via the simulator).
    pub fn stop(&mut self) {
        self.stop = true;
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// The simulation driver: owns the event queue and runs a [`World`] until
/// the queue drains, a horizon passes, or the world requests a stop.
pub struct Simulator<E> {
    ctx: Ctx<E>,
    events_processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// A simulator with an empty queue at time zero.
    pub fn new() -> Self {
        Simulator {
            ctx: Ctx {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                stop: false,
            },
            events_processed: 0,
        }
    }

    /// Seed an event before (or between) runs.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.ctx.now, "cannot schedule event in the past");
        self.ctx.queue.push(at, event);
    }

    /// Current virtual time (last event timestamp processed).
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Run until the event queue is empty or the world calls [`Ctx::stop`].
    /// Returns the final virtual time.
    pub fn run<W: World<Event = E>>(&mut self, world: &mut W) -> SimTime {
        self.run_until(world, SimTime::MAX)
    }

    /// Run until the queue is empty, the world stops, or the next event
    /// would be later than `horizon` (that event remains queued). Returns
    /// the final virtual time, clamped to `horizon` if the horizon fired.
    pub fn run_until<W: World<Event = E>>(&mut self, world: &mut W, horizon: SimTime) -> SimTime {
        self.ctx.stop = false;
        while let Some(at) = self.ctx.queue.peek_time() {
            if at > horizon {
                self.ctx.now = horizon;
                return horizon;
            }
            let (at, event) = self.ctx.queue.pop().expect("peeked event vanished");
            debug_assert!(at >= self.ctx.now, "event queue delivered out of order");
            self.ctx.now = at;
            self.events_processed += 1;
            world.handle(&mut self.ctx, event);
            if self.ctx.stop {
                break;
            }
        }
        self.ctx.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    struct Relay {
        hops: u32,
        log: Vec<(SimTime, u32)>,
    }
    enum Ev {
        Hop(u32),
    }
    impl World for Relay {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Ctx<Ev>, Ev::Hop(n): Ev) {
            self.log.push((ctx.now(), n));
            if n + 1 < self.hops {
                ctx.schedule_in(SimTime::from_millis(5), Ev::Hop(n + 1));
            }
        }
    }

    #[test]
    fn run_advances_clock_and_chains_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::ZERO, Ev::Hop(0));
        let mut w = Relay {
            hops: 4,
            log: Vec::new(),
        };
        let end = sim.run(&mut w);
        assert_eq!(end, SimTime::from_millis(15));
        assert_eq!(w.log.len(), 4);
        assert_eq!(w.log[2], (SimTime::from_millis(10), 2));
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::ZERO, Ev::Hop(0));
        let mut w = Relay {
            hops: 100,
            log: Vec::new(),
        };
        let end = sim.run_until(&mut w, SimTime::from_millis(12));
        assert_eq!(end, SimTime::from_millis(12));
        // Events at 0, 5, 10 ran; 15 did not.
        assert_eq!(w.log.len(), 3);
        // The remaining event is still pending and runs on resume.
        let end = sim.run_until(&mut w, SimTime::from_millis(17));
        assert_eq!(end, SimTime::from_millis(17));
        assert_eq!(w.log.len(), 4);
    }

    struct Stopper {
        seen: u32,
    }
    impl World for Stopper {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            self.seen += 1;
            if ev == 2 {
                ctx.stop();
            }
        }
    }

    #[test]
    fn world_can_stop_early() {
        let mut sim = Simulator::new();
        for i in 0..10u32 {
            sim.schedule_at(SimTime::from_secs(i as u64), i);
        }
        let mut w = Stopper { seen: 0 };
        let end = sim.run(&mut w);
        assert_eq!(w.seen, 3);
        assert_eq!(end, SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut Ctx<()>, _: ()) {
                let past = ctx.now().saturating_sub(SimTime::from_secs(1));
                ctx.schedule_at(past, ());
            }
        }
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        sim.run(&mut Bad);
    }
}
