//! A deliberately small JSON implementation.
//!
//! The workspace builds with no network access, so instead of `serde` +
//! `serde_json` it carries this single-file JSON module: a [`Value`] tree,
//! a recursive-descent parser, and compact/pretty writers. Types that need
//! persistence implement explicit `to_json`/`from_json` conversions — a
//! few lines each, and the on-disk format stays plain JSON, readable by
//! any external tool.
//!
//! Objects preserve insertion order (they are stored as `Vec<(String,
//! Value)>`), so serialisation is deterministic — important for the
//! benchmark artefacts that get diffed across PRs.

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent in its source form.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Build an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at an object key, or `Null` if absent / not an object.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The element at an array index, or `Null` if out of range.
    pub fn at(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// `Some(bool)` for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64` (ints convert losslessly up to 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer value, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Non-negative integer value.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// Non-negative integer as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|u| u as usize)
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object pairs.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => write_f64(out, *f),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Round-trippable shortest form; force a decimal point so the
        // value re-parses as Float.
        let s = format!("{f}");
        let has_marker = s.contains(['.', 'e', 'E']);
        out.push_str(&s);
        if !has_marker {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversions used by the `to_json` implementations around the workspace.
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::Int(u as i64)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Value {
        // Seeds may use the full u64 range; values above i64::MAX keep
        // their bit-exact value through the Float path only up to 2⁵³, so
        // store them as their decimal string when too large.
        i64::try_from(u)
            .map(Value::Int)
            .unwrap_or_else(|_| Value::Str(u.to_string()))
    }
}
impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::Int(u as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        // Caller consumed '\\', peeked 'u'.
        self.pos += 1; // 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: require \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "1e3"] {
            let v = parse(src).unwrap();
            let back = parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, back, "roundtrip of {src}");
        }
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("42.0").unwrap(), Value::Float(42.0));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": null}, "d": true}"#).unwrap();
        assert_eq!(v.get("a").at(0).as_i64(), Some(1));
        assert_eq!(v.get("a").at(1).as_f64(), Some(2.5));
        assert_eq!(v.get("a").at(2).as_str(), Some("x"));
        assert!(v.get("b").get("c").is_null());
        assert_eq!(v.get("d").as_bool(), Some(true));
        assert!(v.get("missing").is_null());
        assert!(v.at(99).is_null());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash \u{1F600} ctrl\u{1}";
        let v = Value::Str(original.to_string());
        let parsed = parse(&v.to_string_compact()).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn pretty_print_shape() {
        let v = Value::object(vec![
            ("name", Value::from("x")),
            ("vals", Value::from(vec![1i64, 2])),
        ]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"name\": \"x\""), "{pretty}");
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn float_without_fraction_prints_marker() {
        let v = Value::Float(2.0);
        assert_eq!(v.to_string_compact(), "2.0");
        assert_eq!(parse("2.0").unwrap(), v);
    }

    #[test]
    fn object_order_is_preserved() {
        let src = r#"{"z": 1, "a": 2, "m": 3}"#;
        let v = parse(src).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn large_u64_becomes_string() {
        let v = Value::from(u64::MAX);
        assert_eq!(v.as_str(), Some("18446744073709551615"));
        let v = Value::from(5u64);
        assert_eq!(v.as_i64(), Some(5));
    }

    #[test]
    fn nonfinite_floats_serialise_null() {
        assert_eq!(Value::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_string_compact(), "null");
    }
}
