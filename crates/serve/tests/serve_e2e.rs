//! End-to-end tests: a real daemon on a loopback ephemeral port,
//! driven through the real wire protocol.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use tlb_json::Value;
use tlb_serve::{Client, ExecutorConfig, Server, SweepResponse};
use tlb_sweep::{run_sweep, Scenario, SweepOptions};

fn scenario_json(name: &str, seeds: &[u64]) -> Value {
    let seed_list: Vec<Value> = seeds.iter().map(|&s| s.into()).collect();
    Value::object(vec![
        ("schema_version", 1i64.into()),
        ("name", name.into()),
        ("app", "synthetic".into()),
        ("nodes", 2usize.into()),
        ("iterations", 2usize.into()),
        (
            "axes",
            Value::object(vec![
                ("degree", Value::Array(vec![1usize.into(), 2usize.into()])),
                (
                    "policy",
                    Value::Array(vec!["baseline".into(), "lewi+drom-global".into()]),
                ),
                ("seed", Value::Array(seed_list)),
            ]),
        ),
    ])
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tlb_serve_e2e_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(cache_dir: Option<PathBuf>, jobs: usize, queue_bound: usize) -> Server {
    Server::start(
        "127.0.0.1:0",
        ExecutorConfig {
            jobs,
            queue_bound,
            cache_dir,
        },
    )
    .expect("server start")
}

fn counter(stats: &Value, name: &str) -> u64 {
    stats
        .get("counters")
        .get("counters")
        .get(name)
        .as_u64()
        .unwrap_or(0)
}

/// Sorted (file name, bytes) of every cache entry; fails on stray
/// temporary files.
fn cache_entries(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("cache dir")
        .map(|e| e.expect("dir entry"))
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            assert!(
                name.ends_with(".json"),
                "unexpected cache file (leaked tmp?): {name}"
            );
            (name, std::fs::read(e.path()).expect("cache entry bytes"))
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn served_report_is_bitwise_identical_to_offline_sweep() {
    let cache = temp_dir("identical");
    let server = start(Some(cache.clone()), 2, 64);
    let scenario_json = scenario_json("serve-e2e", &[1]);

    let mut client = Client::connect(server.local_addr()).unwrap();
    let response = client.sweep(&scenario_json).unwrap();
    let (ack, points, report) = match response {
        SweepResponse::Completed {
            ack,
            points,
            report,
        } => (ack, points, report),
        other => panic!("expected completion, got {other:?}"),
    };
    assert_eq!(ack.get("points_total").as_usize(), Some(4));
    assert_eq!(points.len(), 4);

    // Offline reference, fresh cache dir, serial.
    let scenario = Scenario::from_json(&scenario_json).unwrap();
    let offline_cache = temp_dir("identical_offline");
    let offline = run_sweep(
        &scenario,
        &SweepOptions {
            jobs: 1,
            resume: false,
            cache_dir: Some(offline_cache.clone()),
        },
    )
    .unwrap();
    assert_eq!(
        report.to_string_compact(),
        offline.report.to_string_compact(),
        "served report differs from offline sweep"
    );
    // And the on-disk caches are bitwise identical too.
    assert_eq!(cache_entries(&cache), cache_entries(&offline_cache));

    client.shutdown().unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&offline_cache);
}

#[test]
fn warm_cache_replay_executes_nothing() {
    let cache = temp_dir("replay");
    let server = start(Some(cache.clone()), 2, 64);
    let scenario = scenario_json("serve-replay", &[2]);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let first = client.sweep(&scenario).unwrap();
    let first_report = match &first {
        SweepResponse::Completed { report, .. } => report.to_string_compact(),
        other => panic!("expected completion, got {other:?}"),
    };
    let executed_after_first = counter(&client.stats().unwrap(), "serve.points_executed");
    assert_eq!(executed_after_first, 4);

    let second = client.sweep(&scenario).unwrap();
    match &second {
        SweepResponse::Completed { ack, report, .. } => {
            assert_eq!(ack.get("cache_hits").as_usize(), Some(4));
            assert_eq!(ack.get("enqueued").as_usize(), Some(0));
            assert_eq!(report.to_string_compact(), first_report);
        }
        other => panic!("expected completion, got {other:?}"),
    }
    let executed_after_second = counter(&client.stats().unwrap(), "serve.points_executed");
    assert_eq!(
        executed_after_second, executed_after_first,
        "warm replay executed simulations"
    );

    client.shutdown().unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn concurrent_identical_requests_execute_each_point_once() {
    let cache = temp_dir("dedup");
    let server = start(Some(cache.clone()), 2, 64);
    let scenario = scenario_json("serve-dedup", &[3, 4]);
    let addr = server.local_addr();

    let reports: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let scenario = scenario.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    match client.sweep(&scenario).unwrap() {
                        SweepResponse::Completed { points, report, .. } => {
                            // Every subscriber sees every point exactly once.
                            let mut indices: Vec<usize> = points
                                .iter()
                                .map(|p| p.get("index").as_usize().unwrap())
                                .collect();
                            indices.sort_unstable();
                            assert_eq!(indices, (0..8).collect::<Vec<_>>());
                            report.to_string_compact()
                        }
                        other => panic!("expected completion, got {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(reports.windows(2).all(|w| w[0] == w[1]));

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    // 8 distinct points across 4 identical concurrent requests: each
    // point ran exactly once; the other 24 deliveries were dedup or
    // cache hits.
    assert_eq!(counter(&stats, "serve.points_executed"), 8);
    assert_eq!(
        counter(&stats, "serve.dedup_hits") + counter(&stats, "serve.cache_hits"),
        24
    );

    client.shutdown().unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn saturated_queue_sheds_with_retry_after() {
    // queue_bound 0: any request with fresh points is shed.
    let server = start(None, 1, 0);
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.sweep(&scenario_json("serve-shed", &[5])).unwrap() {
        SweepResponse::Shed(reply) => {
            assert!(reply.get("retry_after_ms").as_u64().unwrap() >= 10);
            assert_eq!(reply.get("queue_bound").as_usize(), Some(0));
            assert_eq!(reply.get("draining").as_bool(), Some(false));
        }
        other => panic!("expected shed, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(counter(&stats, "serve.shed"), 1);
    assert_eq!(counter(&stats, "serve.points_executed"), 0);

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn drain_on_shutdown_completes_admitted_work_and_flushes_cache() {
    let cache = temp_dir("drain");
    let server = start(Some(cache.clone()), 2, 64);
    let addr = server.local_addr();
    let scenario = scenario_json("serve-drain", &[6]);

    let sweeper = {
        let scenario = scenario.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            match client.sweep(&scenario).unwrap() {
                SweepResponse::Completed { points, .. } => points.len(),
                other => panic!("expected completion, got {other:?}"),
            }
        })
    };
    // Shut down from a second connection while the sweep is in
    // flight: wait for it to be *admitted* (serve.sweeps counter),
    // then drain. The ack must wait for the drain, and the sweeping
    // client must still get every reply.
    let mut killer = Client::connect(addr).unwrap();
    while counter(&killer.stats().unwrap(), "serve.sweeps") < 1 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let ack = killer.shutdown().unwrap();
    assert_eq!(ack.get("type").as_str(), Some("shutdown_ack"));
    assert_eq!(sweeper.join().unwrap(), 4);
    server.join();

    // The drained cache holds exactly the scenario's points — no lost
    // entries, no duplicates, no temporaries — and matches an offline
    // serial sweep byte for byte.
    let offline_cache = temp_dir("drain_offline");
    let parsed = Scenario::from_json(&scenario).unwrap();
    run_sweep(
        &parsed,
        &SweepOptions {
            jobs: 1,
            resume: false,
            cache_dir: Some(offline_cache.clone()),
        },
    )
    .unwrap();
    let drained = cache_entries(&cache);
    assert_eq!(drained.len(), 4);
    assert_eq!(drained, cache_entries(&offline_cache));
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&offline_cache);
}

#[test]
fn requests_after_shutdown_are_shed_as_draining() {
    let server = start(None, 1, 64);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut other = Client::connect(server.local_addr()).unwrap();
    client.shutdown().unwrap();
    match other.sweep(&scenario_json("serve-late", &[7])).unwrap() {
        SweepResponse::Shed(reply) => {
            assert_eq!(reply.get("draining").as_bool(), Some(true));
        }
        other => panic!("expected draining shed, got {other:?}"),
    }
    drop(other);
    server.join();
}

#[test]
fn overlapping_concurrent_sweeps_stress_cache_consistency() {
    // The concurrent-cache stress: N clients submit *overlapping* (not
    // identical) point sets at once. Every subscriber must see each of
    // its own points exactly once, and the surviving cache directory
    // must be bitwise identical to a serial offline run of the union
    // scenario.
    let cache = temp_dir("stress");
    let server = start(Some(cache.clone()), 4, 256);
    let addr = server.local_addr();
    // Overlapping windows over seeds 10..=14: client i sweeps seeds
    // [10+i, 10+i+1].
    let union_seeds: Vec<u64> = (10..=14).collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4usize)
            .map(|i| {
                s.spawn(move || {
                    let seeds: Vec<u64> = (10 + i as u64..10 + i as u64 + 2).collect();
                    let scenario = scenario_json("serve-stress", &seeds);
                    // 2 degrees × 2 policies per seed.
                    let expected = 4 * seeds.len();
                    let mut client = Client::connect(addr).unwrap();
                    match client.sweep(&scenario).unwrap() {
                        SweepResponse::Completed { points, .. } => {
                            let mut indices: Vec<usize> = points
                                .iter()
                                .map(|p| p.get("index").as_usize().unwrap())
                                .collect();
                            indices.sort_unstable();
                            assert_eq!(
                                indices,
                                (0..expected).collect::<Vec<_>>(),
                                "client {i} missed or repeated points"
                            );
                        }
                        other => panic!("expected completion, got {other:?}"),
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    // 5 distinct seeds × 4 grid points each: at most one execution per
    // distinct point, every other delivery deduped or cached.
    assert_eq!(counter(&stats, "serve.points_executed"), 20);
    client.shutdown().unwrap();
    server.join();

    let offline_cache = temp_dir("stress_offline");
    let union = Scenario::from_json(&scenario_json("serve-stress", &union_seeds)).unwrap();
    run_sweep(
        &union,
        &SweepOptions {
            jobs: 1,
            resume: false,
            cache_dir: Some(offline_cache.clone()),
        },
    )
    .unwrap();
    assert_eq!(cache_entries(&cache), cache_entries(&offline_cache));
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&offline_cache);
}

#[test]
fn protocol_errors_keep_the_connection_usable() {
    let server = start(None, 1, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let bad_json = client.request(&Value::Str("not an object".into())).unwrap();
    assert_eq!(bad_json.get("type").as_str(), Some("error"));

    // Strict scenario validation: unknown keys are a structured error,
    // not a dropped connection or an exit code.
    let reply = client
        .request(&Value::object(vec![
            ("cmd", "sweep".into()),
            (
                "scenario",
                Value::object(vec![
                    ("schema_version", 1i64.into()),
                    ("name", "typo".into()),
                    ("nodse", 2usize.into()),
                ]),
            ),
        ]))
        .unwrap();
    assert_eq!(reply.get("type").as_str(), Some("error"));
    assert!(reply
        .get("message")
        .as_str()
        .unwrap()
        .contains("invalid scenario"));

    assert_eq!(client.ping().unwrap().get("type").as_str(), Some("pong"));
    client.shutdown().unwrap();
    server.join();
}
