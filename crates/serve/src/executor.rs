//! The point executor: a bounded admission queue in front of the
//! `tlb-smprt` pool, with an in-flight registry that dedupes identical
//! points across concurrent requests.
//!
//! Admission is a single atomic classification under one lock: every
//! distinct point of a request is either *cached* (served immediately,
//! the pool never sees it), *in flight* (another request is already
//! computing it — subscribe to its completion), or *new* (enqueue).
//! A request whose new points would overflow the bounded queue is shed
//! whole — nothing is enqueued, nothing is subscribed — with a
//! retry-after hint derived from the queue depth, the pool occupancy,
//! and an EMA of recent point execution times.
//!
//! Completion publishes in a fixed order: store to cache **then** take
//! the subscriber list out of the registry **then** send. A racing
//! admission therefore either finds the key in the registry (and will
//! get the send) or no longer finds it (and its under-lock cache
//! re-check hits), so no subscriber can be stranded and no point can
//! run twice.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use tlb_json::Value;
use tlb_smprt::Pool;
use tlb_sweep::{point_key, point_key_input, run_point, Cache, Scenario, SweepPoint};
use tlb_trace::Counters;

/// How the executor is provisioned.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// Pool threads executing points.
    pub jobs: usize,
    /// Maximum number of points waiting in the admission queue; a
    /// request whose new points would push the depth past this bound
    /// is shed whole.
    pub queue_bound: usize,
    /// Result cache directory; `None` disables caching (every point
    /// executes, dedup still works).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            jobs: 2,
            queue_bound: 1024,
            cache_dir: None,
        }
    }
}

/// What a subscriber receives for one completed point: its cache key
/// and the record (or the execution error).
pub type PointResult = (u64, Result<Value, String>);

/// One enqueued unit of work.
struct WorkItem {
    scenario: Arc<Scenario>,
    point: SweepPoint,
    key: u64,
    key_input: Value,
}

/// State behind the executor's single lock.
struct State {
    queue: VecDeque<WorkItem>,
    /// key → subscribers awaiting that point's completion. Presence in
    /// this map *is* the in-flight marker; the queue holds the subset
    /// not yet picked up by the dispatcher.
    inflight: HashMap<u64, Vec<Sender<PointResult>>>,
    /// EMA of recent point execution times, seeding the retry-after
    /// hint. Starts at a conservative guess and converges quickly.
    ema_point_secs: f64,
    counters: Counters,
    draining: bool,
}

/// The outcome of [`Executor::admit`] for one request.
pub enum Admission {
    /// The request is in: cache hits are pre-filled, the rest will
    /// arrive on `rx` (one message per *distinct* pending key).
    Admitted(AdmittedRequest),
    /// The queue is full (or the executor is draining): nothing was
    /// enqueued or subscribed; retry after the hinted delay.
    Shed {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
        /// Queue depth observed at the shed decision.
        queue_depth: usize,
        /// The configured bound the request did not fit under.
        queue_bound: usize,
        /// True when the shed was caused by drain-for-shutdown rather
        /// than queue pressure.
        draining: bool,
    },
}

/// An admitted request's handle: everything the connection handler
/// needs to stream results and assemble the deterministic report.
pub struct AdmittedRequest {
    /// The expanded points, in expansion order.
    pub points: Vec<SweepPoint>,
    /// Cache key per point (expansion order; duplicates possible).
    pub keys: Vec<u64>,
    /// Pre-filled records for points served from cache at admission.
    pub slots: Vec<Option<Value>>,
    /// Distinct keys still pending (in flight or newly enqueued).
    pub pending: usize,
    /// Completions arrive here, one per distinct pending key.
    pub rx: Receiver<PointResult>,
    /// Points served from cache at admission.
    pub cache_hits: usize,
    /// Distinct points that were already in flight for some other
    /// request (this request subscribed instead of enqueueing).
    pub dedup_hits: usize,
    /// Distinct points newly enqueued by this request.
    pub enqueued: usize,
}

/// A snapshot of the executor's observable load, for `/stats` replies
/// and admission heuristics.
#[derive(Clone, Debug)]
pub struct ExecutorStats {
    /// Points waiting in the admission queue.
    pub queue_depth: usize,
    /// Distinct points admitted but not yet completed (queued or
    /// executing).
    pub inflight: usize,
    /// Pool saturation (outstanding work per active thread).
    pub pool_saturation: f64,
    /// Monotonic counters (`serve.*`) since startup.
    pub counters: Value,
}

/// The resident executor: admission queue + dispatcher thread + pool.
pub struct Executor {
    config: ExecutorConfig,
    cache: Option<Cache>,
    pool: Arc<Pool>,
    state: Mutex<State>,
    /// Signals the dispatcher (work arrived / draining) and waiters in
    /// [`Executor::drain`] (a batch completed).
    cond: Condvar,
    stop: AtomicBool,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Executor {
    /// Provision the pool, open the cache, and start the dispatcher.
    pub fn start(config: ExecutorConfig) -> std::io::Result<Arc<Executor>> {
        let cache = match &config.cache_dir {
            Some(dir) => Some(Cache::open(dir)?),
            None => None,
        };
        let exec = Arc::new(Executor {
            pool: Arc::new(Pool::new(config.jobs.max(1))),
            cache,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                ema_point_secs: 0.05,
                counters: Counters::new(),
                draining: false,
            }),
            cond: Condvar::new(),
            stop: AtomicBool::new(false),
            dispatcher: Mutex::new(None),
            config,
        });
        let worker = Arc::clone(&exec);
        let handle = std::thread::Builder::new()
            .name("tlb-serve-dispatch".into())
            .spawn(move || worker.dispatch_loop())?;
        *exec.dispatcher.lock().unwrap() = Some(handle);
        Ok(exec)
    }

    /// The executor's provisioning.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Atomically classify and admit (or shed) one request. See the
    /// module docs for the cached / in-flight / new classification and
    /// the shed-whole rule.
    pub fn admit(&self, scenario: &Scenario) -> Admission {
        let scenario = Arc::new(scenario.clone());
        let points = scenario.expand();
        let keys: Vec<u64> = points.iter().map(|p| point_key(&scenario, p)).collect();
        let key_inputs: Vec<Value> = points
            .iter()
            .map(|p| point_key_input(&scenario, p))
            .collect();

        // Distinct keys in first-seen order, with the indices they
        // cover (a request may repeat a point via duplicate axis
        // values; each distinct key is computed at most once).
        let mut distinct: Vec<(u64, usize)> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if !distinct.iter().any(|&(dk, _)| dk == k) {
                distinct.push((k, i));
            }
        }

        // Optimistic cache pass outside the lock: disk reads are slow
        // and a hit here never needs the registry. A point completing
        // concurrently is caught by the under-lock re-check below.
        let mut slots: Vec<Option<Value>> = vec![None; points.len()];
        let mut unresolved: Vec<(u64, usize)> = Vec::new();
        for &(k, i) in &distinct {
            match self.cache.as_ref().and_then(|c| c.load(k, &key_inputs[i])) {
                Some(record) => fill_slots(&mut slots, &keys, k, &record),
                None => unresolved.push((k, i)),
            }
        }

        let (tx, rx) = std::sync::mpsc::channel::<PointResult>();
        let mut state = self.lock_state();
        state.counters.inc("serve.requests");
        if state.draining {
            state.counters.inc("serve.shed");
            let retry = self.retry_after_ms(&state);
            return Admission::Shed {
                retry_after_ms: retry,
                queue_depth: state.queue.len(),
                queue_bound: self.config.queue_bound,
                draining: true,
            };
        }

        // Classify the unresolved keys under the lock. Nothing is
        // registered or enqueued until the shed decision is made, so a
        // shed request leaves no trace.
        let mut dedup = Vec::new();
        let mut fresh = Vec::new();
        for &(k, i) in &unresolved {
            if state.inflight.contains_key(&k) {
                dedup.push(k);
            } else if let Some(record) = self.cache.as_ref().and_then(|c| c.load(k, &key_inputs[i]))
            {
                // Completed between the optimistic pass and this lock.
                fill_slots(&mut slots, &keys, k, &record);
            } else {
                fresh.push((k, i));
            }
        }

        if state.queue.len() + fresh.len() > self.config.queue_bound {
            state.counters.inc("serve.shed");
            let retry = self.retry_after_ms(&state);
            return Admission::Shed {
                retry_after_ms: retry,
                queue_depth: state.queue.len(),
                queue_bound: self.config.queue_bound,
                draining: false,
            };
        }

        for &k in &dedup {
            state
                .inflight
                .get_mut(&k)
                .expect("classified in-flight under the same lock")
                .push(tx.clone());
        }
        for &(k, i) in &fresh {
            state.inflight.insert(k, vec![tx.clone()]);
            state.queue.push_back(WorkItem {
                scenario: Arc::clone(&scenario),
                point: points[i].clone(),
                key: k,
                key_input: key_inputs[i].clone(),
            });
        }

        let cache_hits = slots.iter().filter(|s| s.is_some()).count();
        state.counters.inc("serve.sweeps");
        state
            .counters
            .add("serve.points_total", points.len() as u64);
        state.counters.add("serve.cache_hits", cache_hits as u64);
        state
            .counters
            .add("serve.cache_misses", (dedup.len() + fresh.len()) as u64);
        state.counters.add("serve.dedup_hits", dedup.len() as u64);
        state.counters.add("serve.enqueued", fresh.len() as u64);
        let pending = dedup.len() + fresh.len();
        let enqueued = fresh.len();
        let dedup_hits = dedup.len();
        drop(state);
        self.cond.notify_all();

        Admission::Admitted(AdmittedRequest {
            points,
            keys,
            slots,
            pending,
            rx,
            cache_hits,
            dedup_hits,
            enqueued,
        })
    }

    /// Load snapshot for `/stats` and admission hints.
    pub fn stats(&self) -> ExecutorStats {
        let state = self.lock_state();
        ExecutorStats {
            queue_depth: state.queue.len(),
            inflight: state.inflight.len(),
            pool_saturation: self.pool.occupancy().saturation(),
            counters: state.counters.to_json(),
        }
    }

    /// Begin draining: every subsequent request is shed, and this call
    /// returns once the queue is empty and every in-flight point has
    /// completed (and therefore been flushed to the cache). Idempotent.
    pub fn drain(&self) {
        {
            let mut state = self.lock_state();
            state.draining = true;
        }
        self.cond.notify_all();
        let mut state = self.lock_state();
        while !(state.queue.is_empty() && state.inflight.is_empty()) {
            state = self.cond.wait(state).unwrap();
        }
        drop(state);
        self.stop.store(true, Ordering::Release);
        self.cond.notify_all();
        if let Some(handle) = self.dispatcher.lock().unwrap().take() {
            let _ = handle.join();
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Retry hint: expected time for the backlog to clear through
    /// `jobs` lanes, floored at 10ms so clients never spin.
    fn retry_after_ms(&self, state: &State) -> u64 {
        let backlog = state.queue.len() as f64 + self.pool.occupancy().outstanding() as f64;
        let lanes = self.config.jobs.max(1) as f64;
        let secs = (backlog / lanes + 1.0) * state.ema_point_secs;
        ((secs * 1000.0).ceil() as u64).max(10)
    }

    /// Dispatcher: pop a batch, execute it on the pool (one point per
    /// pool slot), publish each completion as it lands. The batch size
    /// caps latency for requests arriving behind a large one.
    fn dispatch_loop(self: Arc<Self>) {
        let batch_cap = self.config.jobs.max(1) * 4;
        loop {
            let batch: Vec<WorkItem> = {
                let mut state = self.lock_state();
                while state.queue.is_empty() && !self.stop.load(Ordering::Acquire) {
                    state = self.cond.wait(state).unwrap();
                }
                if state.queue.is_empty() && self.stop.load(Ordering::Acquire) {
                    return;
                }
                let take = state.queue.len().min(batch_cap);
                state.queue.drain(..take).collect()
            };

            let started = Instant::now();
            let items = &batch;
            self.pool.parallel_for(items.len(), 1, |i| {
                let item = &items[i];
                let result = run_point(&item.scenario, &item.point);
                if let (Ok(record), Some(cache)) = (&result, &self.cache) {
                    // Flush before publication so a subscriber (or a
                    // racing admission) never observes a completed key
                    // that is absent from the cache.
                    let _ = cache.store(item.key, &item.key_input, record);
                }
                let subscribers = {
                    let mut state = self.lock_state();
                    state.counters.inc("serve.points_executed");
                    if result.is_err() {
                        state.counters.inc("serve.point_errors");
                    }
                    state.inflight.remove(&item.key).unwrap_or_default()
                };
                self.cond.notify_all();
                for tx in subscribers {
                    let _ = tx.send((item.key, result.clone()));
                }
            });
            let per_point = started.elapsed().as_secs_f64() / batch.len().max(1) as f64;
            let mut state = self.lock_state();
            state.ema_point_secs = 0.7 * state.ema_point_secs + 0.3 * per_point;
        }
    }
}

/// Copy one completed record into every expansion slot sharing its key.
fn fill_slots(slots: &mut [Option<Value>], keys: &[u64], key: u64, record: &Value) {
    for (i, &k) in keys.iter().enumerate() {
        if k == key {
            slots[i] = Some(record.clone());
        }
    }
}
