//! A small blocking client for the serve protocol, used by the CLI,
//! the tests, and the `serve_smoke` bench. One request at a time per
//! connection; open several clients for concurrency.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use tlb_json::Value;

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// The full outcome of one `sweep` request.
#[derive(Debug)]
pub enum SweepResponse {
    /// Admitted and completed: the ack, every streamed `point` reply
    /// in arrival order, and the final aggregate report.
    Completed {
        /// The `ack` reply.
        ack: Value,
        /// Streamed `point` replies, in the order they arrived.
        points: Vec<Value>,
        /// The `report` reply's `"report"` payload.
        report: Value,
    },
    /// Shed by admission control; the full `shed` reply (including
    /// `retry_after_ms`).
    Shed(Value),
    /// A structured `error` reply (invalid scenario, failed point).
    Error(String),
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    fn send(&mut self, request: &Value) -> io::Result<()> {
        let mut line = request.to_string_compact();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    fn read_reply(&mut self) -> io::Result<Value> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        tlb_json::parse(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad reply JSON: {e}")))
    }

    /// Send one request object and read exactly one reply line.
    pub fn request(&mut self, request: &Value) -> io::Result<Value> {
        self.send(request)?;
        self.read_reply()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Value> {
        self.request(&Value::object(vec![("cmd", "ping".into())]))
    }

    /// Executor counters and load snapshot.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.request(&Value::object(vec![("cmd", "stats".into())]))
    }

    /// Drain-and-stop; returns the `shutdown_ack` (sent only after the
    /// drain completed and the cache was flushed).
    pub fn shutdown(&mut self) -> io::Result<Value> {
        self.request(&Value::object(vec![("cmd", "shutdown".into())]))
    }

    /// Submit a scenario and collect the streamed response, invoking
    /// `on_point` for every `point` reply as it arrives.
    pub fn sweep_with(
        &mut self,
        scenario: &Value,
        mut on_point: impl FnMut(&Value),
    ) -> io::Result<SweepResponse> {
        self.send(&Value::object(vec![
            ("cmd", "sweep".into()),
            ("scenario", scenario.clone()),
        ]))?;
        let first = self.read_reply()?;
        match first.get("type").as_str() {
            Some("shed") => return Ok(SweepResponse::Shed(first)),
            Some("error") => {
                return Ok(SweepResponse::Error(
                    first.get("message").as_str().unwrap_or("").to_string(),
                ))
            }
            Some("ack") => {}
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected reply type {other:?}"),
                ))
            }
        }
        let total = first.get("points_total").as_usize().unwrap_or(0);
        let mut points = Vec::with_capacity(total);
        loop {
            let reply = self.read_reply()?;
            match reply.get("type").as_str() {
                Some("point") => {
                    on_point(&reply);
                    points.push(reply);
                }
                Some("report") => {
                    return Ok(SweepResponse::Completed {
                        ack: first,
                        points,
                        report: reply.get("report").clone(),
                    })
                }
                Some("error") => {
                    return Ok(SweepResponse::Error(
                        reply.get("message").as_str().unwrap_or("").to_string(),
                    ))
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected mid-stream reply type {other:?}"),
                    ))
                }
            }
        }
    }

    /// [`Client::sweep_with`] without a streaming callback.
    pub fn sweep(&mut self, scenario: &Value) -> io::Result<SweepResponse> {
        self.sweep_with(scenario, |_| {})
    }
}
