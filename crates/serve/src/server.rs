//! The TCP front end: accept loop, per-connection handlers, and
//! graceful shutdown.
//!
//! Connections speak the line-delimited protocol of
//! [`crate::protocol`]. Each connection gets its own handler thread;
//! the accept loop and every handler poll a shared stop flag (reads
//! carry a short timeout), so a `shutdown` request on *any* connection
//! winds the whole server down: the executor drains its admitted
//! points (flushing the cache), new sweeps are shed while draining,
//! and only then is the `shutdown_ack` written.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tlb_json::Value;
use tlb_sweep::{aggregate, Scenario};

use crate::executor::{Admission, Executor, ExecutorConfig};
use crate::protocol::{
    ack_reply, error_reply, parse_request, point_reply, pong_reply, report_reply, shed_reply,
    shutdown_ack_reply, stats_reply, Request,
};

/// How often blocked reads wake up to poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A running daemon: listener address, executor, and thread handles.
pub struct Server {
    addr: SocketAddr,
    executor: Arc<Executor>,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port), start
    /// the executor and the accept loop, and return immediately.
    pub fn start(addr: &str, config: ExecutorConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let executor = Executor::start(config)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let executor = Arc::clone(&executor);
            let stop = Arc::clone(&stop);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("tlb-serve-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                // Replies are many small writes (ack,
                                // streamed points, report); Nagle would
                                // add ~40ms to every round trip.
                                let _ = stream.set_nodelay(true);
                                let executor = Arc::clone(&executor);
                                let stop = Arc::clone(&stop);
                                let handle = std::thread::Builder::new()
                                    .name("tlb-serve-conn".into())
                                    .spawn(move || handle_connection(stream, executor, stop))
                                    .expect("spawn connection handler");
                                handlers.lock().unwrap().push(handle);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            Err(_) => std::thread::sleep(POLL_INTERVAL),
                        }
                    }
                })?
        };

        Ok(Server {
            addr: local,
            executor,
            stop,
            accept: Some(accept),
            handlers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The executor, for direct stats access in tests and benches.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// True until a shutdown (request or [`Server::shutdown`]) landed.
    pub fn running(&self) -> bool {
        !self.stop.load(Ordering::Acquire)
    }

    /// Drain the executor and stop accepting. Identical to receiving a
    /// `shutdown` request; idempotent.
    pub fn shutdown(&self) {
        self.executor.drain();
        self.stop.store(true, Ordering::Release);
    }

    /// Block until the server has stopped and every thread has exited.
    /// The normal daemon lifecycle is `start(...)` then `join()`; the
    /// process leaves `join` when some client sends `shutdown`.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.handlers.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Safety net for tests that drop without an explicit shutdown:
        // stop accepting and unblock handlers. (Does not drain; call
        // `shutdown()` first for a graceful exit.)
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.handlers.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Incremental line reader over a stream with a read timeout, so
/// handlers can poll the stop flag while idle without dropping bytes
/// of a partially received line.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> io::Result<LineReader> {
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        Ok(LineReader {
            stream,
            buf: Vec::new(),
        })
    }

    /// Next full line, or `None` on EOF / server stop.
    fn next_line(&mut self, stop: &AtomicBool) -> Option<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return Some(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    }
}

fn write_reply(stream: &mut TcpStream, reply: &Value) -> io::Result<()> {
    let mut line = reply.to_string_compact();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn handle_connection(stream: TcpStream, executor: Arc<Executor>, stop: Arc<AtomicBool>) {
    let mut out = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = match LineReader::new(stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    while let Some(line) = reader.next_line(&stop) {
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match parse_request(&line) {
            Err(e) => write_reply(&mut out, &error_reply(&e.message)),
            Ok(Request::Ping) => write_reply(&mut out, &pong_reply()),
            Ok(Request::Stats) => {
                let stats = executor.stats();
                write_reply(
                    &mut out,
                    &stats_reply(
                        stats.queue_depth,
                        stats.inflight,
                        stats.pool_saturation,
                        &stats.counters,
                    ),
                )
            }
            Ok(Request::Shutdown) => {
                executor.drain();
                stop.store(true, Ordering::Release);
                let _ = write_reply(&mut out, &shutdown_ack_reply());
                return;
            }
            Ok(Request::Sweep(scenario_json)) => handle_sweep(&executor, &scenario_json, &mut out),
        };
        if outcome.is_err() {
            return; // client went away mid-reply
        }
    }
}

/// Validate, admit, stream, and report one sweep request.
fn handle_sweep(executor: &Executor, scenario_json: &Value, out: &mut TcpStream) -> io::Result<()> {
    // The same strict parser as `tlb-run sweep` — but a schema error
    // becomes a structured reply instead of an exit code.
    let scenario = match Scenario::from_json(scenario_json).and_then(|s| {
        s.validate()?;
        Ok(s)
    }) {
        Ok(s) => s,
        Err(e) => return write_reply(out, &error_reply(&format!("invalid scenario: {e}"))),
    };

    let admitted = match executor.admit(&scenario) {
        Admission::Shed {
            retry_after_ms,
            queue_depth,
            queue_bound,
            draining,
        } => {
            return write_reply(
                out,
                &shed_reply(retry_after_ms, queue_depth, queue_bound, draining),
            )
        }
        Admission::Admitted(req) => req,
    };

    write_reply(
        out,
        &ack_reply(
            admitted.points.len(),
            admitted.cache_hits,
            admitted.dedup_hits,
            admitted.enqueued,
        ),
    )?;

    // Stream cache hits immediately (in index order), then live
    // completions as they land.
    let mut slots = admitted.slots;
    let mut sent = vec![false; slots.len()];
    for (i, slot) in slots.iter().enumerate() {
        if let Some(record) = slot {
            write_reply(out, &point_reply(i, admitted.keys[i], record))?;
            sent[i] = true;
        }
    }
    let mut failure: Option<String> = None;
    for _ in 0..admitted.pending {
        match admitted.rx.recv() {
            Ok((key, Ok(record))) => {
                for (i, &k) in admitted.keys.iter().enumerate() {
                    if k == key && !sent[i] {
                        write_reply(out, &point_reply(i, key, &record))?;
                        sent[i] = true;
                        slots[i] = Some(record.clone());
                    }
                }
            }
            Ok((_key, Err(message))) => {
                failure.get_or_insert(message);
            }
            Err(_) => {
                failure.get_or_insert_with(|| "executor stopped".into());
                break;
            }
        }
    }
    if let Some(message) = failure {
        return write_reply(out, &error_reply(&format!("point failed: {message}")));
    }

    // Every slot is filled; aggregate sequentially in expansion order —
    // the same pure function the offline sweep uses, so the report is
    // bitwise identical to `tlb-run sweep` on this scenario.
    let records: Vec<Value> = slots
        .into_iter()
        .map(|s| s.expect("all points resolved"))
        .collect();
    let report = aggregate(&scenario, &admitted.points, records);
    write_reply(out, &report_reply(&report))
}

/// Resolve-and-bind helper shared by the CLI: surfaces a clear message
/// when `addr` does not parse instead of a bare io error.
pub fn validate_addr(addr: &str) -> Result<(), String> {
    addr.to_socket_addrs()
        .map(|_| ())
        .map_err(|e| format!("invalid --addr {addr:?}: {e}"))
}
