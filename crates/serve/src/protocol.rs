//! The line-delimited JSON wire protocol.
//!
//! Every request and reply is one compact JSON object on one line.
//! Requests carry a `"cmd"` key (`sweep`, `stats`, `ping`,
//! `shutdown`); replies carry a `"type"` key. A `sweep` request is
//! answered by an `ack`, then one `point` reply per expansion index
//! *as each result lands* (cache hits first, in index order), then a
//! single `report` carrying the deterministic aggregate — or by a
//! `shed` / `error` reply and nothing else.
//!
//! The protocol is versioned: `ack` and `pong` replies carry
//! [`PROTOCOL_VERSION`], and a breaking change to any reply layout
//! bumps it.

use tlb_json::Value;

/// Wire protocol version, echoed in `ack` and `pong` replies.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Validate, execute, and stream one scenario sweep.
    Sweep(Value),
    /// Report executor counters and load.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain in-flight work, flush the cache, and stop the server.
    Shutdown,
}

/// Why a request line could not be turned into a [`Request`].
#[derive(Debug)]
pub struct RequestError {
    /// Human-readable reason, sent back verbatim in an `error` reply.
    pub message: String,
}

/// Parse one request line. Unknown commands and malformed JSON yield a
/// structured [`RequestError`] (the daemon never disconnects a client
/// for a bad request — it replies and keeps reading).
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = tlb_json::parse(line).map_err(|e| RequestError {
        message: format!("malformed request JSON: {e}"),
    })?;
    let cmd = value.get("cmd").as_str().ok_or_else(|| RequestError {
        message: "request is missing string key \"cmd\"".into(),
    })?;
    match cmd {
        "sweep" => match value.get("scenario") {
            Value::Null => Err(RequestError {
                message: "sweep request is missing key \"scenario\"".into(),
            }),
            scenario => Ok(Request::Sweep(scenario.clone())),
        },
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(RequestError {
            message: format!("unknown cmd {other:?} (expected sweep, stats, ping, or shutdown)"),
        }),
    }
}

/// `{"type":"error","message":...}` — request-level failure (parse
/// error, invalid scenario, failed point). The connection stays open.
pub fn error_reply(message: &str) -> Value {
    Value::object(vec![("type", "error".into()), ("message", message.into())])
}

/// `{"type":"shed",...}` — the admission queue could not take the
/// request; retry after the hinted backoff.
pub fn shed_reply(
    retry_after_ms: u64,
    queue_depth: usize,
    queue_bound: usize,
    draining: bool,
) -> Value {
    Value::object(vec![
        ("type", "shed".into()),
        ("retry_after_ms", retry_after_ms.into()),
        ("queue_depth", queue_depth.into()),
        ("queue_bound", queue_bound.into()),
        ("draining", draining.into()),
    ])
}

/// `{"type":"ack",...}` — the sweep was admitted; point replies follow.
pub fn ack_reply(
    points_total: usize,
    cache_hits: usize,
    dedup_hits: usize,
    enqueued: usize,
) -> Value {
    Value::object(vec![
        ("type", "ack".into()),
        ("protocol_version", PROTOCOL_VERSION.into()),
        ("points_total", points_total.into()),
        ("cache_hits", cache_hits.into()),
        ("dedup_hits", dedup_hits.into()),
        ("enqueued", enqueued.into()),
    ])
}

/// `{"type":"point",...}` — one expansion index's record, streamed as
/// soon as its result is available.
pub fn point_reply(index: usize, key: u64, record: &Value) -> Value {
    Value::object(vec![
        ("type", "point".into()),
        ("index", index.into()),
        ("key", format!("{key:016x}").into()),
        ("record", record.clone()),
    ])
}

/// `{"type":"report",...}` — the sweep's aggregate, bitwise identical
/// to the offline `tlb-run sweep` report for the same scenario.
pub fn report_reply(report: &Value) -> Value {
    Value::object(vec![("type", "report".into()), ("report", report.clone())])
}

/// `{"type":"pong",...}` — liveness reply.
pub fn pong_reply() -> Value {
    Value::object(vec![
        ("type", "pong".into()),
        ("protocol_version", PROTOCOL_VERSION.into()),
    ])
}

/// `{"type":"stats",...}` — executor counters and load snapshot.
pub fn stats_reply(
    queue_depth: usize,
    inflight: usize,
    pool_saturation: f64,
    counters: &Value,
) -> Value {
    Value::object(vec![
        ("type", "stats".into()),
        ("queue_depth", queue_depth.into()),
        ("inflight", inflight.into()),
        ("pool_saturation", pool_saturation.into()),
        ("counters", counters.clone()),
    ])
}

/// `{"type":"shutdown_ack"}` — sent once the drain has completed and
/// the cache is flushed; the server exits after this reply.
pub fn shutdown_ack_reply() -> Value {
    Value::object(vec![("type", "shutdown_ack".into())])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert!(matches!(
            parse_request(r#"{"cmd":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        match parse_request(r#"{"cmd":"sweep","scenario":{"name":"x"}}"#) {
            Ok(Request::Sweep(s)) => assert_eq!(s.get("name").as_str(), Some("x")),
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_with_structured_messages() {
        assert!(parse_request("not json")
            .unwrap_err()
            .message
            .contains("malformed"));
        assert!(parse_request("{}").unwrap_err().message.contains("cmd"));
        assert!(parse_request(r#"{"cmd":"sweep"}"#)
            .unwrap_err()
            .message
            .contains("scenario"));
        assert!(parse_request(r#"{"cmd":"dance"}"#)
            .unwrap_err()
            .message
            .contains("unknown cmd"));
    }

    #[test]
    fn replies_are_single_line_compact_json() {
        for reply in [
            error_reply("boom"),
            shed_reply(25, 3, 2, false),
            ack_reply(8, 2, 1, 5),
            point_reply(
                0,
                0xdead_beef,
                &Value::object(vec![("makespan_s", 1.0.into())]),
            ),
            pong_reply(),
            shutdown_ack_reply(),
        ] {
            let line = reply.to_string_compact();
            assert!(!line.contains('\n'));
            assert_eq!(tlb_json::parse(&line).unwrap(), reply);
        }
    }
}
