//! Sweep-as-a-service: a resident daemon that turns the batch sweep
//! engine into a shared, always-warm facility.
//!
//! The paper's parameter studies are batch jobs; a research group (or
//! a CI fleet) re-runs overlapping grids all day. This crate keeps one
//! process resident so the cache stays hot and identical work is never
//! done twice — even when two clients ask for it *at the same moment*:
//!
//! * [`Server`] — a TCP daemon speaking a line-delimited JSON protocol
//!   ([`protocol`]): scenario in, streamed per-point records out as
//!   each lands, then the aggregate report — bitwise identical to an
//!   offline `tlb-run sweep` of the same scenario, because both sides
//!   share `tlb_sweep::run_point` and `tlb_sweep::aggregate`.
//! * [`Executor`] — bounded admission in front of a `tlb-smprt` pool.
//!   Each request's points are atomically classified *cached* (served
//!   without touching the pool), *in flight* (deduped: subscribe to
//!   the other request's completion), or *new* (enqueued). A request
//!   that would overflow the queue is shed whole with a structured
//!   retry-after reply derived from queue depth, pool occupancy, and
//!   an EMA of point times.
//! * Graceful shutdown: a `shutdown` request drains every admitted
//!   point, flushes the cache, and only then acks — so a killed-while
//!   -busy daemon leaves a cache a later `tlb-run sweep --resume` can
//!   trust.
//! * A `stats` request exposes the `serve.*` counters (requests,
//!   sweeps, cache hits/misses, dedup hits, sheds, executed points)
//!   plus live queue depth, in-flight count, and pool saturation.
//!
//! Start one with `tlb-run serve --addr 127.0.0.1:7070 --jobs 4
//! --cache-dir .tlb-cache`, drive it with [`Client`].

mod client;
mod executor;
mod server;

pub mod protocol;

pub use client::{Client, SweepResponse};
pub use executor::{Admission, AdmittedRequest, Executor, ExecutorConfig, ExecutorStats};
pub use server::{validate_addr, Server};
