//! Stress and scenario tests for the shared-memory runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tlb_smprt::{GraphRun, LewiCoupler, Pool};
use tlb_tasking::{DataRegion, TaskDef};

/// A diamond-heavy random-ish DAG executes correctly under contention.
#[test]
fn layered_dag_runs_in_order() {
    let pool = Pool::new(8);
    let mut run = GraphRun::new();
    let layer_done: Vec<Arc<AtomicUsize>> = (0..6).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let layers = 6usize;
    let width = 24usize;
    // Layer k writes region k; reads region k-1: full barrier between layers.
    let regions: Vec<DataRegion> = (0..layers)
        .map(|k| DataRegion::new(k * 0x1000, 0x1000))
        .collect();
    for k in 0..layers {
        for _ in 0..width {
            let mine = Arc::clone(&layer_done[k]);
            let prev = k.checked_sub(1).map(|p| Arc::clone(&layer_done[p]));
            let mut def = TaskDef::new(format!("layer{k}"));
            // Writers of layer k conflict with readers of layer k+1 via
            // region k. Each task reads the previous layer's region and
            // writes a distinct chunk of its own.
            if k > 0 {
                def = def.reads(regions[k - 1]);
            }
            let chunk = regions[k].chunks(width)[mine.load(Ordering::Relaxed) % width];
            def = def.writes(chunk);
            run.task(def, move || {
                if let Some(prev) = prev {
                    assert_eq!(
                        prev.load(Ordering::SeqCst),
                        width,
                        "layer started before previous completed"
                    );
                }
                mine.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
    }
    let stats = pool.run(run);
    assert_eq!(stats.tasks_executed, layers * width);
    assert!(layer_done.iter().all(|l| l.load(Ordering::SeqCst) == width));
}

/// Many short runs back-to-back never deadlock or leak state.
#[test]
fn rapid_fire_runs() {
    let pool = Pool::new(4);
    for round in 0..50 {
        let mut run = GraphRun::new();
        let n = 1 + round % 17;
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..n {
            let c = Arc::clone(&count);
            run.task(TaskDef::new("t"), move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(pool.run(run).tasks_executed, n);
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(pool.load(), 0);
    }
}

/// Three pools coupled on one node: the busiest pool ends up with the
/// lion's share of cores while the others idle.
#[test]
fn three_way_coupling() {
    let cores = 6;
    let pools: Vec<Arc<Pool>> = (0..3).map(|_| Arc::new(Pool::new(cores))).collect();
    let coupler = LewiCoupler::start(
        pools.iter().map(Arc::clone).collect(),
        vec![2, 2, 2],
        Duration::from_micros(200),
    );
    let counter = Arc::new(AtomicUsize::new(0));
    let mut run = GraphRun::new();
    for _ in 0..150 {
        let c = Arc::clone(&counter);
        run.task(TaskDef::new("t"), move || {
            std::thread::sleep(Duration::from_micros(300));
            c.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
    }
    // Pool 1 is the only busy one.
    let watcher = {
        let p = Arc::clone(&pools[1]);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let s = Arc::clone(&stop);
        let h = std::thread::spawn(move || {
            let mut peak = 0;
            while !s.load(Ordering::Relaxed) {
                peak = peak.max(p.active_threads());
                std::thread::sleep(Duration::from_micros(100));
            }
            peak
        });
        (stop, h)
    };
    pools[1].run(run);
    watcher.0.store(true, Ordering::Relaxed);
    let peak = watcher.1.join().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 150);
    assert!(peak > 2, "busy pool never borrowed (peak {peak})");
    let dlb = coupler.stop();
    assert_eq!(dlb.busy_count(), 0);
}

/// Pool drop while idle terminates promptly (no hung worker threads).
#[test]
fn drop_is_clean() {
    for _ in 0..10 {
        let pool = Pool::new(3);
        let mut run = GraphRun::new();
        run.task(TaskDef::new("t"), || {}).unwrap();
        pool.run(run);
        drop(pool); // must join workers without hanging
    }
}
