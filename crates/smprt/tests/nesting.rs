//! Nested task creation and taskwait on the real-thread runtime
//! (OmpSs-2 nesting, paper §3.1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tlb_smprt::{GraphRun, Pool};
use tlb_tasking::{DataRegion, TaskDef};

#[test]
fn children_run_and_taskwait_blocks() {
    let pool = Pool::new(4);
    let mut run = GraphRun::new();
    let child_count = Arc::new(AtomicUsize::new(0));
    let after_wait = Arc::new(AtomicUsize::new(0));
    {
        let child_count = Arc::clone(&child_count);
        let after_wait = Arc::clone(&after_wait);
        run.task_with_ctx(TaskDef::new("parent"), move |ctx| {
            for _ in 0..16 {
                let c = Arc::clone(&child_count);
                ctx.spawn(TaskDef::new("child"), move || {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            ctx.taskwait();
            after_wait.store(child_count.load(Ordering::SeqCst), Ordering::SeqCst);
        })
        .unwrap();
    }
    let stats = pool.run(run);
    assert_eq!(stats.tasks_executed, 17);
    assert_eq!(child_count.load(Ordering::SeqCst), 16);
    assert_eq!(
        after_wait.load(Ordering::SeqCst),
        16,
        "taskwait returned before all children finished"
    );
}

#[test]
fn sibling_dependencies_order_children() {
    let pool = Pool::new(4);
    let mut run = GraphRun::new();
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));
    {
        let log = Arc::clone(&log);
        run.task_with_ctx(TaskDef::new("parent"), move |ctx| {
            let r = DataRegion::new(0x100, 8);
            // Chain of children through one region: strict order.
            for i in 0..8u32 {
                let log = Arc::clone(&log);
                ctx.spawn(TaskDef::new("step").reads_writes(r), move || {
                    log.lock().unwrap().push(i);
                });
            }
            ctx.taskwait();
        })
        .unwrap();
    }
    pool.run(run);
    assert_eq!(*log.lock().unwrap(), (0..8).collect::<Vec<_>>());
}

#[test]
fn two_level_nesting() {
    let pool = Pool::new(4);
    let mut run = GraphRun::new();
    let total = Arc::new(AtomicUsize::new(0));
    {
        let total = Arc::clone(&total);
        run.task_with_ctx(TaskDef::new("root"), move |ctx| {
            for _ in 0..4 {
                let total = Arc::clone(&total);
                ctx.spawn_with_ctx(TaskDef::new("mid"), move |ctx2| {
                    for _ in 0..4 {
                        let total = Arc::clone(&total);
                        ctx2.spawn(TaskDef::new("leaf"), move || {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    ctx2.taskwait();
                    total.fetch_add(100, Ordering::SeqCst);
                });
            }
            ctx.taskwait();
        })
        .unwrap();
    }
    let stats = pool.run(run);
    // 1 root + 4 mids + 16 leaves.
    assert_eq!(stats.tasks_executed, 21);
    assert_eq!(total.load(Ordering::SeqCst), 16 + 400);
}

#[test]
fn taskwait_helps_instead_of_blocking() {
    // One worker only: taskwait must execute the children itself or the
    // run would deadlock (the single worker is inside the parent body).
    let pool = Pool::new(1);
    let mut run = GraphRun::new();
    let done = Arc::new(AtomicUsize::new(0));
    {
        let done = Arc::clone(&done);
        run.task_with_ctx(TaskDef::new("parent"), move |ctx| {
            for _ in 0..8 {
                let done = Arc::clone(&done);
                ctx.spawn(TaskDef::new("child"), move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            ctx.taskwait();
            assert_eq!(done.load(Ordering::SeqCst), 8);
        })
        .unwrap();
    }
    let stats = pool.run(run);
    assert_eq!(stats.tasks_executed, 9);
}

#[test]
fn nested_child_panic_propagates() {
    let pool = Pool::new(2);
    let mut run = GraphRun::new();
    run.task_with_ctx(TaskDef::new("parent"), |ctx| {
        ctx.spawn(TaskDef::new("bad"), || panic!("child exploded"));
        ctx.taskwait();
    })
    .unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(run)));
    assert!(result.is_err(), "child panic must surface from run()");
}

#[test]
fn children_without_taskwait_still_complete_the_run() {
    // The run only ends when *all* tasks (children included) finish, even
    // if the parent never taskwaits.
    let pool = Pool::new(3);
    let mut run = GraphRun::new();
    let count = Arc::new(AtomicUsize::new(0));
    {
        let count = Arc::clone(&count);
        run.task_with_ctx(TaskDef::new("fire-and-forget"), move |ctx| {
            for _ in 0..12 {
                let count = Arc::clone(&count);
                ctx.spawn(TaskDef::new("bg"), move || {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
    }
    let stats = pool.run(run);
    assert_eq!(stats.tasks_executed, 13);
    assert_eq!(count.load(Ordering::SeqCst), 12);
}
