//! Stress: DLB-style `set_active_threads` reconfiguration racing with
//! `parallel_for`. The paper's runtime grows and shrinks each process's
//! core allotment while compute is in flight (LeWI lends cores away,
//! DROM reclaims them); the pool must never lose or duplicate an index
//! no matter when the limit changes.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use tlb_smprt::Pool;

#[test]
fn set_active_threads_racing_parallel_for_loses_no_work() {
    const N: usize = 20_000;
    const ROUNDS: usize = 30;

    let pool = Arc::new(Pool::new(8));
    let stop = Arc::new(AtomicBool::new(false));

    // Controller: hammer the active limit up and down, as DLB would on
    // every lend/reclaim, while the main thread runs parallel loops.
    let controller = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut k = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // Sweep 1..=8 including the all-parked extreme (the caller
                // still makes progress because it participates).
                pool.set_active_threads(1 + (k % 8));
                k = k.wrapping_add(1);
                std::thread::yield_now();
            }
            pool.set_active_threads(8);
        })
    };

    for round in 0..ROUNDS {
        let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(N, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            let c = h.load(Ordering::Relaxed);
            assert_eq!(c, 1, "round {round}: index {i} executed {c} times");
        }
    }

    stop.store(true, Ordering::Relaxed);
    controller.join().unwrap();
}

#[test]
fn shrink_to_one_mid_flight_still_completes() {
    const N: usize = 50_000;
    let pool = Pool::new(8);
    let count = AtomicUsize::new(0);
    // Shrink to a single worker from inside the loop body: the remaining
    // chunks must still all run (on the caller if need be).
    pool.parallel_for(N, 32, |i| {
        if i == 1000 {
            pool.set_active_threads(1);
        }
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), N);
    pool.set_active_threads(8);
    // And the pool is still usable at full width afterwards.
    let again = AtomicUsize::new(0);
    pool.parallel_for(N, 32, |_| {
        again.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(again.load(Ordering::Relaxed), N);
}
