//! Shared-memory malleable task runtime (the Nanos6-on-a-node substrate).
//!
//! This crate executes [`tlb_tasking`] task graphs on real threads with
//! work stealing, and it is *malleable* in the DLB sense: the number of
//! active workers can be changed while a graph is running, which is the
//! property LeWI/DROM exploit (paper §3.3 — "the ability to dynamically
//! adapt to varying resources at runtime, in this case the number of
//! cores").
//!
//! Components:
//!
//! * [`Pool`] — a work-stealing thread pool (in-tree std-only deques + a
//!   global injector) whose active-worker limit can be raised or lowered
//!   at any time; surplus workers park and wake without busy-waiting.
//! * [`Pool::parallel_for`] — the data-parallel fast path the application
//!   kernels run on: an atomic chunk counter shared by the caller and the
//!   active workers, with chunk boundaries independent of thread count so
//!   kernels can build bitwise-reproducible reductions on top.
//! * [`GraphRun`] — a task graph plus one closure per task; [`Pool::run`]
//!   executes it respecting all dependencies and reports per-worker
//!   statistics.
//! * [`LewiCoupler`] — couples two pools on the same "node" through a
//!   [`tlb_dlb::NodeDlb`]: when one pool runs out of work its cores are
//!   lent to the other, and reclaimed on demand — shared-memory LeWI with
//!   real threads.
//! * [`parallel_for`] — a small scoped-thread data-parallel helper for
//!   one-shot use outside a pool.
//!
//! # Example
//!
//! ```
//! use tlb_smprt::{Pool, GraphRun};
//! use tlb_tasking::{TaskDef, DataRegion};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let pool = Pool::new(4);
//! let mut run = GraphRun::new();
//! let sum = Arc::new(AtomicU64::new(0));
//! let r = DataRegion::new(0x1000, 8);
//! for i in 0..10u64 {
//!     let sum = Arc::clone(&sum);
//!     // All tasks write the same region: they execute sequentially.
//!     run.task(TaskDef::new("add").reads_writes(r), move || {
//!         sum.fetch_add(i, Ordering::Relaxed);
//!     }).unwrap();
//! }
//! let stats = pool.run(run);
//! assert_eq!(sum.load(Ordering::Relaxed), 45);
//! assert_eq!(stats.tasks_executed, 10);
//! ```

mod coupler;
mod deque;
mod par;
mod pool;
mod run;

pub use coupler::LewiCoupler;
pub use par::parallel_for;
pub use pool::{Occupancy, Pool, PoolProfile, RegionProfile, RunStats, TaskCtx};
pub use run::GraphRun;
