//! In-tree work-distribution queues (std-only).
//!
//! The pool previously used `crossbeam-deque`; to keep the workspace free
//! of registry dependencies it now uses these small mutex-guarded queues.
//! The tasks this runtime schedules are compute kernels (CG sweeps, force
//! blocks) whose bodies run for microseconds to milliseconds, so a short
//! critical section around a `VecDeque` is far below measurement noise —
//! and the data-parallel hot loops bypass queues entirely via
//! [`crate::Pool::parallel_for`]'s atomic chunk counter.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A worker's local FIFO queue. Push and pop at the owner's end; thieves
/// take from the same order (FIFO preserves submission order, which the
/// pool's tests rely on for cache-affinity heuristics, not correctness).
pub(crate) struct WorkerQueue<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> WorkerQueue<T> {
    pub(crate) fn new() -> Self {
        WorkerQueue {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Push a job onto the owner's queue.
    pub(crate) fn push(&self, item: T) {
        self.inner.lock().unwrap().push_back(item);
    }

    /// Pop the next job in FIFO order.
    pub(crate) fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    /// A handle other workers use to steal from this queue.
    pub(crate) fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Steal-side handle to a [`WorkerQueue`].
pub(crate) struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Take one job from the victim's queue.
    pub(crate) fn steal(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }
}

/// The global injection queue: tasks submitted from outside any worker
/// (initially ready tasks, spawned children overflowing the local queue).
pub(crate) struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    pub(crate) fn new() -> Self {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueue a job.
    pub(crate) fn push(&self, item: T) {
        self.inner.lock().unwrap().push_back(item);
    }

    /// Take one job.
    pub(crate) fn steal(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    /// Take one job and move up to `batch` more into `local`, amortising
    /// injector contention the way crossbeam's `steal_batch_and_pop` does.
    pub(crate) fn steal_batch_and_pop(&self, local: &WorkerQueue<T>, batch: usize) -> Option<T> {
        let mut q = self.inner.lock().unwrap();
        let first = q.pop_front()?;
        if batch > 0 && !q.is_empty() {
            let take = batch.min(q.len());
            let mut l = local.inner.lock().unwrap();
            for _ in 0..take {
                l.push_back(q.pop_front().expect("len checked"));
            }
        }
        Some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = WorkerQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        let s = q.stealer();
        assert_eq!(s.steal(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert_eq!(s.steal(), None);
    }

    #[test]
    fn injector_batch_moves_to_local() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let local = WorkerQueue::new();
        let first = inj.steal_batch_and_pop(&local, 4);
        assert_eq!(first, Some(0));
        // 1..=4 moved to the local queue, 5.. remain in the injector.
        assert_eq!(local.pop(), Some(1));
        assert_eq!(local.pop(), Some(2));
        assert_eq!(inj.steal(), Some(5));
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let inj = Arc::new(Injector::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        inj.push(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        while inj.steal().is_some() {
            count += 1;
        }
        assert_eq!(count, 1000);
    }
}
