//! A task graph paired with executable bodies.

use crate::TaskCtx;
use tlb_tasking::{GraphError, TaskDef, TaskGraph, TaskId};

/// The body of one task. Every body receives a [`TaskCtx`] for spawning
/// nested child tasks and task-waiting on them; plain closures that take
/// no context are wrapped by [`GraphRun::task`].
pub(crate) type Body = Box<dyn FnOnce(&TaskCtx) + Send + 'static>;

/// A task graph under construction together with the closure each task
/// runs. Submit tasks with [`GraphRun::task`], then execute the whole
/// graph with [`crate::Pool::run`].
#[derive(Default)]
pub struct GraphRun {
    pub(crate) graph: TaskGraph,
    pub(crate) bodies: Vec<Option<Body>>,
}

impl GraphRun {
    /// An empty run.
    pub fn new() -> Self {
        GraphRun {
            graph: TaskGraph::new(),
            bodies: Vec::new(),
        }
    }

    /// Submit a task definition with its body. Dependencies follow from
    /// the accesses declared on `def`, exactly as in [`TaskGraph::submit`].
    pub fn task(
        &mut self,
        def: TaskDef,
        body: impl FnOnce() + Send + 'static,
    ) -> Result<TaskId, GraphError> {
        self.task_with_ctx(def, move |_| body())
    }

    /// Submit a task whose body receives a [`TaskCtx`], enabling nested
    /// child tasks and `taskwait` (OmpSs-2 nesting, paper §3.1).
    pub fn task_with_ctx(
        &mut self,
        def: TaskDef,
        body: impl FnOnce(&TaskCtx) + Send + 'static,
    ) -> Result<TaskId, GraphError> {
        let id = self.graph.submit(def)?;
        debug_assert_eq!(id.raw() as usize, self.bodies.len());
        self.bodies.push(Some(Box::new(body)));
        Ok(id)
    }

    /// Number of tasks submitted.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether no tasks were submitted.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Cost-weighted critical path of the submitted graph.
    pub fn critical_path(&self) -> f64 {
        self.graph.critical_path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_tasking::DataRegion;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut run = GraphRun::new();
        let a = run.task(TaskDef::new("a"), || {}).unwrap();
        let b = run.task(TaskDef::new("b"), || {}).unwrap();
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(run.len(), 2);
    }

    #[test]
    fn dependencies_recorded() {
        let mut run = GraphRun::new();
        let r = DataRegion::new(0, 8);
        let a = run.task(TaskDef::new("w").writes(r), || {}).unwrap();
        let b = run.task(TaskDef::new("r").reads(r), || {}).unwrap();
        assert_eq!(run.graph.predecessors(b), &[a]);
    }
}
