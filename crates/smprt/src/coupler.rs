//! Shared-memory LeWI: couple two pools on one node through [`NodeDlb`].

use crate::Pool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tlb_dlb::{NodeDlb, ProcId};

/// Couples worker pools that share a node's cores, implementing LeWI with
/// real threads: when a pool has no pending work its cores become
/// borrowable by the other pools, and are reclaimed (after the borrower's
/// current tasks finish) as soon as work returns.
///
/// Each pool must be created with `threads == node cores` so that it *can*
/// expand to the whole node; the coupler continuously adjusts each pool's
/// active-thread limit to the number of cores it currently holds in the
/// shared [`NodeDlb`].
pub struct LewiCoupler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<NodeDlb>>,
}

impl LewiCoupler {
    /// Start coupling. `owned[i]` cores are initially owned by pool `i`;
    /// the sum must equal every pool's thread count (the node size).
    /// `poll` is the adjustment period (a millisecond or two).
    pub fn start(pools: Vec<Arc<Pool>>, owned: Vec<usize>, poll: Duration) -> Self {
        assert_eq!(pools.len(), owned.len(), "one ownership count per pool");
        let cores: usize = owned.iter().sum();
        for (i, p) in pools.iter().enumerate() {
            assert_eq!(
                p.threads(),
                cores,
                "pool {i} must have threads == node cores to be malleable"
            );
        }
        let mut dlb = NodeDlb::with_counts(&owned, true);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tlb-lewi-coupler".into())
            .spawn(move || {
                let mut held: Vec<Vec<usize>> = vec![Vec::new(); pools.len()];
                while !stop2.load(Ordering::Relaxed) {
                    for (i, pool) in pools.iter().enumerate() {
                        let proc = ProcId(i);
                        let demand = pool.load().min(cores);
                        // Grow towards demand.
                        while held[i].len() < demand {
                            match dlb.acquire(proc) {
                                Some(c) => held[i].push(c),
                                None => break,
                            }
                        }
                        // Shrink down to demand (release our newest cores
                        // first; keep at least the owned minimum of one).
                        while held[i].len() > demand {
                            let c = held[i].pop().expect("len checked");
                            dlb.release(proc, c).expect("held core releases");
                        }
                        pool.set_active_threads(held[i].len().max(1));
                    }
                    std::thread::sleep(poll);
                }
                // Return all cores on shutdown.
                for (i, cs) in held.into_iter().enumerate() {
                    for c in cs {
                        dlb.release(ProcId(i), c).expect("held core releases");
                    }
                }
                dlb
            })
            .expect("failed to spawn coupler");
        LewiCoupler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop coupling and return the final DLB state (for inspection).
    pub fn stop(mut self) -> NodeDlb {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("coupler already stopped")
            .join()
            .expect("coupler thread panicked")
    }
}

impl Drop for LewiCoupler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphRun;
    use std::sync::atomic::AtomicUsize;
    use tlb_tasking::TaskDef;

    fn sleepy_run(tasks: usize, us: u64, counter: Arc<AtomicUsize>) -> GraphRun {
        let mut run = GraphRun::new();
        for _ in 0..tasks {
            let c = Arc::clone(&counter);
            run.task(TaskDef::new("t"), move || {
                std::thread::sleep(Duration::from_micros(us));
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        run
    }

    #[test]
    fn idle_pool_lends_cores_to_busy_pool() {
        let cores = 4;
        let pool_a = Arc::new(Pool::new(cores));
        let pool_b = Arc::new(Pool::new(cores));
        // Start both pools throttled; the coupler takes over the limits.
        pool_a.set_active_threads(1);
        pool_b.set_active_threads(1);
        let coupler = LewiCoupler::start(
            vec![Arc::clone(&pool_a), Arc::clone(&pool_b)],
            vec![2, 2],
            Duration::from_micros(200),
        );
        // Pool B stays idle; pool A gets a pile of work. With LeWI it
        // should reach close to 4 active threads.
        let counter = Arc::new(AtomicUsize::new(0));
        let run = sleepy_run(200, 400, Arc::clone(&counter));
        let mut peak_active = 0;
        let watcher_pool = Arc::clone(&pool_a);
        let watcher_stop = Arc::new(AtomicBool::new(false));
        let ws = Arc::clone(&watcher_stop);
        let watcher = std::thread::spawn(move || {
            let mut peak = 0;
            while !ws.load(Ordering::Relaxed) {
                peak = peak.max(watcher_pool.active_threads());
                std::thread::sleep(Duration::from_micros(100));
            }
            peak
        });
        pool_a.run(run);
        watcher_stop.store(true, Ordering::Relaxed);
        peak_active = peak_active.max(watcher.join().unwrap());
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert!(
            peak_active > 2,
            "pool A never borrowed beyond its 2 owned cores (peak {peak_active})"
        );
        let dlb = coupler.stop();
        assert_eq!(dlb.busy_count(), 0, "all cores returned");
    }
}
