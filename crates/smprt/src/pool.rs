//! The malleable work-stealing thread pool.

use crate::deque::{Injector, Stealer, WorkerQueue};
use crate::run::{Body, GraphRun};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;
use tlb_tasking::{TaskDef, TaskGraph, TaskId};

type Job = (TaskId, Body);

/// Statistics of one [`Pool::run`] execution.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Total tasks executed.
    pub tasks_executed: usize,
    /// Tasks executed per worker index.
    pub per_worker: Vec<usize>,
    /// Jobs obtained by stealing from another worker's deque.
    pub steals: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Instantaneous occupancy snapshot of a [`Pool`] ([`Pool::occupancy`]).
///
/// This is the admission-control signal a caller queueing work *onto*
/// the pool reads: the `tlb-serve` daemon compares outstanding work
/// against its queue bound to decide whether to shed a request, and
/// reports these numbers from `/stats`. The snapshot is advisory — the
/// counters move concurrently — but each field is individually
/// consistent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Total worker threads (active or parked).
    pub threads: usize,
    /// Current active-worker limit (malleability).
    pub active_threads: usize,
    /// Tasks of the current graph run not yet completed.
    pub graph_outstanding: usize,
    /// Indices of the in-flight `parallel_for`, if any, not yet done.
    pub dp_outstanding: usize,
}

impl Occupancy {
    /// Total outstanding work items of both kinds.
    pub fn outstanding(&self) -> usize {
        self.graph_outstanding + self.dp_outstanding
    }

    /// Outstanding work per active worker — > 1.0 means the pool has a
    /// backlog, the signal backpressure policies key off.
    pub fn saturation(&self) -> f64 {
        self.outstanding() as f64 / self.active_threads.max(1) as f64
    }
}

/// Accumulated wall-clock profile of one named `parallel_for` region
/// (see [`Pool::parallel_for_named`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionProfile {
    /// Region name given by the caller.
    pub name: String,
    /// Number of `parallel_for_named` invocations.
    pub calls: u64,
    /// Total indices executed across those calls.
    pub indices: u64,
    /// Total wall-clock time spent inside the region.
    pub wall: Duration,
}

/// Snapshot of a pool's lifetime profiling state ([`Pool::profile`]).
///
/// Region wall-clocks are only accumulated while profiling is enabled
/// ([`Pool::set_profiling`]); the park/steal counters are plain atomics
/// and always on.
#[derive(Clone, Debug, Default)]
pub struct PoolProfile {
    /// Named `parallel_for` regions, in first-use order.
    pub regions: Vec<RegionProfile>,
    /// Times a worker parked because it was above the active limit
    /// (malleability: DLB shrank the pool).
    pub malleability_parks: u64,
    /// Times a worker parked because no work was visible.
    pub idle_parks: u64,
    /// Jobs obtained by stealing from another worker's deque, summed
    /// over every run the pool ever executed.
    pub steals: u64,
}

struct ActiveRun {
    graph: TaskGraph,
    bodies: Vec<Option<Body>>,
    remaining: usize,
    per_worker: Vec<usize>,
    steals: usize,
    /// First panic payload from a task body; re-thrown by `run`.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

/// One `parallel_for` operation in flight: a chunk counter the caller and
/// every active worker pull from. The body pointer is only dereferenced
/// for chunks claimed with `start < n`, and `parallel_for` does not return
/// until `done == n`, so the borrow it erases outlives every call.
struct DpJob {
    next: AtomicUsize,
    done: AtomicUsize,
    n: usize,
    chunk: usize,
    body: *const (dyn Fn(usize) + Sync),
}

// SAFETY: `body` points at a `Sync` closure owned by the `parallel_for`
// caller, which blocks until all chunk executions complete; the raw
// pointer is never dereferenced after that (claims see `start >= n`).
unsafe impl Send for DpJob {}
unsafe impl Sync for DpJob {}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    active_limit: AtomicUsize,
    shutdown: AtomicBool,
    /// Bumped on every job push so sleeping workers re-check for work.
    work_epoch: AtomicU64,
    state: Mutex<Option<ActiveRun>>,
    /// The in-flight data-parallel operation, if any.
    dp: Mutex<Option<Arc<DpJob>>>,
    work_cv: Condvar,
    done_cv: Condvar,
    // Lifetime profiling (see `PoolProfile`).
    profiling: AtomicBool,
    malleability_parks: AtomicU64,
    idle_parks: AtomicU64,
    steals_total: AtomicU64,
    regions: Mutex<Vec<RegionProfile>>,
}

impl Shared {
    fn lock_state(&self) -> MutexGuard<'_, Option<ActiveRun>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A work-stealing pool over `threads` OS threads whose *active* worker
/// count can be changed at any time ([`Pool::set_active_threads`]) — the
/// malleability DLB relies on. Workers above the active limit park on a
/// condition variable; lowering the limit never preempts a running task
/// (LeWI semantics: a reclaimed core is returned when the current task
/// finishes).
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// Serialises concurrent `run` calls.
    run_gate: Mutex<()>,
    /// Serialises concurrent `parallel_for` calls (one chunk counter).
    dp_gate: Mutex<()>,
}

impl Pool {
    /// Spawn a pool with `threads` workers, all initially active.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        let deques: Vec<WorkerQueue<Job>> = (0..threads).map(|_| WorkerQueue::new()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            active_limit: AtomicUsize::new(threads),
            shutdown: AtomicBool::new(false),
            work_epoch: AtomicU64::new(0),
            state: Mutex::new(None),
            dp: Mutex::new(None),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            profiling: AtomicBool::new(false),
            malleability_parks: AtomicU64::new(0),
            idle_parks: AtomicU64::new(0),
            steals_total: AtomicU64::new(0),
            regions: Mutex::new(Vec::new()),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(i, deque)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tlb-worker-{i}"))
                    .spawn(move || worker_loop(i, deque, shared))
                    .expect("failed to spawn worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            threads,
            run_gate: Mutex::new(()),
            dp_gate: Mutex::new(()),
        }
    }

    /// Total worker threads (active or parked).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current active-worker limit.
    pub fn active_threads(&self) -> usize {
        self.shared.active_limit.load(Ordering::Relaxed)
    }

    /// Change the number of workers allowed to execute tasks, clamped to
    /// `1..=threads`. Raising the limit wakes parked workers immediately;
    /// lowering it takes effect as running tasks finish.
    pub fn set_active_threads(&self, n: usize) {
        let n = n.clamp(1, self.threads);
        self.shared.active_limit.store(n, Ordering::Relaxed);
        let _guard = self.shared.lock_state();
        self.shared.work_cv.notify_all();
    }

    /// Outstanding (not yet completed) tasks of the run currently
    /// executing, or zero when the pool is idle. This is the demand signal
    /// the LeWI coupler polls.
    pub fn load(&self) -> usize {
        self.shared.lock_state().as_ref().map_or(0, |a| a.remaining)
    }

    /// Instantaneous [`Occupancy`] snapshot: thread counts plus the
    /// outstanding work of the current graph run and the in-flight
    /// `parallel_for` (its unfinished index count). Callers that feed
    /// the pool from their own queue use this for admission control —
    /// see the `tlb-serve` daemon.
    pub fn occupancy(&self) -> Occupancy {
        let dp_outstanding = self
            .shared
            .dp
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map_or(0, |job| {
                job.n.saturating_sub(job.done.load(Ordering::Acquire))
            });
        Occupancy {
            threads: self.threads,
            active_threads: self.active_threads(),
            graph_outstanding: self.load(),
            dp_outstanding,
        }
    }

    /// Run `body(i)` for every `i in 0..n` across the pool's *active*
    /// workers plus the calling thread, dealing indices in chunks of
    /// `chunk` from an atomic counter.
    ///
    /// This is the data-parallel fast path the application kernels (CG
    /// sweeps, Barnes–Hut force blocks) run inside: no task graph, no
    /// queue traffic — one `fetch_add` per chunk. It composes with
    /// malleability: workers above [`Pool::set_active_threads`]'s limit
    /// stay parked, and because the caller always participates the loop
    /// completes even if every worker is parked or busy. Concurrent
    /// `parallel_for` calls are serialised; a graph [`Pool::run`] may
    /// proceed concurrently (workers interleave both kinds of work).
    ///
    /// Chunk boundaries depend only on `n` and `chunk`, never on the
    /// thread count, which is what lets kernels build bitwise-reproducible
    /// reductions on top (fixed per-chunk partials, summed in order).
    pub fn parallel_for<F>(&self, n: usize, chunk: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        assert!(chunk > 0, "chunk must be positive");
        if n == 0 {
            return;
        }
        let body_ref: &(dyn Fn(usize) + Sync) = &body;
        if n <= chunk {
            for i in 0..n {
                body_ref(i);
            }
            return;
        }
        let _gate = self
            .dp_gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // SAFETY: erase the borrow's lifetime to store it in the shared
        // slot; see the invariant documented on `DpJob`.
        let body_ptr: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body_ref) };
        let job = Arc::new(DpJob {
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            n,
            chunk,
            body: body_ptr,
        });
        *self
            .shared
            .dp
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::clone(&job));
        self.shared.work_epoch.fetch_add(1, Ordering::Release);
        {
            let _guard = self.shared.lock_state();
            self.shared.work_cv.notify_all();
        }
        // The caller is always a participant, so progress never depends
        // on worker availability.
        run_dp_chunks(&job, body_ref);
        // Tail wait: workers may still be finishing chunks they claimed.
        if job.done.load(Ordering::Acquire) < n {
            let mut guard = self.shared.lock_state();
            while job.done.load(Ordering::Acquire) < n {
                let (g, _) = self
                    .shared
                    .done_cv
                    .wait_timeout(guard, Duration::from_micros(200))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                guard = g;
            }
        }
        *self
            .shared
            .dp
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// Enable or disable wall-clock profiling of named `parallel_for`
    /// regions. Off by default; when off, [`Pool::parallel_for_named`]
    /// costs exactly one relaxed atomic load over `parallel_for`.
    pub fn set_profiling(&self, on: bool) {
        self.shared.profiling.store(on, Ordering::Relaxed);
    }

    /// [`Pool::parallel_for`] that attributes its wall-clock time to the
    /// named region when profiling is enabled (see [`Pool::profile`]).
    pub fn parallel_for_named<F>(&self, name: &str, n: usize, chunk: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        if !self.shared.profiling.load(Ordering::Relaxed) {
            return self.parallel_for(n, chunk, body);
        }
        let started = std::time::Instant::now();
        self.parallel_for(n, chunk, body);
        let wall = started.elapsed();
        let mut regions = self
            .shared
            .regions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = match regions.iter_mut().find(|r| r.name == name) {
            Some(r) => r,
            None => {
                regions.push(RegionProfile {
                    name: name.to_string(),
                    ..RegionProfile::default()
                });
                regions.last_mut().expect("just pushed")
            }
        };
        entry.calls += 1;
        entry.indices += n as u64;
        entry.wall += wall;
    }

    /// Snapshot the pool's lifetime profiling state.
    pub fn profile(&self) -> PoolProfile {
        PoolProfile {
            regions: self
                .shared
                .regions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone(),
            malleability_parks: self.shared.malleability_parks.load(Ordering::Relaxed),
            idle_parks: self.shared.idle_parks.load(Ordering::Relaxed),
            steals: self.shared.steals_total.load(Ordering::Relaxed),
        }
    }

    /// Execute a [`GraphRun`] to completion and return statistics.
    ///
    /// Concurrent `run` calls from different threads are serialised.
    pub fn run(&self, run: GraphRun) -> RunStats {
        let _gate = self
            .run_gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let started = std::time::Instant::now();
        let GraphRun { graph, mut bodies } = run;
        let total = graph.len();
        if total == 0 {
            return RunStats {
                per_worker: vec![0; self.threads],
                ..RunStats::default()
            };
        }
        {
            let mut state = self.shared.lock_state();
            debug_assert!(state.is_none(), "run gate should prevent overlap");
            let mut active = ActiveRun {
                remaining: total,
                per_worker: vec![0; self.threads],
                steals: 0,
                graph,
                bodies: Vec::new(),
                panic: None,
            };
            // Seed initially ready tasks.
            let ready = active.graph.ready();
            for id in ready {
                active.graph.start(id).expect("ready task must start");
                let body = bodies[id.raw() as usize]
                    .take()
                    .expect("missing body for ready task");
                self.shared.injector.push((id, body));
            }
            active.bodies = bodies;
            *state = Some(active);
            self.shared.work_epoch.fetch_add(1, Ordering::Release);
            self.shared.work_cv.notify_all();
        }
        // Wait for completion.
        let mut state = self.shared.lock_state();
        while state.as_ref().is_some_and(|a| a.remaining > 0) {
            state = self
                .shared
                .done_cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let mut finished = state.take().expect("run vanished");
        drop(state);
        if let Some(payload) = finished.panic.take() {
            // A task body panicked: surface it on the caller, exactly as
            // a panicking closure would in a scoped-thread API.
            std::panic::resume_unwind(payload);
        }
        RunStats {
            // Children spawned during execution count too, so sum what
            // actually ran rather than reporting the pre-run task count.
            tasks_executed: finished.per_worker.iter().sum(),
            per_worker: finished.per_worker,
            steals: finished.steals,
            elapsed: started.elapsed(),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        {
            let _guard = self.shared.lock_state();
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pull chunks off a data-parallel job until the counter is exhausted.
/// Returns whether any chunk was executed. Notifies `done_cv` when this
/// call completes the final indices.
fn run_dp_chunks(job: &DpJob, body: &(dyn Fn(usize) + Sync)) -> bool {
    let mut did_any = false;
    loop {
        let start = job.next.fetch_add(job.chunk, Ordering::Relaxed);
        if start >= job.n {
            return did_any;
        }
        did_any = true;
        let end = (start + job.chunk).min(job.n);
        for i in start..end {
            body(i);
        }
        job.done.fetch_add(end - start, Ordering::Release);
    }
}

/// Worker-side participation in an in-flight `parallel_for`, if one is
/// published. Returns whether any chunk was executed.
fn try_dp_work(shared: &Shared) -> bool {
    let job = shared
        .dp
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let Some(job) = job else {
        return false;
    };
    // SAFETY: chunks are only claimed while `next < n`; the publishing
    // `parallel_for` frame is alive until all such chunks complete.
    let body = unsafe { &*job.body };
    let did = run_dp_chunks(&job, body);
    if did && job.done.load(Ordering::Acquire) >= job.n {
        let _guard = shared.lock_state();
        shared.done_cv.notify_all();
    }
    did
}

fn find_job(index: usize, deque: &WorkerQueue<Job>, shared: &Shared) -> Option<(Job, bool)> {
    if let Some(job) = deque.pop() {
        return Some((job, false));
    }
    if let Some(job) = shared.injector.steal_batch_and_pop(deque, 4) {
        return Some((job, false));
    }
    for (i, stealer) in shared.stealers.iter().enumerate() {
        if i == index {
            continue;
        }
        if let Some(job) = stealer.steal() {
            return Some((job, true));
        }
    }
    None
}

fn worker_loop(index: usize, deque: WorkerQueue<Job>, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Malleability: parked while above the active limit.
        if index >= shared.active_limit.load(Ordering::Relaxed) {
            let state = shared.lock_state();
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if index >= shared.active_limit.load(Ordering::Relaxed) {
                shared.malleability_parks.fetch_add(1, Ordering::Relaxed);
                let _ = shared
                    .work_cv
                    .wait_timeout(state, Duration::from_millis(5))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            continue;
        }
        let epoch = shared.work_epoch.load(Ordering::Acquire);
        // Data-parallel work takes priority: it is the latency-sensitive
        // inner loop of a kernel the caller is actively waiting on.
        if try_dp_work(&shared) {
            continue;
        }
        let Some((job, stolen)) = find_job(index, &deque, &shared) else {
            // No work visible: sleep unless new work arrived since we
            // started searching (epoch check avoids missed wakeups).
            let state = shared.lock_state();
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if shared.work_epoch.load(Ordering::Acquire) == epoch {
                shared.idle_parks.fetch_add(1, Ordering::Relaxed);
                let _ = shared
                    .work_cv
                    .wait_timeout(state, Duration::from_millis(1))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            continue;
        };
        execute_job(index, Some(&deque), &shared, job, stolen);
    }
}

/// Run one job to completion: execute the body (panics are caught and
/// recorded, never kill the thread), then release successors. Shared by
/// the worker loop and [`TaskCtx::taskwait`]'s helping path (which has no
/// local deque).
fn execute_job(
    index: usize,
    deque: Option<&WorkerQueue<Job>>,
    shared: &Arc<Shared>,
    job: Job,
    stolen: bool,
) {
    let (id, body) = job;
    let ctx = TaskCtx {
        shared: Arc::clone(shared),
        task: id,
        worker: index,
    };
    // A panicking body must not kill the worker thread: that would
    // strand `remaining > 0` forever and hang `run`. Catch it, record
    // the payload, and count the task as executed so the run drains.
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx))).err();
    // Mark complete, release successors, gather their bodies.
    let mut state = shared.lock_state();
    let active = state.as_mut().expect("job without active run");
    if let Some(payload) = panic {
        if active.panic.is_none() {
            active.panic = Some(payload);
        }
    }
    let newly_ready = active.graph.complete(id).expect("completion failed");
    active.per_worker[index] += 1;
    if stolen {
        active.steals += 1;
        shared.steals_total.fetch_add(1, Ordering::Relaxed);
    }
    active.remaining -= 1;
    let mut pushed = false;
    for (k, succ) in newly_ready.into_iter().enumerate() {
        active
            .graph
            .start(succ)
            .expect("ready successor must start");
        let body = active.bodies[succ.raw() as usize]
            .take()
            .expect("missing body for successor");
        match (k, deque) {
            // Keep the first successor local for cache affinity.
            (0, Some(d)) => d.push((succ, body)),
            _ => shared.injector.push((succ, body)),
        }
        pushed = true;
    }
    let done = active.remaining == 0;
    drop(state);
    if pushed {
        shared.work_epoch.fetch_add(1, Ordering::Release);
        let _guard = shared.lock_state();
        shared.work_cv.notify_all();
    }
    if done {
        let _guard = shared.lock_state();
        shared.done_cv.notify_all();
    }
}

/// Handle passed to every task body: spawn nested child tasks and wait
/// for them (OmpSs-2 nesting and `taskwait`, paper §3.1). Children form
/// their own dependency domain — their declared accesses order them
/// against their *siblings*, independent of the parent's level.
pub struct TaskCtx {
    shared: Arc<Shared>,
    task: TaskId,
    worker: usize,
}

impl TaskCtx {
    /// The id of the currently executing task.
    pub fn current(&self) -> TaskId {
        self.task
    }

    /// Spawn a child task of the current one. Its accesses order it
    /// against its siblings; it may start immediately on any worker.
    pub fn spawn(&self, def: TaskDef, body: impl FnOnce() + Send + 'static) -> TaskId {
        self.spawn_with_ctx(def, move |_| body())
    }

    /// Spawn a child whose body itself receives a [`TaskCtx`] (arbitrary
    /// nesting depth).
    pub fn spawn_with_ctx(
        &self,
        def: TaskDef,
        body: impl FnOnce(&TaskCtx) + Send + 'static,
    ) -> TaskId {
        let def = def.child_of(self.task);
        let mut state = self.shared.lock_state();
        let active = state.as_mut().expect("spawn outside a run");
        let id = active.graph.submit(def).expect("parent is running");
        debug_assert_eq!(id.raw() as usize, active.bodies.len());
        active.remaining += 1;
        if active.graph.state(id) == tlb_tasking::TaskState::Ready {
            active.graph.start(id).expect("ready child must start");
            active.bodies.push(None);
            self.shared.injector.push((id, Box::new(body)));
        } else {
            active.bodies.push(Some(Box::new(body)));
        }
        drop(state);
        self.shared.work_epoch.fetch_add(1, Ordering::Release);
        let _guard = self.shared.lock_state();
        self.shared.work_cv.notify_all();
        id
    }

    /// Block until every child of the current task has completed — by
    /// *helping*: while waiting, this worker executes other ready tasks
    /// (stolen from the injector or any worker's deque), so a task-waiting
    /// parent never wastes its core.
    pub fn taskwait(&self) {
        loop {
            {
                let state = self.shared.lock_state();
                let active = state.as_ref().expect("taskwait outside a run");
                if active.graph.pending_children(Some(self.task)) == 0 {
                    return;
                }
            }
            // Help: run anything available anywhere.
            match find_job_anywhere(&self.shared) {
                Some(job) => execute_job(self.worker, None, &self.shared, job, true),
                None => std::thread::yield_now(),
            }
        }
    }
}

/// Steal from the injector or any worker's deque (used by helping waits,
/// which have no local deque of their own).
fn find_job_anywhere(shared: &Shared) -> Option<Job> {
    if let Some(job) = shared.injector.steal() {
        return Some(job);
    }
    for stealer in shared.stealers.iter() {
        if let Some(job) = stealer.steal() {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphRun;
    use std::sync::atomic::AtomicUsize;
    use tlb_tasking::{DataRegion, TaskDef};

    #[test]
    fn executes_all_tasks() {
        let pool = Pool::new(4);
        let mut run = GraphRun::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            run.task(TaskDef::new("inc"), move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        let stats = pool.run(run);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(stats.tasks_executed, 100);
        assert_eq!(stats.per_worker.iter().sum::<usize>(), 100);
    }

    #[test]
    fn empty_run_returns_immediately() {
        let pool = Pool::new(2);
        let stats = pool.run(GraphRun::new());
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn dependencies_enforced_under_parallelism() {
        let pool = Pool::new(8);
        let mut run = GraphRun::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let r = DataRegion::new(0, 8);
        // A chain through a region: must execute strictly in order even
        // with 8 hungry workers.
        for i in 0..50u32 {
            let log = Arc::clone(&log);
            run.task(TaskDef::new("step").reads_writes(r), move || {
                log.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(i);
            })
            .unwrap();
        }
        pool.run(run);
        let log = log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(*log, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fan_out_fan_in() {
        let pool = Pool::new(4);
        let mut run = GraphRun::new();
        let acc = Arc::new(AtomicUsize::new(0));
        let src = DataRegion::new(0, 1024);
        let chunks = src.chunks(16);
        // Producer writes whole region, consumers read chunks, reducer
        // reads whole region again.
        {
            let acc = Arc::clone(&acc);
            run.task(TaskDef::new("produce").writes(src), move || {
                acc.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        for c in &chunks {
            let acc = Arc::clone(&acc);
            run.task(TaskDef::new("consume").reads(*c), move || {
                assert!(
                    acc.load(Ordering::Relaxed) >= 1,
                    "consumer ran before producer"
                );
                acc.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        {
            let acc = Arc::clone(&acc);
            // inout, not in: the reducer must order behind the *reader*
            // consumers too (readers commute with each other, so a plain
            // read would only order behind the producer).
            run.task(TaskDef::new("reduce").reads_writes(src), move || {
                assert_eq!(acc.load(Ordering::Relaxed), 17, "reducer ran early");
            })
            .unwrap();
        }
        let stats = pool.run(run);
        assert_eq!(stats.tasks_executed, 18);
    }

    #[test]
    fn active_limit_bounds_concurrency() {
        let pool = Pool::new(4);
        pool.set_active_threads(2);
        let inflight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut run = GraphRun::new();
        for _ in 0..64 {
            let inflight = Arc::clone(&inflight);
            let peak = Arc::clone(&peak);
            run.task(TaskDef::new("t"), move || {
                let now = inflight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_micros(300));
                inflight.fetch_sub(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.run(run);
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak concurrency {} exceeded active limit",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn raising_limit_mid_run_speeds_up() {
        let pool = Pool::new(4);
        pool.set_active_threads(1);
        let mut run = GraphRun::new();
        let executed = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let executed = Arc::clone(&executed);
            run.task(TaskDef::new("t"), move || {
                std::thread::sleep(Duration::from_micros(500));
                executed.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        let pool = Arc::new(pool);
        let p2 = Arc::clone(&pool);
        let raiser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            p2.set_active_threads(4);
        });
        let stats = pool.run(run);
        raiser.join().unwrap();
        assert_eq!(executed.load(Ordering::Relaxed), 40);
        // After the raise, more than one worker must have participated.
        let participants = stats.per_worker.iter().filter(|&&n| n > 0).count();
        assert!(participants > 1, "per_worker {:?}", stats.per_worker);
    }

    #[test]
    fn sequential_runs_reuse_pool() {
        let pool = Pool::new(3);
        for round in 0..5 {
            let mut run = GraphRun::new();
            let c = Arc::new(AtomicUsize::new(0));
            for _ in 0..20 {
                let c = Arc::clone(&c);
                run.task(TaskDef::new("t"), move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
            let stats = pool.run(run);
            assert_eq!(stats.tasks_executed, 20, "round {round}");
            assert_eq!(c.load(Ordering::Relaxed), 20);
        }
    }

    #[test]
    fn task_panic_propagates_to_run() {
        let pool = Pool::new(2);
        let mut run = GraphRun::new();
        run.task(TaskDef::new("ok"), || {}).unwrap();
        run.task(TaskDef::new("boom"), || panic!("kernel exploded"))
            .unwrap();
        run.task(TaskDef::new("ok2"), || {}).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(run)));
        let payload = result.expect_err("panic must surface on the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("kernel exploded"), "payload: {msg}");
        // The pool survives and runs subsequent graphs.
        let mut run = GraphRun::new();
        run.task(TaskDef::new("after"), || {}).unwrap();
        assert_eq!(pool.run(run).tasks_executed, 1);
    }

    #[test]
    fn clamps_active_threads() {
        let pool = Pool::new(2);
        pool.set_active_threads(0);
        assert_eq!(pool.active_threads(), 1);
        pool.set_active_threads(99);
        assert_eq!(pool.active_threads(), 2);
    }

    #[test]
    fn pool_parallel_for_covers_every_index_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(5000, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_parallel_for_small_n_runs_inline() {
        let pool = Pool::new(4);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(3, 16, |i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn pool_parallel_for_sequential_calls() {
        let pool = Pool::new(2);
        for _ in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.parallel_for(100, 8, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
        }
    }

    #[test]
    fn profiling_accumulates_named_regions() {
        let pool = Pool::new(2);
        pool.set_profiling(true);
        let sum = AtomicUsize::new(0);
        for _ in 0..3 {
            pool.parallel_for_named("cg_sweep", 1000, 64, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.parallel_for_named("forces", 100, 8, |_| {});
        let p = pool.profile();
        assert_eq!(p.regions.len(), 2);
        let cg = &p.regions[0];
        assert_eq!(
            (cg.name.as_str(), cg.calls, cg.indices),
            ("cg_sweep", 3, 3000)
        );
        assert!(cg.wall > Duration::ZERO);
        assert_eq!(p.regions[1].name, "forces");
        assert_eq!(sum.load(Ordering::Relaxed), 3 * (999 * 1000 / 2));
    }

    #[test]
    fn profiling_disabled_records_no_regions() {
        let pool = Pool::new(2);
        pool.parallel_for_named("ignored", 1000, 64, |_| {});
        assert!(pool.profile().regions.is_empty());
    }

    #[test]
    fn park_and_steal_counters_advance() {
        let pool = Pool::new(4);
        pool.set_active_threads(1);
        // Give workers time to hit both park sites: three are above the
        // active limit, the active one finds no work.
        std::thread::sleep(Duration::from_millis(15));
        let p = pool.profile();
        assert!(p.malleability_parks > 0, "no malleability parks");
        assert!(p.idle_parks > 0, "no idle parks");
    }

    #[test]
    fn occupancy_idle_pool_reads_zero() {
        let pool = Pool::new(3);
        let occ = pool.occupancy();
        assert_eq!(occ.threads, 3);
        assert_eq!(occ.active_threads, 3);
        assert_eq!(occ.graph_outstanding, 0);
        assert_eq!(occ.dp_outstanding, 0);
        assert_eq!(occ.outstanding(), 0);
        assert_eq!(occ.saturation(), 0.0);
    }

    #[test]
    fn occupancy_sees_outstanding_work() {
        let pool = Arc::new(Pool::new(2));
        // Graph run: tasks that block until released, so the snapshot
        // deterministically observes outstanding > 0.
        let release = Arc::new(AtomicBool::new(false));
        let mut run = GraphRun::new();
        for _ in 0..8 {
            let release = Arc::clone(&release);
            run.task(TaskDef::new("hold"), move || {
                while !release.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
            .unwrap();
        }
        let runner = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.run(run))
        };
        // Wait until the run is installed, then sample.
        let mut seen = 0;
        for _ in 0..2000 {
            seen = pool.occupancy().graph_outstanding;
            if seen > 0 {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        assert!(seen > 0, "graph occupancy never became visible");
        assert!(pool.occupancy().saturation() > 0.0);
        release.store(true, Ordering::Relaxed);
        runner.join().unwrap();
        assert_eq!(pool.occupancy().outstanding(), 0);

        // parallel_for: sample from another thread mid-flight.
        let sampler = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut peak = 0;
                for _ in 0..2000 {
                    peak = peak.max(pool.occupancy().dp_outstanding);
                    if peak > 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                peak
            })
        };
        pool.parallel_for(512, 1, |_| std::thread::sleep(Duration::from_micros(200)));
        assert!(
            sampler.join().unwrap() > 0,
            "dp occupancy never became visible"
        );
        assert_eq!(pool.occupancy().dp_outstanding, 0);
    }

    #[test]
    fn pool_parallel_for_uses_multiple_threads() {
        let pool = Pool::new(4);
        let participants = Mutex::new(std::collections::HashSet::new());
        pool.parallel_for(256, 1, |_| {
            participants
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            std::thread::sleep(Duration::from_micros(200));
        });
        let n = participants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        assert!(n > 1, "only {n} thread(s) participated");
    }
}
