//! Data-parallel helper for the application kernels.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `body(i)` for every `i` in `0..n` across `threads` OS threads,
/// dealing indices in chunks of `chunk` via an atomic counter.
///
/// This is the small data-parallel loop the application kernels (CG sweeps,
/// force calculations) use inside a task when run on real hardware; it
/// deliberately has no dependency machinery — that lives in the task graph.
///
/// `body` receives the index and may capture shared state; it must be
/// `Sync` because multiple threads call it concurrently.
pub fn parallel_for<F>(n: usize, chunk: usize, threads: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    assert!(chunk > 0, "chunk must be positive");
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n.div_ceil(chunk));
    if threads == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let body = &body;
    let next = &next;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    body(i);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        parallel_for(1000, 7, 4, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn matches_serial_sum() {
        let total = AtomicU64::new(0);
        parallel_for(500, 16, 8, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 499 * 500 / 2);
    }

    #[test]
    fn zero_items_is_noop() {
        parallel_for(0, 4, 4, |_| panic!("must not run"));
    }

    #[test]
    fn single_thread_path() {
        let total = AtomicU64::new(0);
        parallel_for(10, 100, 1, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 45);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_panics() {
        parallel_for(10, 0, 2, |_| {});
    }
}
