//! Criterion bench: the global allocation solvers (simplex vs parametric
//! max-flow) across machine sizes — the §5.4.2 cost table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tlb_core::{GlobalPolicy, GlobalSolverKind, Platform};
use tlb_expander::{BipartiteGraph, ExpanderConfig};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation_solver");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for &nodes in &[4usize, 8, 16, 32] {
        let appranks = nodes * 2;
        let g = BipartiteGraph::generate(
            &ExpanderConfig::new(appranks, nodes, 4.min(nodes)).with_seed(1),
        )
        .unwrap();
        let platform = Platform::mn4(nodes);
        let work: Vec<f64> = (0..appranks).map(|_| rng.gen_range(1.0..50.0)).collect();
        for kind in [GlobalSolverKind::Simplex, GlobalSolverKind::Flow] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), nodes),
                &nodes,
                |b, _| {
                    let mut policy = GlobalPolicy::new(&g, &platform);
                    b.iter(|| policy.allocate(&work, kind).unwrap().objective)
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
