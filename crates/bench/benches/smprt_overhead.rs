//! Criterion bench: shared-memory runtime task overhead (spawn, steal,
//! dependency release) with real threads.

use criterion::{criterion_group, criterion_main, Criterion};
use tlb_smprt::{GraphRun, Pool};
use tlb_tasking::{DataRegion, TaskDef};

fn bench_pool(c: &mut Criterion) {
    let pool = Pool::new(4);
    c.bench_function("smprt_1000_empty_tasks", |b| {
        b.iter(|| {
            let mut run = GraphRun::new();
            for _ in 0..1000 {
                run.task(TaskDef::new("t"), || {}).unwrap();
            }
            pool.run(run).tasks_executed
        })
    });
    c.bench_function("smprt_chain_200", |b| {
        let r = DataRegion::new(0, 64);
        b.iter(|| {
            let mut run = GraphRun::new();
            for _ in 0..200 {
                run.task(TaskDef::new("t").reads_writes(r), || {}).unwrap();
            }
            pool.run(run).tasks_executed
        })
    });
    criterion::black_box(&pool);
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
