//! Criterion bench: expander graph generation and screening cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlb_expander::{BipartiteGraph, ExpanderConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("expander");
    for &(appranks, nodes, degree) in &[(16usize, 16usize, 3usize), (64, 32, 4), (128, 64, 4)] {
        group.bench_with_input(
            BenchmarkId::new("generate", format!("{appranks}x{nodes}d{degree}")),
            &(appranks, nodes, degree),
            |b, &(a, n, d)| {
                let cfg = ExpanderConfig::new(a, n, d).with_seed(3);
                b.iter(|| BipartiteGraph::generate(&cfg).unwrap().nodes())
            },
        );
    }
    group.bench_function("isoperimetric_exact_16", |b| {
        let cfg = ExpanderConfig::new(16, 16, 3).with_seed(3);
        let g = BipartiteGraph::generate(&cfg).unwrap();
        b.iter(|| tlb_expander::isoperimetric_exact(&g))
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
