//! Criterion bench: end-to-end simulation throughput — one MicroPP
//! iteration on 8 nodes (the unit of cost for every figure sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_cluster::ClusterSim;
use tlb_core::{BalanceConfig, DromPolicy, Platform};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let mut mcfg = MicroPpConfig::new(16);
    mcfg.iterations = 2;
    mcfg.subproblems_per_rank = 1000;
    let wl = micropp_workload(&mcfg);
    let platform = Platform::mn4(8);
    group.bench_function("micropp_8n_2iter_global", |b| {
        let cfg = BalanceConfig::offloading(4, DromPolicy::Global);
        b.iter(|| {
            ClusterSim::run_opts(&platform, &cfg, wl.clone(), false)
                .unwrap()
                .events
        })
    });
    group.bench_function("micropp_8n_2iter_baseline", |b| {
        let cfg = BalanceConfig::baseline();
        b.iter(|| {
            ClusterSim::run_opts(&platform, &cfg, wl.clone(), false)
                .unwrap()
                .events
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
