//! Criterion bench: DES event throughput (events/second drives how fast
//! 64-node experiments regenerate).

use criterion::{criterion_group, criterion_main, Criterion};
use tlb_des::{Ctx, SimTime, Simulator, World};

struct Ping {
    left: u64,
}
impl World for Ping {
    type Event = ();
    fn handle(&mut self, ctx: &mut Ctx<()>, _: ()) {
        if self.left > 0 {
            self.left -= 1;
            ctx.schedule_in(SimTime::from_nanos(10), ());
        }
    }
}

fn bench_events(c: &mut Criterion) {
    c.bench_function("des_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            sim.schedule_at(SimTime::ZERO, ());
            let mut world = Ping { left: 100_000 };
            sim.run(&mut world);
            sim.events_processed()
        })
    });
    c.bench_function("des_queue_churn", |b| {
        b.iter(|| {
            let mut q = tlb_des::EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
    criterion::black_box(());
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
