//! Criterion bench: dependency computation throughput of the task graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlb_tasking::{DataRegion, TaskDef, TaskGraph};

fn bench_submission(c: &mut Criterion) {
    let mut group = c.benchmark_group("taskgraph");
    for &n in &[100usize, 1000] {
        // Independent tasks: disjoint regions.
        group.bench_with_input(BenchmarkId::new("independent", n), &n, |b, &n| {
            b.iter(|| {
                let mut g = TaskGraph::new();
                for i in 0..n {
                    g.submit(TaskDef::new("t").writes(DataRegion::new(i * 64, 64)))
                        .unwrap();
                }
                g.ready_count()
            })
        });
        // A chain through one region (worst-case ordering).
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            let r = DataRegion::new(0, 64);
            b.iter(|| {
                let mut g = TaskGraph::new();
                for _ in 0..n {
                    g.submit(TaskDef::new("t").reads_writes(r)).unwrap();
                }
                g.len()
            })
        });
    }
    // Dense overlapping regions: the case the interval index exists for.
    // A linear active-access scan is O(n²) here; the treap is O(n log n).
    for &n in &[200usize, 1000] {
        group.bench_with_input(BenchmarkId::new("overlapping_windows", n), &n, |b, &n| {
            b.iter(|| {
                let mut g = TaskGraph::new();
                for i in 0..n {
                    // Sliding 3-chunk read + 1-chunk write window.
                    let read = DataRegion::new(i * 64, 3 * 64);
                    let write = DataRegion::new((i + 1) * 64, 64);
                    g.submit(TaskDef::new("w").reads(read).writes(write))
                        .unwrap();
                }
                g.stats().edges
            })
        });
        // Same workload against a naive linear-scan oracle, as the
        // baseline the index is measured against.
        group.bench_with_input(
            BenchmarkId::new("overlapping_linear_oracle", n),
            &n,
            |b, &n| {
                use tlb_tasking::{Access, AccessMode};
                b.iter(|| {
                    let mut active: Vec<(usize, Access)> = Vec::new();
                    let mut edges = 0usize;
                    for i in 0..n {
                        let accs = [
                            Access {
                                region: DataRegion::new(i * 64, 3 * 64),
                                mode: AccessMode::In,
                            },
                            Access {
                                region: DataRegion::new((i + 1) * 64, 64),
                                mode: AccessMode::Out,
                            },
                        ];
                        let mut seen = Vec::new();
                        for &(t, a) in &active {
                            if accs.iter().any(|b| b.conflicts_with(&a)) && !seen.contains(&t) {
                                seen.push(t);
                            }
                        }
                        edges += seen.len();
                        for a in accs {
                            active.push((i, a));
                        }
                    }
                    edges
                })
            },
        );
    }

    // Full execute cycle on a fan-out/fan-in graph.
    group.bench_function("execute_fan_1000", |b| {
        b.iter(|| {
            let src = DataRegion::new(0, 64 * 1000);
            let mut g = TaskGraph::new();
            g.submit(TaskDef::new("produce").writes(src)).unwrap();
            for c in src.chunks(1000) {
                g.submit(TaskDef::new("consume").reads(c)).unwrap();
            }
            let mut done = 0;
            while let Some(t) = g.pop_ready() {
                g.complete(t).unwrap();
                done += 1;
            }
            done
        })
    });
    group.finish();
}

criterion_group!(benches, bench_submission);
criterion_main!(benches);
