//! Extension experiment (paper §5.2 future work): dynamic work spreading.
//!
//! Usage: `ext_dynamic [--quick]`
//!
//! The paper proposes growing the expander graph at run time instead of
//! fixing the offloading degree up front, and argues the benefit "would
//! likely not be sufficient to compensate for the extra implementation
//! complexity" (§7.3). We implemented it; this binary quantifies the
//! trade-off on MicroPP: dynamic spawning from degree 1 versus static
//! degrees, plus the helper count it actually provisions.

use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_bench::{Effort, Experiment, Point};
use tlb_cluster::{ClusterSim, RunSpec};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};

fn main() {
    let effort = Effort::from_args();
    let node_counts: &[usize] = effort.pick(&[4, 8, 16, 32][..], &[4, 8][..]);
    let iterations = effort.pick(12, 6);
    let skip = effort.pick(4, 2);

    let mut exp = Experiment::new(
        "ext_dynamic",
        "dynamic work spreading vs static degrees (MicroPP, 2 appranks/node)",
        "nodes",
        "s/iteration",
    );
    let mut series: Vec<(String, Vec<Point>)> = vec![
        ("static d2".into(), vec![]),
        ("static d4".into(), vec![]),
        ("dynamic ≤4".into(), vec![]),
        ("helpers/apprank".into(), vec![]),
        ("perfect".into(), vec![]),
    ];
    for &nodes in node_counts {
        let appranks = nodes * 2;
        let mut mcfg = MicroPpConfig::new(appranks);
        mcfg.iterations = iterations;
        let wl = micropp_workload(&mcfg);
        let platform = Platform::mn4(nodes);
        let perfect = wl.rank_work(0).iter().sum::<f64>() / platform.effective_capacity();

        for (idx, cfg) in [
            (
                0usize,
                BalanceConfig::preset(Preset::Offload {
                    degree: 2,
                    drom: DromPolicy::Global,
                }),
            ),
            (
                1,
                BalanceConfig::preset(Preset::Offload {
                    degree: 4.min(nodes),
                    drom: DromPolicy::Global,
                }),
            ),
            (
                2,
                BalanceConfig::preset(Preset::DynamicSpread {
                    max_degree: 4.min(nodes),
                }),
            ),
        ] {
            if cfg.degree > nodes {
                continue;
            }
            let r = ClusterSim::execute(RunSpec::new(&platform, &cfg, wl.clone())).unwrap();
            series[idx].1.push(Point {
                x: nodes as f64,
                y: r.mean_iteration_secs(skip),
            });
            if idx == 2 {
                series[3].1.push(Point {
                    x: nodes as f64,
                    y: 1.0 + r.spawned_helpers as f64 / appranks as f64,
                });
                eprintln!(
                    "nodes={nodes}: dynamic spawned {} helpers ({} appranks)",
                    r.spawned_helpers, appranks
                );
            }
        }
        series[4].1.push(Point {
            x: nodes as f64,
            y: perfect,
        });
    }
    for (label, points) in series {
        exp.push_series(label, points);
    }
    exp.note(
        "dynamic spawning starts at degree 1 and provisions helpers only where the solver \
finds an apprank capacity-constrained; compare its steady-state time and its average \
effective degree against the static columns",
    );
    exp.finish();
}
