//! Fig. 5: coarse-grained balancing — local convergence vs global solver.
//!
//! Usage: `fig05_policies [--quick]`
//!
//! Two appranks on two nodes. The first half of the execution is heavily
//! imbalanced (almost all work on apprank 0); the second half is
//! perfectly balanced. The local policy balances the load but keeps
//! offloading tasks in the balanced phase (both appranks execute on both
//! nodes); the global policy stops offloading once the load is balanced.

use tlb_bench::{run_traced, Effort, Experiment, Point};
use tlb_cluster::{SpecWorkload, TaskSpec};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb_des::SimTime;

fn main() {
    let effort = Effort::from_args();
    // Each phase must span several 2-second global solver periods, as in
    // the paper's trace.
    let phase_iters = effort.pick(12, 7);
    let cores = 32;

    // Phase 1: apprank 0 has ~7x the work. Phase 2: balanced.
    // Iterations of ~0.8 s: a phase lasts 5.6–9.6 s.
    let heavy: Vec<TaskSpec> = (0..cores * 14).map(|_| TaskSpec::compute(0.1)).collect();
    let light: Vec<TaskSpec> = (0..cores * 2).map(|_| TaskSpec::compute(0.1)).collect();
    let even: Vec<TaskSpec> = (0..cores * 8).map(|_| TaskSpec::compute(0.1)).collect();
    let mut iters = vec![vec![heavy, light]; phase_iters];
    iters.extend(vec![vec![even.clone(), even]; phase_iters]);
    let wl = SpecWorkload::new(iters);

    let platform = Platform::homogeneous(2, cores);

    for (name, drom) in [("local", DromPolicy::Local), ("global", DromPolicy::Global)] {
        let cfg = BalanceConfig::preset(Preset::Offload { degree: 2, drom });
        let report = run_traced(&platform, &cfg, wl.clone());
        let end = report.makespan;
        let mut exp = Experiment::new(
            &format!("fig05_{name}"),
            &format!(
                "coarse-grained balancing trace, {name} policy (busy cores per apprank per node)"
            ),
            "time (s)",
            "busy cores",
        );
        // Busy cores of each apprank on each node over time.
        let points = effort.pick(160, 60);
        for node in 0..2 {
            for apprank in 0..2 {
                let series: Vec<Point> = (0..points)
                    .map(|i| {
                        let t =
                            SimTime::from_nanos(end.as_nanos() * i as u64 / (points as u64 - 1));
                        // Trailing 100 ms mean, matching a trace's visual grain.
                        let from = t.saturating_sub(SimTime::from_millis(100));
                        let busy = report.trace.apprank_busy_at(node, apprank, t).max(0.0);
                        let _ = from;
                        Point {
                            x: t.as_secs_f64(),
                            y: busy,
                        }
                    })
                    .collect();
                exp.push_series(format!("node{node}/apprank{apprank}"), series);
            }
        }
        // Quantify unnecessary offloading in the balanced phase: work run
        // by each apprank away from home in the last quarter (the solver
        // has converged by then).
        let half = SimTime::from_nanos(end.as_nanos() * 3 / 4);
        let mut cross = 0.0;
        let mut total = 0.0;
        for node in 0..2 {
            for (proc, &apprank) in report.trace.worker_apprank[node].iter().enumerate() {
                let work = report.trace.busy[node][proc].integral(half, end);
                total += work;
                let home = apprank; // apprank i homes on node i here
                if node != home {
                    cross += work;
                }
            }
        }
        exp.note(format!(
            "balanced phase: {:.1}% of work executed away from home (paper Fig. 5: local ~50%, global ~0%; \
our global floor is the helpers' mandatory one owned core each)",
            100.0 * cross / total.max(1e-9)
        ));
        exp.note(format!("makespan: {:.3}s", end.as_secs_f64()));
        exp.finish();
        println!("--- {name} policy trace (busy cores per worker) ---");
        print!("{}", tlb_bench::render_trace(&report.trace, end, 72));
    }
}
