//! Regression gate: read the JSON results written by the figure binaries
//! and verify that every reproduced claim still holds. Run after
//! regenerating figures:
//!
//! ```console
//! for b in fig05_policies fig06_micropp fig06_nbody fig07_local \
//!          fig08_sweep fig09_lewi_drom fig10_slow_node fig11_convergence; do
//!     cargo run --release -p tlb-bench --bin $b
//! done
//! cargo run --release -p tlb-bench --bin check_experiments
//! ```
//!
//! Exits nonzero listing every violated expectation.

use std::path::PathBuf;
use tlb_json::Value;

struct Checker {
    dir: PathBuf,
    failures: Vec<String>,
    checked: usize,
}

impl Checker {
    fn load(&mut self, id: &str) -> Option<Value> {
        let path = self.dir.join(format!("{id}.json"));
        match std::fs::read_to_string(&path) {
            Ok(s) => tlb_json::parse(&s).ok(),
            Err(_) => {
                self.failures.push(format!(
                    "{id}: missing {} (regenerate figures first)",
                    path.display()
                ));
                None
            }
        }
    }

    fn series<'v>(&mut self, v: &'v Value, label: &str) -> Option<&'v Vec<Value>> {
        let found = v
            .get("series")
            .as_array()?
            .iter()
            .find(|s| s.get("label").as_str() == Some(label))?;
        found.get("points").as_array()
    }

    fn value_at(&mut self, v: &Value, label: &str, x: f64) -> Option<f64> {
        let pts = self.series(v, label)?;
        pts.iter()
            .find(|p| (p.get("x").as_f64().unwrap_or(f64::NAN) - x).abs() < 1e-9)
            .and_then(|p| p.get("y").as_f64())
    }

    fn expect(&mut self, ok: bool, what: impl Into<String>) {
        self.checked += 1;
        if !ok {
            self.failures.push(what.into());
        }
    }
}

fn main() {
    let mut c = Checker {
        dir: tlb_bench::results_dir(),
        failures: Vec::new(),
        checked: 0,
    };

    // Fig. 6(b): headline reduction at 32 nodes.
    if let Some(v) = c.load("fig06b") {
        if let (Some(dlb), Some(d4)) = (
            c.value_at(&v, "dlb", 32.0),
            c.value_at(&v, "degree 4", 32.0),
        ) {
            let red = 100.0 * (1.0 - d4 / dlb);
            c.expect(
                (40.0..55.0).contains(&red),
                format!(
                    "fig06b: 32-node reduction vs DLB = {red:.1}% (paper 46-47%, accept 40-55)"
                ),
            );
        }
        // Baseline monotonically ≥ every offloading configuration.
        for nodes in [8.0, 32.0] {
            if let (Some(base), Some(d4)) = (
                c.value_at(&v, "baseline", nodes),
                c.value_at(&v, "degree 4", nodes),
            ) {
                c.expect(
                    d4 < base,
                    format!("fig06b: degree 4 beats baseline at {nodes} nodes"),
                );
            }
        }
    }

    // Fig. 6(a): baseline == DLB with one apprank per node.
    if let Some(v) = c.load("fig06a") {
        for nodes in [8.0, 32.0] {
            if let (Some(base), Some(dlb)) = (
                c.value_at(&v, "baseline", nodes),
                c.value_at(&v, "dlb", nodes),
            ) {
                c.expect(
                    (base - dlb).abs() < 1e-6 * base,
                    format!("fig06a: baseline == dlb at {nodes} nodes ({base} vs {dlb})"),
                );
            }
        }
    }

    // Fig. 6(c): DLB then degree-3 improvements on the slow-node n-body.
    if let Some(v) = c.load("fig06c") {
        if let (Some(base), Some(dlb), Some(d3)) = (
            c.value_at(&v, "baseline", 16.0),
            c.value_at(&v, "dlb", 16.0),
            c.value_at(&v, "degree 3", 16.0),
        ) {
            let dlb_gain = 100.0 * (1.0 - dlb / base);
            let d3_gain = 100.0 * (dlb - d3) / base;
            c.expect(
                (8.0..30.0).contains(&dlb_gain),
                format!("fig06c: DLB gain {dlb_gain:.1}% (paper 16%)"),
            );
            c.expect(
                (10.0..40.0).contains(&d3_gain),
                format!("fig06c: degree-3 further gain {d3_gain:.1}% (paper 20%)"),
            );
        }
    }

    // Fig. 8 on 8 nodes: degree 1 tracks the imbalance; degree 4 near
    // perfect for imbalance ≤ 2.
    if let Some(v) = c.load("fig08_8n") {
        if let (Some(d1_1), Some(d1_3)) = (
            c.value_at(&v, "degree 1", 1.0),
            c.value_at(&v, "degree 1", 3.0),
        ) {
            let ratio = d1_3 / d1_1;
            c.expect(
                (2.8..3.2).contains(&ratio),
                format!("fig08: degree-1 time at imb 3 = {ratio:.2}x imb 1 (expect ~3)"),
            );
        }
        for imb in [1.0, 1.5, 2.0] {
            if let (Some(d4), Some(perfect)) = (
                c.value_at(&v, "degree 4", imb),
                c.value_at(&v, "perfect", imb),
            ) {
                let gap = 100.0 * (d4 / perfect - 1.0);
                c.expect(
                    gap <= 10.0,
                    format!("fig08: degree 4 gap {gap:.1}% at imbalance {imb} (paper <=10%)"),
                );
            }
        }
    }

    // Fig. 11: LeWI-only plateaus above DROM configurations.
    if let Some(v) = c.load("fig11_4n") {
        let steady = |c: &mut Checker, label: &str| -> Option<f64> {
            let pts = c.series(&v, label)?;
            let n = pts.len();
            let tail: Vec<f64> = pts[2 * n / 3..]
                .iter()
                .filter_map(|p| p.get("y").as_f64())
                .collect();
            Some(tail.iter().sum::<f64>() / tail.len().max(1) as f64)
        };
        if let (Some(lewi), Some(glob)) =
            (steady(&mut c, "lewi only"), steady(&mut c, "global+lewi"))
        {
            c.expect(
                lewi > 1.15 && glob < 1.1,
                format!("fig11: lewi-only steady {lewi:.2} (>1.15), global {glob:.2} (<1.1)"),
            );
        }
    }

    // Fig. 9 summary: relative times ordered base > lewi, base > drom >= both.
    if let Some(v) = c.load("fig09_summary") {
        if let Some(pts) = c.series(&v, "relative time") {
            let ys: Vec<f64> = pts.iter().filter_map(|p| p.get("y").as_f64()).collect();
            if ys.len() == 4 {
                c.expect(
                    ys[1] < 0.95 && ys[2] < 0.85 && ys[3] <= ys[2] + 0.02,
                    format!("fig09: relative times {ys:?} (expect ~1.0 / <0.95 / <0.85 / best)"),
                );
            }
        }
    }

    println!(
        "checked {} expectations, {} failed",
        c.checked,
        c.failures.len()
    );
    if c.failures.is_empty() {
        println!("all reproduced claims hold");
    } else {
        for f in &c.failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
