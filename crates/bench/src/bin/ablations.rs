//! Ablations of the design choices DESIGN.md calls out.
//!
//! Usage: `ablations [--quick]`
//!
//! * scheduler queue depth 1 / 2 / 4 tasks per owned core (paper: 2);
//! * counting LeWI-borrowed cores in the scheduler (paper: don't);
//! * steal gate: Owned / Usable / Unbounded;
//! * solver demand signal: busy-core integral vs created work;
//! * expander seed sensitivity (is a random graph reliably good?).

use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_bench::{run_mean_iteration, Effort, Experiment, Point};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset, StealGate, WorkSignal};

fn main() {
    let effort = Effort::from_args();
    let nodes = effort.pick(16, 8);
    let mut mcfg = MicroPpConfig::new(nodes * 2);
    mcfg.iterations = effort.pick(10, 5);
    let wl = micropp_workload(&mcfg);
    let platform = Platform::mn4(nodes);
    let skip = effort.pick(3, 1);
    let base_cfg = BalanceConfig::preset(Preset::Offload {
        degree: 4,
        drom: DromPolicy::Global,
    });
    let reference = run_mean_iteration(&platform, &base_cfg, wl.clone(), skip);

    let mut exp = Experiment::new(
        "ablations",
        &format!("design ablations on MicroPP, {nodes} nodes, degree 4, global policy"),
        "variant",
        "s/iteration",
    );
    let mut idx = 0.0;
    let mut push = |exp: &mut Experiment, label: String, value: f64| {
        println!(
            "{label}: {value:.4} ({:+.1}% vs reference)",
            100.0 * (value / reference - 1.0)
        );
        exp.push_series(label, vec![Point { x: idx, y: value }]);
        idx += 1.0;
    };

    push(&mut exp, "reference (depth 2)".into(), reference);

    for depth in [1usize, 4] {
        let mut cfg = base_cfg.clone();
        cfg.queue_depth_per_core = depth;
        let t = run_mean_iteration(&platform, &cfg, wl.clone(), skip);
        push(&mut exp, format!("queue depth {depth}"), t);
    }
    {
        let mut cfg = base_cfg.clone();
        cfg.count_borrowed_cores = true;
        let t = run_mean_iteration(&platform, &cfg, wl.clone(), skip);
        push(&mut exp, "count borrowed cores".into(), t);
    }
    for gate in [StealGate::Owned, StealGate::Usable] {
        let mut cfg = base_cfg.clone();
        cfg.steal_gate = gate;
        let t = run_mean_iteration(&platform, &cfg, wl.clone(), skip);
        push(&mut exp, format!("steal gate {gate:?}"), t);
    }
    {
        let mut cfg = base_cfg.clone();
        cfg.work_signal = WorkSignal::BusyPending;
        let t = run_mean_iteration(&platform, &cfg, wl.clone(), skip);
        push(&mut exp, "busy-core work signal".into(), t);
    }
    // Seed sensitivity of the random expander.
    let mut best = f64::INFINITY;
    let mut worst: f64 = 0.0;
    for seed in 1..=effort.pick(8u64, 3u64) {
        let cfg = base_cfg.clone().with_seed(seed);
        let t = run_mean_iteration(&platform, &cfg, wl.clone(), skip);
        best = best.min(t);
        worst = worst.max(t);
    }
    push(&mut exp, "expander best seed".into(), best);
    push(&mut exp, "expander worst seed".into(), worst);
    exp.note(format!(
        "expander seed spread: {:.1}% (small spread supports the static-graph design, §7.3)",
        100.0 * (worst / best - 1.0)
    ));
    exp.finish();
}
