//! Perf smoke test for the parallel hot paths: times each smprt-backed
//! kernel at 1/2/4/8 threads, checks that every parallel result is
//! *bitwise identical* to the serial one, and writes the measurements to
//! `BENCH_perf_smoke.json` at the repository root.
//!
//! Kernels:
//!
//! * `nbody-force`    — Barnes–Hut force pass over all bodies
//!   ([`Octree::accelerations`] on a [`Pool`]).
//! * `micropp-solve`  — one non-linear micro-scale FE solve (Newton + CG,
//!   all reductions deterministic; [`MicroProblem::solve_on`]).
//! * `expander-gen`   — candidate screening of the offloading graph
//!   ([`generate_with_workers`], scoped threads).
//! * `cluster-sim-step` — one synthetic-benchmark simulation. The
//!   discrete-event simulator is inherently serial (a single ordered
//!   event queue), so this is timed serially and reported as a baseline
//!   number only — no speedup claim.
//!
//! Usage: `perf_smoke [--quick]` (quick shrinks problem sizes for CI).

use std::path::PathBuf;
use std::time::Instant;
use tlb_apps::micropp::MicroProblem;
use tlb_apps::nbody::{Body, Octree};
use tlb_apps::{synthetic_workload, SyntheticConfig};
use tlb_bench::Effort;
use tlb_cluster::{ClusterSim, RunSpec};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb_expander::{generate_with_workers, ExpanderConfig};
use tlb_json::Value;
use tlb_rng::Rng;
use tlb_smprt::Pool;
use tlb_trace::TraceConfig;

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct KernelResult {
    name: &'static str,
    size: String,
    serial_ms: f64,
    ms_at: Vec<(usize, f64)>,
    identical: bool,
}

impl KernelResult {
    fn speedup_at(&self, threads: usize) -> f64 {
        self.ms_at
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|(_, ms)| self.serial_ms / ms)
            .unwrap_or(f64::NAN)
    }

    fn to_json(&self) -> Value {
        Value::object(vec![
            ("name", self.name.into()),
            ("size", self.size.as_str().into()),
            ("serial_ms", self.serial_ms.into()),
            (
                "ms_per_threads",
                Value::Object(
                    self.ms_at
                        .iter()
                        .map(|&(t, ms)| (t.to_string(), ms.into()))
                        .collect(),
                ),
            ),
            ("speedup_4t", self.speedup_at(4).into()),
            ("bitwise_identical", self.identical.into()),
        ])
    }
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn nbody_force(effort: Effort, reps: usize) -> KernelResult {
    let n = effort.pick(16_000, 4_000);
    let mut rng = Rng::seed_from_u64(0xBE7C_0001);
    let bodies: Vec<Body> = (0..n)
        .map(|_| {
            Body::at(
                [
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                ],
                rng.range_f64(0.5, 2.0),
            )
        })
        .collect();
    let tree = Octree::build(&bodies, 0.5);
    let reference = tree.accelerations(&bodies, None);
    let serial_ms = time_ms(reps, || tree.accelerations(&bodies, None));
    let mut ms_at = Vec::new();
    let mut identical = true;
    for t in THREADS {
        let pool = Pool::new(t);
        let got = tree.accelerations(&bodies, Some(&pool));
        identical &= got
            .iter()
            .zip(&reference)
            .all(|(a, r)| (0..3).all(|d| a[d].to_bits() == r[d].to_bits()));
        ms_at.push((
            t,
            time_ms(reps, || tree.accelerations(&bodies, Some(&pool))),
        ));
    }
    KernelResult {
        name: "nbody-force",
        size: format!("{n} bodies, theta 0.5"),
        serial_ms,
        ms_at,
        identical,
    }
}

fn micropp_solve(effort: Effort, reps: usize) -> KernelResult {
    let n = effort.pick(24, 14);
    let solve_serial = || MicroProblem::new(n, true).solve();
    let reference = solve_serial();
    let serial_ms = time_ms(reps, solve_serial);
    let mut ms_at = Vec::new();
    let mut identical = true;
    for t in THREADS {
        let pool = Pool::new(t);
        let stats = MicroProblem::new(n, true).solve_on(&pool);
        identical &= stats.residual.to_bits() == reference.residual.to_bits()
            && stats.cg_iterations == reference.cg_iterations
            && stats.newton_steps == reference.newton_steps;
        ms_at.push((
            t,
            time_ms(reps, || MicroProblem::new(n, true).solve_on(&pool)),
        ));
    }
    KernelResult {
        name: "micropp-solve",
        size: format!("{n}^3 grid, nonlinear"),
        serial_ms,
        ms_at,
        identical,
    }
}

fn expander_gen(effort: Effort, reps: usize) -> KernelResult {
    let (appranks, nodes) = effort.pick((192, 96), (96, 48));
    let candidates = effort.pick(64, 32);
    let cfg = ExpanderConfig::new(appranks, nodes, 4)
        .with_seed(7)
        .with_candidates(candidates);
    let reference = generate_with_workers(&cfg, 1).unwrap();
    let serial_ms = time_ms(reps, || generate_with_workers(&cfg, 1).unwrap());
    let mut ms_at = Vec::new();
    let mut identical = true;
    for t in THREADS {
        let got = generate_with_workers(&cfg, t).unwrap();
        identical &= (0..appranks).all(|a| got.nodes_of(a) == reference.nodes_of(a));
        ms_at.push((t, time_ms(reps, || generate_with_workers(&cfg, t).unwrap())));
    }
    KernelResult {
        name: "expander-gen",
        size: format!("{appranks}x{nodes} d4, {candidates} candidates"),
        serial_ms,
        ms_at,
        identical,
    }
}

fn cluster_sim_step(effort: Effort, reps: usize) -> (f64, String) {
    let nodes = effort.pick(8, 4);
    let platform = Platform::mn4(nodes);
    let cfg = SyntheticConfig::new(nodes * 2, 2.0);
    let balance = BalanceConfig::preset(Preset::Offload {
        degree: 4.min(nodes),
        drom: DromPolicy::Global,
    });
    let ms = time_ms(reps, || {
        let wl = synthetic_workload(&cfg, &platform);
        ClusterSim::execute(RunSpec::new(&platform, &balance, wl)).unwrap()
    });
    (
        ms,
        format!(
            "{nodes} nodes, synthetic imbalance 2.0, degree {}",
            4.min(nodes)
        ),
    )
}

/// Time the same simulation at three instrumentation levels and grab the
/// counter registry from a fully traced run:
///
/// * `disabled_ms`  — no tracing at all (`RunSpec::trace(false)`);
/// * `timelines_ms` — Paraver-style timelines only, event families off;
/// * `events_ms`    — timelines plus the full structured event log.
///
/// The event stream carries virtual time only, so the events-vs-timelines
/// delta is buffering + counter bumps; the target is <3% but the hard
/// gate is deliberately loose (hosts running this smoke are noisy and
/// often single-core) — exact numbers land in the JSON.
fn trace_overhead(effort: Effort, reps: usize) -> (f64, f64, f64, Value, String) {
    let nodes = effort.pick(8, 4);
    let platform = Platform::mn4(nodes);
    let cfg = SyntheticConfig::new(nodes * 2, 2.0);
    let balance = BalanceConfig::preset(Preset::Offload {
        degree: 4.min(nodes),
        drom: DromPolicy::Global,
    });
    let run = |trace: bool, families: Option<TraceConfig>| {
        let wl = synthetic_workload(&cfg, &platform);
        let mut spec = RunSpec::new(&platform, &balance, wl).trace(trace);
        if let Some(f) = families {
            spec = spec.trace_families(f);
        }
        ClusterSim::execute(spec).unwrap()
    };
    let disabled_ms = time_ms(reps, || run(false, None));
    let timelines_ms = time_ms(reps, || run(true, Some(TraceConfig::off())));
    let events_ms = time_ms(reps, || run(true, None));
    let counters = run(true, None).trace.counters.to_json();
    (
        disabled_ms,
        timelines_ms,
        events_ms,
        counters,
        format!(
            "{nodes} nodes, synthetic imbalance 2.0, degree {}",
            4.min(nodes)
        ),
    )
}

/// Run the named parallel regions once on a profiling-enabled pool and
/// dump real wall-clock per `parallel_for` region plus the park/steal
/// counters.
fn pool_regions(effort: Effort) -> Value {
    let pool = Pool::new(4);
    pool.set_profiling(true);
    let n = effort.pick(8_000, 2_000);
    let mut rng = Rng::seed_from_u64(0xBE7C_0002);
    let bodies: Vec<Body> = (0..n)
        .map(|_| {
            Body::at(
                [
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                ],
                rng.range_f64(0.5, 2.0),
            )
        })
        .collect();
    let tree = Octree::build(&bodies, 0.5);
    std::hint::black_box(tree.accelerations(&bodies, Some(&pool)));
    std::hint::black_box(MicroProblem::new(effort.pick(16, 10), true).solve_on(&pool));
    let prof = pool.profile();
    Value::object(vec![
        (
            "regions",
            Value::Array(
                prof.regions
                    .iter()
                    .map(|r| {
                        Value::object(vec![
                            ("name", r.name.as_str().into()),
                            ("calls", r.calls.into()),
                            ("indices", r.indices.into()),
                            ("wall_ms", (r.wall.as_secs_f64() * 1e3).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("malleability_parks", prof.malleability_parks.into()),
        ("idle_parks", prof.idle_parks.into()),
        ("steals", prof.steals.into()),
    ])
}

fn repo_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() {
    let effort = Effort::from_args();
    let reps = effort.pick(5, 3);
    let host = std::thread::available_parallelism().map_or(1, |v| v.get());

    println!("perf_smoke ({effort:?}, best of {reps}, host parallelism {host})");
    if host < 4 {
        println!(
            "note: only {host} core(s) visible — threads timeshare, so wall-clock \
             speedups are not meaningful on this host; the bitwise-identity checks are."
        );
    }
    let kernels = [
        nbody_force(effort, reps),
        micropp_solve(effort, reps),
        expander_gen(effort, reps),
    ];
    for k in &kernels {
        print!(
            "{:>14} [{}]: serial {:8.2} ms |",
            k.name, k.size, k.serial_ms
        );
        for &(t, ms) in &k.ms_at {
            print!(" {t}t {ms:8.2}");
        }
        println!(
            " | x{:.2} @4t | identical: {}",
            k.speedup_at(4),
            k.identical
        );
    }
    let (sim_ms, sim_size) = cluster_sim_step(effort, reps);
    println!("cluster-sim-step [{sim_size}]: {sim_ms:.2} ms (serial DES, baseline only)");

    let (disabled_ms, timelines_ms, events_ms, counters, trace_size) = trace_overhead(effort, reps);
    let overhead_pct = 100.0 * (events_ms - timelines_ms) / timelines_ms;
    println!(
        "trace-overhead [{trace_size}]: disabled {disabled_ms:.2} ms, timelines \
         {timelines_ms:.2} ms, +events {events_ms:.2} ms ({overhead_pct:+.1}%, target <3%)"
    );
    let regions = pool_regions(effort);
    for r in regions.get("regions").as_array().into_iter().flatten() {
        println!(
            "   pool region {:<16} {} calls, {} indices, {:.2} ms wall",
            r.get("name").as_str().unwrap_or("?"),
            r.get("calls").as_u64().unwrap_or(0),
            r.get("indices").as_u64().unwrap_or(0),
            r.get("wall_ms").as_f64().unwrap_or(0.0),
        );
    }

    let doc = Value::object(vec![
        ("bench", "perf_smoke".into()),
        ("quick", (effort == Effort::Quick).into()),
        ("host_parallelism", host.into()),
        (
            "threads",
            Value::Array(THREADS.iter().map(|&t| t.into()).collect()),
        ),
        (
            "kernels",
            Value::Array(kernels.iter().map(|k| k.to_json()).collect()),
        ),
        (
            "cluster_sim_step",
            Value::object(vec![
                ("size", sim_size.as_str().into()),
                ("ms", sim_ms.into()),
                (
                    "note",
                    "discrete-event simulator is inherently serial; no speedup claim".into(),
                ),
            ]),
        ),
        (
            "trace_overhead",
            Value::object(vec![
                ("size", trace_size.as_str().into()),
                ("disabled_ms", disabled_ms.into()),
                ("timelines_only_ms", timelines_ms.into()),
                ("with_events_ms", events_ms.into()),
                ("event_overhead_pct", overhead_pct.into()),
                ("target_pct", 3.0.into()),
            ]),
        ),
        ("counters", counters),
        ("pool_profile", regions),
    ]);
    let path = repo_root().join("BENCH_perf_smoke.json");
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_perf_smoke.json");
    println!("saved: {}", path.display());

    let mut failed = false;
    for k in &kernels {
        if !k.identical {
            eprintln!("FAIL: {} parallel output differs from serial", k.name);
            failed = true;
        }
    }
    // Loose hard gate on tracing overhead (noisy hosts): the precise
    // number is in the JSON; the 3% target is advisory, 50% is a bug.
    if events_ms > timelines_ms * 1.5 {
        eprintln!("FAIL: event-tracing overhead {overhead_pct:.1}% exceeds the 50% hard gate");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
