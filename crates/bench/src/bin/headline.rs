//! The paper's headline claims (§1 abstract / §8 conclusions), verified
//! numerically:
//!
//! 1. ~46% reduction in time-to-solution for MicroPP on 32 nodes vs DLB.
//! 2. n-body on 16 nodes with one slow node: DLB −16% vs baseline, and a
//!    further −20% from offloading (degree 3).
//! 3. Synthetic on 8 nodes: within 10% of perfect balance for imbalance
//!    up to 2.0 (degree 4).
//!
//! Usage: `headline [--quick]`

use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_apps::nbody::{NBodyConfig, NBodyWorkload};
use tlb_apps::synthetic::{synthetic_workload, SyntheticConfig};
use tlb_bench::{run_mean_iteration, Effort, Experiment, Point};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};

fn main() {
    let effort = Effort::from_args();
    let mut exp = Experiment::new(
        "headline",
        "headline claims: measured vs paper",
        "claim",
        "value",
    );
    let mut rows: Vec<(String, f64, f64)> = Vec::new(); // (label, measured, paper)

    // Claim 1: MicroPP, 32 nodes, 2 appranks/node.
    {
        let nodes = effort.pick(32, 8);
        let mut mcfg = MicroPpConfig::new(nodes * 2);
        mcfg.iterations = effort.pick(10, 5);
        let wl = micropp_workload(&mcfg);
        let p = Platform::mn4(nodes);
        let skip = effort.pick(3, 1);
        let dlb = run_mean_iteration(
            &p,
            &BalanceConfig::preset(Preset::NodeDlb),
            wl.clone(),
            skip,
        );
        let d4 = run_mean_iteration(
            &p,
            &BalanceConfig::preset(Preset::Offload {
                degree: 4,
                drom: DromPolicy::Global,
            }),
            wl.clone(),
            skip,
        );
        let perfect = wl.rank_work(0).iter().sum::<f64>() / p.effective_capacity();
        rows.push((
            format!("micropp {nodes}n reduction vs DLB (%)"),
            100.0 * (1.0 - d4 / dlb),
            46.0,
        ));
        rows.push((
            format!("micropp {nodes}n above perfect (%)"),
            100.0 * (d4 / perfect - 1.0),
            7.0,
        ));
    }

    // Claim 2: n-body, 16 nodes, one slow node.
    {
        let nodes = effort.pick(16, 4);
        let ranks = nodes * 2;
        let mk = || {
            let mut cfg = NBodyConfig::new(effort.pick(40_000, 10_000) * ranks, ranks);
            cfg.force_cost = 2e-6;
            cfg.iterations = effort.pick(8, 4);
            NBodyWorkload::new(cfg)
        };
        let p = Platform::nord3(nodes, &[0]);
        let skip = effort.pick(2, 1);
        let base = run_mean_iteration(&p, &BalanceConfig::preset(Preset::Baseline), mk(), skip);
        let dlb = run_mean_iteration(&p, &BalanceConfig::preset(Preset::NodeDlb), mk(), skip);
        let d3 = run_mean_iteration(
            &p,
            &BalanceConfig::preset(Preset::Offload {
                degree: 3,
                drom: DromPolicy::Global,
            }),
            mk(),
            skip,
        );
        rows.push((
            format!("nbody {nodes}n DLB vs baseline (%)"),
            100.0 * (1.0 - dlb / base),
            16.0,
        ));
        rows.push((
            format!("nbody {nodes}n further reduction, degree 3 (%)"),
            100.0 * (dlb - d3) / base,
            20.0,
        ));
    }

    // Claim 3: synthetic, 8 nodes, imbalance ≤ 2.0, degree 4.
    {
        let p = Platform::mn4(8);
        let mut worst = 0.0f64;
        for &imb in effort.pick(&[1.0, 1.5, 2.0][..], &[2.0][..]) {
            let mut cfg = SyntheticConfig::new(8, imb);
            cfg.iterations = effort.pick(5, 3);
            let wl = synthetic_workload(&cfg, &p);
            let perfect = wl.rank_work(0).iter().sum::<f64>() / p.effective_capacity();
            let t = run_mean_iteration(
                &p,
                &BalanceConfig::preset(Preset::Offload {
                    degree: 4,
                    drom: DromPolicy::Global,
                }),
                wl,
                effort.pick(2, 1),
            );
            worst = worst.max(100.0 * (t / perfect - 1.0));
        }
        rows.push((
            "synthetic 8n worst gap to perfect, imb<=2 (%)".into(),
            worst,
            10.0,
        ));
    }

    let measured: Vec<Point> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| Point {
            x: i as f64,
            y: r.1,
        })
        .collect();
    let paper: Vec<Point> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| Point {
            x: i as f64,
            y: r.2,
        })
        .collect();
    for (i, (label, m, p)) in rows.iter().enumerate() {
        println!("[{i}] {label}: measured {m:.1} / paper {p:.1}");
        exp.note(format!("[{i}] {label}: measured {m:.1}, paper {p:.1}"));
    }
    exp.push_series("measured", measured);
    exp.push_series("paper", paper);
    exp.finish();
}
