//! Smoke test for the scenario sweep engine (`tlb-sweep`): expands a
//! policy-matrix scenario, runs it serially and on an 8-thread pool,
//! and writes throughput plus cache statistics to
//! `BENCH_sweep_smoke.json` at the repository root.
//!
//! Usage: `sweep_smoke [--quick]`
//!
//! Checks:
//!
//! 1. the sweep report and the per-point cache keys are *bitwise
//!    identical* at `jobs = 1` and `jobs = 8` (sharding never leaks
//!    into results);
//! 2. a resumed sweep over a warm cache executes zero simulations and
//!    reproduces the fresh report byte for byte;
//! 3. invalidating one cache entry re-executes exactly that one point.

use std::path::PathBuf;
use std::time::Instant;
use tlb_bench::Effort;
use tlb_json::Value;
use tlb_sweep::{run_sweep, Axes, PolicyAxis, Scenario, SweepMachine, SweepOptions, SweepOutcome};

fn repo_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn scenario(effort: Effort) -> Scenario {
    let sc = Scenario {
        name: "sweep-smoke".into(),
        machine: SweepMachine::Ideal,
        nodes: effort.pick(4, 2),
        iterations: effort.pick(6, 3),
        imbalance: 2.0,
        axes: Axes {
            appranks_per_node: effort.pick(vec![1, 2], vec![1]),
            degree: effort.pick(vec![1, 2, 4], vec![1, 2]),
            policy: vec![
                PolicyAxis::Baseline,
                PolicyAxis::Lewi,
                PolicyAxis::LewiDromLocal,
                PolicyAxis::LewiDromGlobal,
            ],
            seed: effort.pick(vec![1, 2], vec![1, 2]),
        },
        ..Scenario::default()
    };
    sc.validate().expect("sweep_smoke scenario must be valid");
    sc
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlb_sweep_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn timed_sweep(sc: &Scenario, opts: &SweepOptions) -> (SweepOutcome, f64) {
    let start = Instant::now();
    let out = run_sweep(sc, opts).expect("sweep_smoke sweep must succeed");
    (out, start.elapsed().as_secs_f64())
}

fn main() {
    let effort = Effort::from_args();
    println!("sweep_smoke ({effort:?})");

    let sc = scenario(effort);
    let dir1 = temp_dir("jobs1");
    let dir8 = temp_dir("jobs8");

    // --- fresh runs: serial vs 8-way sharded ----------------------------
    let (serial, serial_secs) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 1,
            resume: false,
            cache_dir: Some(dir1.clone()),
        },
    );
    let (parallel, parallel_secs) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 8,
            resume: false,
            cache_dir: Some(dir8.clone()),
        },
    );
    let total = serial.stats.points_total;
    assert!(total >= 8, "smoke grid too small to mean anything");
    assert_eq!(serial.stats.executed, total);
    assert_eq!(parallel.stats.executed, total);

    // --- gate 1: sharding is invisible in the output --------------------
    let bitwise = serial.report.to_string_pretty() == parallel.report.to_string_pretty()
        && serial.keys == parallel.keys;
    assert!(
        bitwise,
        "jobs=1 and jobs=8 reports must be bitwise identical"
    );
    println!(
        "  {total} points: jobs=1 {serial_secs:.2}s, jobs=8 {parallel_secs:.2}s, \
         reports bitwise identical"
    );

    // --- gate 2: resume over a warm cache executes nothing --------------
    let (resumed, resumed_secs) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 8,
            resume: true,
            cache_dir: Some(dir8.clone()),
        },
    );
    assert_eq!(resumed.stats.executed, 0, "warm resume must skip every sim");
    assert_eq!(resumed.stats.cache_hits, total);
    assert_eq!(
        resumed.report.to_string_pretty(),
        serial.report.to_string_pretty(),
        "cached report must match the fresh report byte for byte"
    );
    let hit_rate = resumed.stats.cache_hits as f64 / total as f64;
    println!(
        "  resume: {:.0}% cache hits in {resumed_secs:.2}s",
        hit_rate * 100.0
    );

    // --- gate 3: one invalidated entry re-executes exactly once ---------
    std::fs::remove_file(dir8.join(format!("{:016x}.json", resumed.keys[total / 2])))
        .expect("cache entry to invalidate exists");
    let (partial, _) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 8,
            resume: true,
            cache_dir: Some(dir8.clone()),
        },
    );
    assert_eq!(partial.stats.executed, 1, "one stale point re-executes");
    assert_eq!(partial.stats.cache_hits, total - 1);
    println!(
        "  invalidation: 1 point re-executed, {} served from cache",
        total - 1
    );

    let doc = Value::object(vec![
        ("bench", "sweep_smoke".into()),
        ("effort", format!("{effort:?}").into()),
        ("points_total", total.into()),
        ("jobs1_secs", serial_secs.into()),
        ("jobs8_secs", parallel_secs.into()),
        (
            "jobs1_points_per_sec",
            (total as f64 / serial_secs.max(1e-9)).into(),
        ),
        (
            "jobs8_points_per_sec",
            (total as f64 / parallel_secs.max(1e-9)).into(),
        ),
        ("bitwise_identical_1_vs_8", bitwise.into()),
        ("resume_cache_hit_rate", hit_rate.into()),
        ("resume_executed", resumed.stats.executed.into()),
        ("resume_secs", resumed_secs.into()),
    ]);
    let path = repo_root().join("BENCH_sweep_smoke.json");
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_sweep_smoke.json");
    println!("saved: {}", path.display());

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir8);
    println!("sweep_smoke OK");
}
