//! Smoke test for the scenario sweep engine (`tlb-sweep`): expands a
//! policy-matrix scenario, runs it serially and on an 8-thread pool,
//! and writes throughput plus cache statistics to
//! `BENCH_sweep_smoke.json` at the repository root.
//!
//! Usage: `sweep_smoke [--quick]`
//!
//! Checks:
//!
//! 1. the sweep report and the per-point cache keys are *bitwise
//!    identical* at `jobs = 1` and `jobs = 8` (sharding never leaks
//!    into results);
//! 2. a resumed sweep over a warm cache executes zero simulations and
//!    reproduces the fresh report byte for byte;
//! 3. invalidating one cache entry re-executes exactly that one point;
//! 4. each registry-new policy (`reactive-offload`, `diffusion`) runs a
//!    two-point sweep end-to-end with the same 1-vs-8 bitwise identity,
//!    and changing one policy *parameter* invalidates every cached
//!    point (keys must see parameters, not just policy names).

use std::path::PathBuf;
use std::time::Instant;
use tlb_bench::Effort;
use tlb_core::PolicySpec;
use tlb_json::Value;
use tlb_sweep::{run_sweep, Axes, Scenario, SweepApp, SweepMachine, SweepOptions, SweepOutcome};

fn repo_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn pol(text: &str) -> PolicySpec {
    PolicySpec::parse(text).expect("sweep_smoke policies are registered")
}

fn scenario(effort: Effort) -> Scenario {
    let sc = Scenario {
        name: "sweep-smoke".into(),
        machine: SweepMachine::Ideal,
        nodes: effort.pick(4, 2),
        iterations: effort.pick(6, 3),
        imbalance: 2.0,
        axes: Axes {
            appranks_per_node: effort.pick(vec![1, 2], vec![1]),
            degree: effort.pick(vec![1, 2, 4], vec![1, 2]),
            policy: vec![
                pol("baseline"),
                pol("lewi"),
                pol("lewi+drom-local"),
                pol("lewi+drom-global"),
            ],
            seed: effort.pick(vec![1, 2], vec![1, 2]),
        },
        ..Scenario::default()
    };
    sc.validate().expect("sweep_smoke scenario must be valid");
    sc
}

/// A two-point sweep of one policy over the AMR (time-varying
/// imbalance) app: the end-to-end exercise for the registry-new
/// policies.
fn family_scenario(effort: Effort, policy: &str) -> Scenario {
    let sc = Scenario {
        name: format!("sweep-smoke-{policy}"),
        app: SweepApp::Amr,
        machine: SweepMachine::Ideal,
        nodes: 2,
        iterations: effort.pick(6, 4),
        imbalance: 2.0,
        axes: Axes {
            appranks_per_node: vec![1],
            degree: vec![2],
            policy: vec![pol(policy)],
            seed: vec![1, 2],
        },
        ..Scenario::default()
    };
    sc.validate().expect("family scenario must be valid");
    sc
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlb_sweep_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn timed_sweep(sc: &Scenario, opts: &SweepOptions) -> (SweepOutcome, f64) {
    let start = Instant::now();
    let out = run_sweep(sc, opts).expect("sweep_smoke sweep must succeed");
    (out, start.elapsed().as_secs_f64())
}

/// Gate 4 for one new policy: two-point 1-vs-8 bitwise identity, then a
/// parameter tweak over the warm cache must re-execute everything.
fn check_new_policy(effort: Effort, policy: &str, tweaked: &str) {
    let sc = family_scenario(effort, policy);
    let dir = temp_dir(&format!(
        "family_{}",
        policy.replace(['(', ')', '=', ','], "_")
    ));
    let (one, _) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 1,
            resume: false,
            cache_dir: Some(dir.clone()),
        },
    );
    let (eight, _) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 8,
            resume: false,
            cache_dir: Some(dir.clone()),
        },
    );
    assert_eq!(one.stats.executed, 2, "{policy}: two points expected");
    assert!(
        one.report.to_string_pretty() == eight.report.to_string_pretty() && one.keys == eight.keys,
        "{policy}: jobs=1 and jobs=8 reports must be bitwise identical"
    );
    // Warm resume of the identical scenario: zero sims.
    let (warm, _) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 8,
            resume: true,
            cache_dir: Some(dir.clone()),
        },
    );
    assert_eq!(warm.stats.executed, 0, "{policy}: warm resume re-ran sims");
    // Same policy, one parameter changed: every key must differ, so a
    // resumed run over the same cache re-executes every point.
    let mut changed = sc.clone();
    changed.axes.policy = vec![pol(tweaked)];
    let (tweaked_out, _) = timed_sweep(
        &changed,
        &SweepOptions {
            jobs: 8,
            resume: true,
            cache_dir: Some(dir.clone()),
        },
    );
    assert!(
        tweaked_out.keys.iter().all(|k| !warm.keys.contains(k)),
        "{policy}: parameter change must change every cache key"
    );
    assert_eq!(
        tweaked_out.stats.executed, 2,
        "{policy}: parameter change must invalidate the cache"
    );
    println!("  new policy '{policy}': 2 points bitwise at 1-vs-8 jobs, param change invalidates");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let effort = Effort::from_args();
    println!("sweep_smoke ({effort:?})");

    let sc = scenario(effort);
    let dir1 = temp_dir("jobs1");
    let dir8 = temp_dir("jobs8");

    // --- fresh runs: serial vs 8-way sharded ----------------------------
    let (serial, serial_secs) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 1,
            resume: false,
            cache_dir: Some(dir1.clone()),
        },
    );
    let (parallel, parallel_secs) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 8,
            resume: false,
            cache_dir: Some(dir8.clone()),
        },
    );
    let total = serial.stats.points_total;
    assert!(total >= 8, "smoke grid too small to mean anything");
    assert_eq!(serial.stats.executed, total);
    assert_eq!(parallel.stats.executed, total);

    // --- gate 1: sharding is invisible in the output --------------------
    let bitwise = serial.report.to_string_pretty() == parallel.report.to_string_pretty()
        && serial.keys == parallel.keys;
    assert!(
        bitwise,
        "jobs=1 and jobs=8 reports must be bitwise identical"
    );
    println!(
        "  {total} points: jobs=1 {serial_secs:.2}s, jobs=8 {parallel_secs:.2}s, \
         reports bitwise identical"
    );

    // --- gate 2: resume over a warm cache executes nothing --------------
    let (resumed, resumed_secs) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 8,
            resume: true,
            cache_dir: Some(dir8.clone()),
        },
    );
    assert_eq!(resumed.stats.executed, 0, "warm resume must skip every sim");
    assert_eq!(resumed.stats.cache_hits, total);
    assert_eq!(
        resumed.report.to_string_pretty(),
        serial.report.to_string_pretty(),
        "cached report must match the fresh report byte for byte"
    );
    let hit_rate = resumed.stats.cache_hits as f64 / total as f64;
    println!(
        "  resume: {:.0}% cache hits in {resumed_secs:.2}s",
        hit_rate * 100.0
    );

    // --- gate 3: one invalidated entry re-executes exactly once ---------
    std::fs::remove_file(dir8.join(format!("{:016x}.json", resumed.keys[total / 2])))
        .expect("cache entry to invalidate exists");
    let (partial, _) = timed_sweep(
        &sc,
        &SweepOptions {
            jobs: 8,
            resume: true,
            cache_dir: Some(dir8.clone()),
        },
    );
    assert_eq!(partial.stats.executed, 1, "one stale point re-executes");
    assert_eq!(partial.stats.cache_hits, total - 1);
    println!(
        "  invalidation: 1 point re-executed, {} served from cache",
        total - 1
    );

    // --- gate 4: the registry-new policies, end to end ------------------
    check_new_policy(effort, "reactive-offload", "reactive-offload(hi=0.4)");
    check_new_policy(effort, "diffusion", "diffusion(alpha=0.25)");

    let doc = Value::object(vec![
        ("bench", "sweep_smoke".into()),
        ("effort", format!("{effort:?}").into()),
        ("points_total", total.into()),
        ("jobs1_secs", serial_secs.into()),
        ("jobs8_secs", parallel_secs.into()),
        (
            "jobs1_points_per_sec",
            (total as f64 / serial_secs.max(1e-9)).into(),
        ),
        (
            "jobs8_points_per_sec",
            (total as f64 / parallel_secs.max(1e-9)).into(),
        ),
        ("bitwise_identical_1_vs_8", bitwise.into()),
        ("resume_cache_hit_rate", hit_rate.into()),
        ("resume_executed", resumed.stats.executed.into()),
        ("resume_secs", resumed_secs.into()),
        (
            "new_policies_checked",
            Value::Array(vec!["reactive-offload".into(), "diffusion".into()]),
        ),
    ]);
    let path = repo_root().join("BENCH_sweep_smoke.json");
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_sweep_smoke.json");
    println!("saved: {}", path.display());

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir8);
    println!("sweep_smoke OK");
}
