//! Fig. 10: synthetic benchmark with one slow node (3× slower), sweeping
//! the application imbalance in both directions.
//!
//! Usage: `fig10_slow_node [--quick]`
//!
//! The x-axis is signed: positive imbalance puts the *most* work on the
//! slow node's rank, negative the *least*. The paper's finding: with an
//! offloading degree a little above the imbalance, execution time is
//! nearly flat across the whole range, close to the optimal line.

use tlb_apps::synthetic::{synthetic_workload, SyntheticConfig};
use tlb_bench::{run_mean_iteration, Effort, Experiment, Point};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};

fn main() {
    let effort = Effort::from_args();
    let iterations = effort.pick(5, 3);
    let skip = effort.pick(2, 1);

    for &nodes in effort.pick(&[2usize, 8][..], &[2][..]) {
        let max_imb = (nodes as f64).min(4.0);
        let step = 0.5;
        let mut imbs = vec![];
        let mut v = 1.0;
        while v <= max_imb + 1e-9 {
            imbs.push(v);
            v += step;
        }
        let degrees: &[usize] = if nodes == 2 {
            &[1, 2]
        } else {
            &[1, 2, 3, 4, 8]
        };

        let mut exp = Experiment::new(
            &format!("fig10_{nodes}n"),
            &format!("synthetic, {nodes} nodes, node 0 is 3x slower; signed imbalance sweep"),
            "imbalance",
            "s/iteration",
        );
        let platform = Platform::mn4(nodes).with_slowdown(0, 3.0);
        let mut series: Vec<(String, Vec<Point>)> = degrees
            .iter()
            .map(|d| (format!("degree {d}"), vec![]))
            .collect();
        series.push(("optimal".into(), vec![]));

        for &imb in &imbs {
            // Two sides: +imb = slow node's rank has the max load;
            // -imb = slow node's rank has the least load. imb == 1.0 is
            // the same point from both sides; emit it once at x = +1.
            let sides: &[f64] = if imb == 1.0 { &[1.0] } else { &[imb, -imb] };
            for &signed in sides {
                let mut cfg = SyntheticConfig::new(nodes, imb);
                cfg.iterations = iterations;
                if signed >= 0.0 {
                    cfg.max_rank = 0; // rank on the slow node
                } else {
                    cfg.max_rank = 1;
                    cfg.min_rank = Some(0);
                }
                let wl = synthetic_workload(&cfg, &platform);
                let optimal = wl.rank_work(0).iter().sum::<f64>() / platform.effective_capacity();
                for (i, &deg) in degrees.iter().enumerate() {
                    if deg > nodes {
                        continue;
                    }
                    let bc = if deg == 1 {
                        BalanceConfig::preset(Preset::NodeDlb)
                    } else {
                        BalanceConfig::preset(Preset::Offload {
                            degree: deg,
                            drom: DromPolicy::Global,
                        })
                    };
                    let t = run_mean_iteration(&platform, &bc, wl.clone(), skip);
                    series[i].1.push(Point { x: signed, y: t });
                    eprintln!("{nodes}n imb={signed} degree={deg}: {t:.4}");
                }
                series.last_mut().unwrap().1.push(Point {
                    x: signed,
                    y: optimal,
                });
            }
        }
        for (label, points) in series {
            let mut points = points;
            points.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
            exp.push_series(label, points);
        }
        exp.note("positive x: slow node has the most work; negative: the least");
        exp.finish();
    }
}
