//! Fig. 8: synthetic benchmark — execution time per iteration as a
//! function of the application imbalance (Eq. 2), one apprank per node.
//!
//! Usage: `fig08_sweep [--quick]`
//!
//! Sub-plots (a)/(b)/(c) are 4, 8 and 64 nodes. The paper's findings:
//! degree 1 tracks the imbalance linearly; a degree ≥ the imbalance is
//! sufficient on few nodes; degree 4 is consistently good up to 64 nodes
//! (within 10% of perfect for imbalance ≤ 2.0 on 8 nodes, within 20% on
//! 64 nodes).

use tlb_apps::synthetic::{synthetic_workload, SyntheticConfig};
use tlb_bench::{run_mean_iteration, Effort, Experiment, Point};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};

fn main() {
    let effort = Effort::from_args();
    let node_counts: &[usize] = effort.pick(&[4, 8, 64][..], &[4, 8][..]);
    let imbalances: Vec<f64> =
        effort.pick(vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0], vec![1.0, 2.0, 3.0]);
    let degrees: &[usize] = &[1, 2, 3, 4, 8];
    let iterations = effort.pick(5, 3);
    let skip = effort.pick(2, 1);

    for &nodes in node_counts {
        let mut exp = Experiment::new(
            &format!("fig08_{nodes}n"),
            &format!("synthetic sweep, {nodes} nodes, 1 apprank/node, LeWI+DROM global"),
            "imbalance",
            "s/iteration",
        );
        let mut series: Vec<(String, Vec<Point>)> = degrees
            .iter()
            .map(|d| (format!("degree {d}"), vec![]))
            .collect();
        series.push(("perfect".into(), vec![]));

        let platform = Platform::mn4(nodes);
        for &imb in &imbalances {
            let mut cfg = SyntheticConfig::new(nodes, imb.min(nodes as f64));
            cfg.iterations = iterations;
            let wl = synthetic_workload(&cfg, &platform);
            let perfect = wl.rank_work(0).iter().sum::<f64>() / platform.effective_capacity();
            for (i, &deg) in degrees.iter().enumerate() {
                if deg > nodes {
                    continue;
                }
                let bc = if deg == 1 {
                    BalanceConfig::preset(Preset::NodeDlb)
                } else {
                    BalanceConfig::preset(Preset::Offload {
                        degree: deg,
                        drom: DromPolicy::Global,
                    })
                };
                let t = run_mean_iteration(&platform, &bc, wl.clone(), skip);
                series[i].1.push(Point { x: imb, y: t });
                eprintln!("{nodes}n imb={imb} degree={deg}: {t:.4}");
            }
            series
                .last_mut()
                .unwrap()
                .1
                .push(Point { x: imb, y: perfect });
        }
        for (label, points) in series {
            exp.push_series(label, points);
        }
        // Quantify the paper's claims at this node count.
        let deg4 = exp.series.iter().find(|s| s.label == "degree 4").unwrap();
        let perfect = exp.series.iter().find(|s| s.label == "perfect").unwrap();
        let worst_gap = deg4
            .points
            .iter()
            .filter(|p| p.x <= 2.0)
            .filter_map(|p| {
                perfect
                    .points
                    .iter()
                    .find(|q| q.x == p.x)
                    .map(|q| 100.0 * (p.y / q.y - 1.0))
            })
            .fold(0.0f64, f64::max);
        exp.note(format!(
            "degree 4 within {worst_gap:.1}% of perfect for imbalance <= 2.0 (paper: 10% on 8 nodes, 20% on 64)"
        ));
        exp.finish();
    }
}
