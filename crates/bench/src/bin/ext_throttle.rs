//! Extension experiment: reaction to a mid-run DVFS/thermal throttle —
//! the system-level imbalance sources the paper's introduction motivates
//! (turbo variation, thermal and power management) beyond its static
//! slow-node scenario.
//!
//! Usage: `ext_throttle [--quick]`
//!
//! A perfectly balanced synthetic workload runs on 8 nodes; one third of
//! the way in, one node throttles to half speed. Without offloading the
//! throttled node drags every iteration; with degree-4 offloading the
//! global policy re-divides ownership within one solver period.

use tlb_apps::synthetic::{synthetic_workload, SyntheticConfig};
use tlb_bench::{Effort, Experiment, Point};
use tlb_cluster::{ClusterSim, RunSpec};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb_des::SimTime;

fn main() {
    let effort = Effort::from_args();
    let nodes = 8;
    let iterations = effort.pick(12, 6);
    let mut scfg = SyntheticConfig::new(nodes, 1.0); // balanced application
    scfg.iterations = iterations;

    let calm = Platform::mn4(nodes);
    let wl = synthetic_workload(&scfg, &calm);
    let per_iter = wl.rank_work(0).iter().sum::<f64>();
    // Throttle node 0 to half speed after a third of the nominal runtime.
    let nominal_iter = per_iter / calm.effective_capacity();
    let throttle_at = SimTime::from_secs_f64(nominal_iter * iterations as f64 / 3.0);
    let platform = Platform::mn4(nodes).with_speed_event(throttle_at, 0, 0.5);

    let mut exp = Experiment::new(
        "ext_throttle",
        "mid-run thermal throttle (node 0 to half speed), balanced synthetic workload",
        "iteration",
        "s/iteration",
    );
    for (name, cfg) in [
        ("baseline", BalanceConfig::preset(Preset::Baseline)),
        ("dlb", BalanceConfig::preset(Preset::NodeDlb)),
        (
            "degree 4 global",
            BalanceConfig::preset(Preset::Offload {
                degree: 4,
                drom: DromPolicy::Global,
            }),
        ),
    ] {
        let r = ClusterSim::execute(RunSpec::new(&platform, &cfg, wl.clone())).unwrap();
        let points: Vec<Point> = r
            .iteration_times
            .iter()
            .enumerate()
            .map(|(i, t)| Point {
                x: i as f64,
                y: t.as_secs_f64(),
            })
            .collect();
        eprintln!(
            "{name}: makespan {:.2}s, last iteration {:.3}s",
            r.makespan.as_secs_f64(),
            points.last().map_or(0.0, |p| p.y)
        );
        exp.push_series(name, points);
    }
    // Reference lines.
    exp.push_series(
        "perfect pre-throttle",
        vec![Point {
            x: 0.0,
            y: nominal_iter,
        }],
    );
    let capacity_after = calm.effective_capacity() - 0.5 * calm.cores_per_node as f64;
    exp.push_series(
        "perfect post-throttle",
        vec![Point {
            x: (iterations - 1) as f64,
            y: per_iter / capacity_after,
        }],
    );
    exp.note(
        "after the throttle, degree-1 configurations settle at ~2x the pre-throttle iteration \
time (the slow node bounds every iteration); degree-4 converges to the post-throttle perfect \
line within one 2 s solver period",
    );
    exp.finish();
}
