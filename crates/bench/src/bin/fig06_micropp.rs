//! Fig. 6(a)/(b): MicroPP weak scaling with the global allocation policy.
//!
//! Usage: `fig06_micropp [--appranks-per-node 1|2] [--quick]`
//!
//! Reproduces: baseline (no DLB, no offloading), single-node DLB
//! (degree 1), and offloading degrees 2/3/4/8, against the perfect load
//! balance bound, on 2–64 MareNostrum-4 nodes.

use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_bench::{run_mean_iteration, Effort, Experiment, Point};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};

fn main() {
    let effort = Effort::from_args();
    let per_node: usize = std::env::args()
        .skip_while(|a| a != "--appranks-per-node")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    assert!(per_node == 1 || per_node == 2, "1 or 2 appranks per node");

    let node_counts: &[usize] = effort.pick(&[2, 4, 8, 16, 32, 64][..], &[2, 4, 8][..]);
    let iterations = effort.pick(10, 5);
    let skip = effort.pick(3, 1);

    let sub = if per_node == 1 { 'a' } else { 'b' };
    let mut exp = Experiment::new(
        &format!("fig06{sub}"),
        &format!("MicroPP weak scaling, {per_node} apprank(s)/node, global policy (MareNostrum 4)"),
        "nodes",
        "s/iteration",
    );

    let mut series: Vec<(String, Vec<Point>)> = vec![
        ("baseline".into(), vec![]),
        ("dlb".into(), vec![]),
        ("degree 2".into(), vec![]),
        ("degree 3".into(), vec![]),
        ("degree 4".into(), vec![]),
        ("degree 8".into(), vec![]),
        ("perfect".into(), vec![]),
    ];

    for &nodes in node_counts {
        let appranks = nodes * per_node;
        let mut mcfg = MicroPpConfig::new(appranks);
        mcfg.iterations = iterations;
        let wl = micropp_workload(&mcfg);
        let platform = Platform::mn4(nodes);
        let perfect = wl.rank_work(0).iter().sum::<f64>() / platform.effective_capacity();

        let configs: Vec<(usize, BalanceConfig)> = vec![
            (0, BalanceConfig::preset(Preset::Baseline)),
            (1, BalanceConfig::preset(Preset::NodeDlb)),
            (
                2,
                BalanceConfig::preset(Preset::Offload {
                    degree: 2,
                    drom: DromPolicy::Global,
                }),
            ),
            (
                3,
                BalanceConfig::preset(Preset::Offload {
                    degree: 3,
                    drom: DromPolicy::Global,
                }),
            ),
            (
                4,
                BalanceConfig::preset(Preset::Offload {
                    degree: 4,
                    drom: DromPolicy::Global,
                }),
            ),
            (
                5,
                BalanceConfig::preset(Preset::Offload {
                    degree: 8,
                    drom: DromPolicy::Global,
                }),
            ),
        ];
        for (idx, cfg) in configs {
            if cfg.degree > nodes || cfg.degree * per_node > platform.cores_per_node {
                continue;
            }
            let t = run_mean_iteration(&platform, &cfg, wl.clone(), skip);
            series[idx].1.push(Point {
                x: nodes as f64,
                y: t,
            });
            eprintln!("nodes={nodes} {}: {t:.4}", series[idx].0);
        }
        series[6].1.push(Point {
            x: nodes as f64,
            y: perfect,
        });
    }

    for (label, points) in series {
        exp.push_series(label, points);
    }
    // Headline check at 32 nodes (full runs only).
    if let (Some(dlb), Some(d4)) = (
        exp.series[1].points.iter().find(|p| p.x == 32.0),
        exp.series[4].points.iter().find(|p| p.x == 32.0),
    ) {
        exp.note(format!(
            "32 nodes: degree 4 reduces time-to-solution by {:.1}% vs DLB (paper: 46-47%)",
            100.0 * (1.0 - d4.y / dlb.y)
        ));
    }
    exp.finish();
}
