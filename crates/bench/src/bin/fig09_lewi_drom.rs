//! Fig. 9: the roles of LeWI and DROM, via MicroPP traces on four nodes
//! with offloading degree two.
//!
//! Usage: `fig09_lewi_drom [--quick]`
//!
//! Four configurations: baseline (no LeWI, no DROM), LeWI only, DROM
//! only (global policy), and LeWI+DROM. The paper reports execution times
//! of 100% / 83% / 65% / ≤65% of baseline, with LeWI reacting instantly
//! inside an iteration and DROM converging the core ownership across
//! iterations.

use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_bench::{run_traced, Effort, Experiment, Point};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb_des::SimTime;

fn main() {
    let effort = Effort::from_args();
    let mut mcfg = MicroPpConfig::new(4);
    mcfg.iterations = effort.pick(12, 6);
    // A controlled profile: apprank 0 clearly heavier, as in the trace.
    mcfg.fractions_override = Some(vec![0.85, 0.25, 0.2, 0.15]);
    let wl = micropp_workload(&mcfg);
    let platform = Platform::mn4(4);

    let configs: Vec<(&str, BalanceConfig)> = vec![
        ("baseline", {
            let mut c = BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Off,
            });
            c.lewi = false;
            c
        }),
        (
            "lewi",
            BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Off,
            }),
        ),
        ("drom", {
            let mut c = BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Global,
            });
            c.lewi = false;
            c
        }),
        (
            "lewi+drom",
            BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Global,
            }),
        ),
    ];

    let mut summary = Experiment::new(
        "fig09_summary",
        "MicroPP on 4 nodes, degree 2: execution time relative to baseline",
        "config (0=base,1=lewi,2=drom,3=both)",
        "relative time",
    );
    let mut baseline_time = None;
    let mut rel_points = Vec::new();

    for (i, (name, cfg)) in configs.iter().enumerate() {
        let report = run_traced(&platform, cfg, wl.clone());
        let secs = report.makespan.as_secs_f64();
        let base = *baseline_time.get_or_insert(secs);
        rel_points.push(Point {
            x: i as f64,
            y: secs / base,
        });
        eprintln!(
            "{name}: {secs:.3}s ({:.0}% of baseline)",
            100.0 * secs / base
        );

        // Per-config trace: busy and owned cores per apprank per node.
        let mut exp = Experiment::new(
            &format!("fig09_{name}"),
            &format!("MicroPP trace, {name}: busy/owned cores per (node, apprank)"),
            "time (s)",
            "cores",
        );
        let end = report.makespan;
        let points = effort.pick(120, 50);
        for node in 0..4 {
            for (proc, &apprank) in report.trace.worker_apprank[node].iter().enumerate() {
                let sample = |tl: &tlb_des::Timeline| -> Vec<Point> {
                    (0..points)
                        .map(|k| {
                            let t = SimTime::from_nanos(
                                end.as_nanos() * k as u64 / (points as u64 - 1),
                            );
                            Point {
                                x: t.as_secs_f64(),
                                y: tl.value_at(t).unwrap_or(0.0),
                            }
                        })
                        .collect()
                };
                exp.push_series(
                    format!("busy n{node}/a{apprank}"),
                    sample(&report.trace.busy[node][proc]),
                );
                exp.push_series(
                    format!("owned n{node}/a{apprank}"),
                    sample(&report.trace.owned[node][proc]),
                );
            }
        }
        exp.note(format!("makespan {secs:.3}s"));
        if let Err(e) = exp.save() {
            eprintln!("warning: {e}");
        }
        // Terminal rendition of the paper's Paraver rows.
        println!("--- {name} (busy cores per worker; '█' = node saturated) ---");
        print!("{}", tlb_bench::render_trace(&report.trace, end, 72));
    }
    summary.push_series("relative time", rel_points);
    summary.note("paper: baseline 100%, LeWI 83%, DROM 65%, LeWI+DROM best");
    summary.finish();
}
