//! Smoke test for the sweep-as-a-service daemon (`tlb-serve`): starts a
//! real daemon on a loopback ephemeral port, hammers it with ≥1000
//! concurrent submissions from client threads, and writes latency and
//! dedup/cache statistics to `BENCH_serve_smoke.json` at the
//! repository root.
//!
//! Usage: `serve_smoke [--quick]`
//!
//! Gates:
//!
//! 1. a served aggregate report is *bitwise identical* to the offline
//!    `tlb-run sweep` report for the same scenario;
//! 2. two clients submitting an identical fresh scenario concurrently
//!    cause exactly one execution per distinct point (in-flight dedup);
//! 3. warm-cache replay executes zero simulations, across every replay
//!    submission of the load phase;
//! 4. at queue bound the daemon sheds with a structured retry-after
//!    reply instead of queueing or dropping the connection.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use tlb_bench::Effort;
use tlb_json::Value;
use tlb_serve::{Client, ExecutorConfig, Server, SweepResponse};
use tlb_sweep::{run_sweep, Scenario, SweepOptions};

fn repo_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlb_serve_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small, fast scenario (2 points) parameterized by seed, so distinct
/// seeds are distinct cache keys.
fn scenario_json(seed: u64) -> Value {
    Value::object(vec![
        ("schema_version", 1i64.into()),
        ("name", "serve-smoke".into()),
        ("app", "synthetic".into()),
        ("machine", "ideal".into()),
        ("nodes", 2usize.into()),
        ("iterations", 2usize.into()),
        (
            "axes",
            Value::object(vec![
                (
                    "policy",
                    Value::Array(vec!["baseline".into(), "lewi".into()]),
                ),
                ("seed", Value::Array(vec![seed.into()])),
            ]),
        ),
    ])
}

fn counter(stats: &Value, name: &str) -> u64 {
    stats
        .get("counters")
        .get("counters")
        .get(name)
        .as_u64()
        .unwrap_or(0)
}

fn completed(response: SweepResponse) -> (Value, Vec<Value>, Value) {
    match response {
        SweepResponse::Completed {
            ack,
            points,
            report,
        } => (ack, points, report),
        other => panic!("expected completed sweep, got {other:?}"),
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let effort = Effort::from_args();
    println!("serve_smoke ({effort:?})");

    let cache = temp_dir("daemon");
    let jobs = effort.pick(4, 2);
    let server = Server::start(
        "127.0.0.1:0",
        ExecutorConfig {
            jobs,
            queue_bound: 4096,
            cache_dir: Some(cache.clone()),
        },
    )
    .expect("daemon start");
    let addr = server.local_addr();
    let mut control = Client::connect(addr).expect("control client");

    // --- gate 1: served report == offline sweep report, byte for byte ---
    let base = scenario_json(1);
    let (_, points, served_report) = completed(control.sweep(&base).expect("base sweep"));
    assert_eq!(points.len(), 2);
    let offline_dir = temp_dir("offline");
    let offline = run_sweep(
        &Scenario::from_json(&base).expect("base scenario parses"),
        &SweepOptions {
            jobs: 1,
            resume: false,
            cache_dir: Some(offline_dir.clone()),
        },
    )
    .expect("offline sweep");
    let identical = served_report.to_string_pretty() == offline.report.to_string_pretty();
    assert!(
        identical,
        "served aggregate must be bitwise identical to the offline sweep report"
    );
    println!("  identity: served report == offline tlb-run sweep report");

    // --- gate 2: concurrent identical submissions dedup to one run -----
    let before = counter(&control.stats().expect("stats"), "serve.points_executed");
    let fresh = scenario_json(99);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let fresh = fresh.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("dedup client");
                    let (_, points, _) = completed(client.sweep(&fresh).expect("dedup sweep"));
                    assert_eq!(points.len(), 2);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("dedup client thread");
        }
    });
    let after = counter(&control.stats().expect("stats"), "serve.points_executed");
    assert_eq!(
        after - before,
        2,
        "2 distinct points across 2 identical concurrent requests must execute exactly once each"
    );
    println!("  dedup: concurrent identical scenario ran each point once");

    // --- load phase: ≥1000 concurrent submissions ----------------------
    // A mostly-warm mix: every thread replays the (cached) base and
    // fresh scenarios plus a few thread-unique cold seeds.
    let threads = effort.pick(16, 8);
    let per_thread = effort.pick(125, 125); // threads × per_thread ≥ 1000
    let cold_per_thread = effort.pick(4, 2);
    let executed_before_load = counter(&control.stats().expect("stats"), "serve.points_executed");
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let load_started = Instant::now();
    std::thread::scope(|s| {
        let latencies = &latencies;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("load client");
                    let mut local = Vec::with_capacity(per_thread);
                    for i in 0..per_thread {
                        // Interleave cold seeds early so they overlap
                        // with other threads' warm traffic.
                        let scenario = if i < cold_per_thread {
                            scenario_json(1000 + (t * cold_per_thread + i) as u64)
                        } else if i % 2 == 0 {
                            scenario_json(1)
                        } else {
                            scenario_json(99)
                        };
                        let started = Instant::now();
                        let (_, points, _) =
                            completed(client.sweep(&scenario).expect("load sweep"));
                        local.push(started.elapsed().as_secs_f64() * 1000.0);
                        assert_eq!(points.len(), 2, "every submission streams 2 points");
                    }
                    latencies.lock().unwrap().extend(local);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("load client thread");
        }
    });
    let load_secs = load_started.elapsed().as_secs_f64();
    let submissions = threads * per_thread;
    assert!(
        submissions >= 1000,
        "load phase must issue at least 1000 submissions, got {submissions}"
    );

    // --- gate 3: the warm part of the load executed nothing ------------
    let executed_after_load = counter(&control.stats().expect("stats"), "serve.points_executed");
    let cold_points = (threads * cold_per_thread * 2) as u64;
    let executed_delta = executed_after_load - executed_before_load;
    assert_eq!(
        executed_delta, cold_points,
        "only the cold seeds may execute; every warm replay must be served from cache/dedup"
    );
    let mut sorted = latencies.into_inner().unwrap();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&sorted, 0.50), percentile(&sorted, 0.99));
    let throughput = submissions as f64 / load_secs.max(1e-9);
    println!(
        "  load: {submissions} submissions on {threads} threads in {load_secs:.2}s \
         ({throughput:.0}/s), p50 {p50:.2}ms p99 {p99:.2}ms, {executed_delta} cold points executed"
    );

    let final_stats = control.stats().expect("stats");
    control.shutdown().expect("daemon shutdown");
    server.join();

    // --- gate 4: a zero-bound daemon sheds with retry-after ------------
    let shed_server = Server::start(
        "127.0.0.1:0",
        ExecutorConfig {
            jobs: 1,
            queue_bound: 0,
            cache_dir: None,
        },
    )
    .expect("shed daemon start");
    let mut shed_client = Client::connect(shed_server.local_addr()).expect("shed client");
    let shed_retry_ms = match shed_client
        .sweep(&scenario_json(7))
        .expect("shed submission")
    {
        SweepResponse::Shed(reply) => {
            assert_eq!(reply.get("queue_bound").as_usize(), Some(0));
            assert_eq!(reply.get("draining").as_bool(), Some(false));
            let retry = reply.get("retry_after_ms").as_u64().expect("retry hint");
            assert!(retry > 0, "retry-after must be a positive backoff");
            retry
        }
        other => panic!("expected shed at queue bound, got {other:?}"),
    };
    println!("  shed: queue bound 0 shed with retry_after_ms={shed_retry_ms}");
    shed_client.shutdown().expect("shed daemon shutdown");
    shed_server.join();

    let doc = Value::object(vec![
        ("bench", "serve_smoke".into()),
        ("effort", format!("{effort:?}").into()),
        ("jobs", jobs.into()),
        ("client_threads", threads.into()),
        ("submissions", submissions.into()),
        ("load_secs", load_secs.into()),
        ("submissions_per_sec", throughput.into()),
        ("latency_p50_ms", p50.into()),
        ("latency_p99_ms", p99.into()),
        ("report_bitwise_identical_to_offline", identical.into()),
        ("dedup_executions_for_2_identical_requests", 2usize.into()),
        ("warm_replay_executed", 0usize.into()),
        ("cold_points_executed", executed_delta.into()),
        ("shed_retry_after_ms", shed_retry_ms.into()),
        (
            "daemon_cache_hits",
            counter(&final_stats, "serve.cache_hits").into(),
        ),
        (
            "daemon_dedup_hits",
            counter(&final_stats, "serve.dedup_hits").into(),
        ),
        (
            "daemon_requests",
            counter(&final_stats, "serve.requests").into(),
        ),
    ]);
    let path = repo_root().join("BENCH_serve_smoke.json");
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_serve_smoke.json");
    println!("saved: {}", path.display());

    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&offline_dir);
    println!("serve_smoke OK");
}
