//! Fig. 6(c): n-body (Barnes–Hut + ORB) on Nord3 with one slow node,
//! two appranks per node.
//!
//! Usage: `fig06_nbody [--quick]`
//!
//! One node runs at 1.8 GHz against 3.0 GHz peers (speed 0.6). ORB
//! equalises body counts, so the slow node lags; single-node DLB recovers
//! the within-node imbalance (~16% in the paper) and degree-3 offloading
//! a further ~20%.

use tlb_apps::nbody::{NBodyConfig, NBodyWorkload};
use tlb_bench::{run_mean_iteration, Effort, Experiment, Point};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};

fn main() {
    let effort = Effort::from_args();
    let node_counts: &[usize] = effort.pick(&[2, 4, 8, 16][..], &[2, 4][..]);
    let iterations = effort.pick(8, 4);
    let skip = effort.pick(2, 1);
    let bodies_per_rank = effort.pick(40_000, 10_000);

    let mut exp = Experiment::new(
        "fig06c",
        "n-body on Nord3 with one slow node (1.8 vs 3.0 GHz), 2 appranks/node",
        "nodes",
        "s/iteration",
    );

    let mut series: Vec<(String, Vec<Point>)> = vec![
        ("baseline".into(), vec![]),
        ("dlb".into(), vec![]),
        ("degree 2".into(), vec![]),
        ("degree 3".into(), vec![]),
        ("perfect".into(), vec![]),
    ];

    for &nodes in node_counts {
        let ranks = nodes * 2;
        let mk = |iters: usize| {
            let mut cfg = NBodyConfig::new(bodies_per_rank * ranks, ranks);
            cfg.force_cost = 2e-6;
            cfg.iterations = iters;
            NBodyWorkload::new(cfg)
        };
        let platform = Platform::nord3(nodes, &[0]);
        // Perfect bound from the first iteration's generated work.
        let mut probe = mk(1);
        let total: f64 = (0..ranks)
            .map(|r| {
                tlb_cluster::Workload::tasks(&mut probe, r, 0)
                    .iter()
                    .map(|t| t.duration)
                    .sum::<f64>()
            })
            .sum();
        let perfect = total / platform.effective_capacity();

        let configs: Vec<(usize, BalanceConfig)> = vec![
            (0, BalanceConfig::preset(Preset::Baseline)),
            (1, BalanceConfig::preset(Preset::NodeDlb)),
            (
                2,
                BalanceConfig::preset(Preset::Offload {
                    degree: 2,
                    drom: DromPolicy::Global,
                }),
            ),
            (
                3,
                BalanceConfig::preset(Preset::Offload {
                    degree: 3,
                    drom: DromPolicy::Global,
                }),
            ),
        ];
        for (idx, cfg) in configs {
            if cfg.degree > nodes {
                continue;
            }
            let t = run_mean_iteration(&platform, &cfg, mk(iterations), skip);
            series[idx].1.push(Point {
                x: nodes as f64,
                y: t,
            });
            eprintln!("nodes={nodes} {}: {t:.4}", series[idx].0);
        }
        series[4].1.push(Point {
            x: nodes as f64,
            y: perfect,
        });
    }

    for (label, points) in series {
        exp.push_series(label, points);
    }
    let at16 = |i: usize| {
        exp.series[i]
            .points
            .iter()
            .find(|p| p.x == *node_counts.last().unwrap() as f64)
            .map(|p| p.y)
    };
    if let (Some(base), Some(dlb), Some(d3)) = (at16(0), at16(1), at16(3)) {
        exp.note(format!(
            "{} nodes: DLB improves {:.1}% over baseline (paper: 16%); degree 3 a further {:.1}% (paper: 20%)",
            node_counts.last().unwrap(),
            100.0 * (1.0 - dlb / base),
            100.0 * (dlb - d3) / base,
        ));
    }
    exp.finish();
}
