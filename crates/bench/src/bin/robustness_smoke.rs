//! Smoke test for the fault-injection subsystem and graceful degradation
//! (`tlb_cluster::FaultPlan`): runs a fig. 5-sized MicroPP experiment
//! under a plan that exercises *every* fault kind at once and checks the
//! invariants the robustness layer promises.
//!
//! Usage: `robustness_smoke [--quick]`
//!
//! Checks:
//!
//! 1. every injected fault is accounted for: `injected == recovered +
//!    absorbed` (nothing is silently lost);
//! 2. exact-once execution survives worker death, message loss, and
//!    failover: one `task_started`/`task_completed` pair per task, with
//!    unique keys;
//! 3. each fault kind demonstrably fired: a worker was killed (and its
//!    tasks requeued), messages were dropped, the solver outage forced at
//!    least one degradation-ladder fallback, the straggler burst started
//!    and ended;
//! 4. the faulty run's Chrome export is *bitwise identical* no matter how
//!    many smprt worker threads are alive in the process (the fault RNG
//!    is seeded from the plan, never from wall clock or thread state);
//! 5. an empty [`FaultPlan`] leaves the run bitwise identical to the
//!    pre-fault-machinery entry point: fault injection off means zero
//!    behavioural drift.

use std::collections::HashSet;
use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_bench::Effort;
use tlb_cluster::{trace_to_chrome, ClusterSim, FaultPlan, RunSpec, SimReport};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb_linprog::LpError;
use tlb_smprt::Pool;
use tlb_trace::EventKind;

fn experiment(effort: Effort) -> (Platform, BalanceConfig, MicroPpConfig) {
    let mut mcfg = MicroPpConfig::new(4);
    mcfg.iterations = effort.pick(6, 3);
    // Skewed load so offloading has in-flight messages to lose and
    // helpers worth killing.
    mcfg.fractions_override = Some(vec![0.85, 0.25, 0.2, 0.15]);
    let platform = Platform::mn4(4);
    let mut config = BalanceConfig::preset(Preset::Offload {
        degree: 2,
        drom: DromPolicy::Global,
    });
    // Tick the global solver fast enough that the outage window catches
    // at least one tick even in the quick run.
    config.global_period = tlb_des::SimTime::from_millis(500);
    (platform, config, mcfg)
}

/// One of everything: straggler burst, two kills (one seeded, one
/// explicit), a solver outage long enough to span global ticks, message
/// loss with retries, and a degraded link.
fn plan() -> FaultPlan {
    FaultPlan::new(42)
        .with_straggler(0.4, 1, 3.0, 1.0)
        .with_kill(0.6)
        .with_kill_of(1.2, 0, 1)
        .with_outage(0.5, 1.5, LpError::IterationLimit)
        .with_loss(0.0, 3.0, 0.4, 3, 0.002)
        .with_delay(0.0, 3.0, 0.001)
}

fn run(effort: Effort, plan: &FaultPlan) -> SimReport {
    let (platform, config, mcfg) = experiment(effort);
    ClusterSim::execute(
        RunSpec::new(&platform, &config, micropp_workload(&mcfg))
            .trace(true)
            .faults(plan),
    )
    .expect("robustness_smoke experiment must be valid")
}

/// Exercise the smprt pool with `threads` live workers, then run the
/// faulty experiment while those workers exist. Any wall-clock or
/// thread-count leak into the fault schedule or event stream would show
/// up as a byte difference in the Chrome export.
fn chrome_with_pool(effort: Effort, threads: usize) -> String {
    let pool = Pool::new(threads);
    let n = 50_000;
    let sums: Vec<std::sync::atomic::AtomicU64> = (0..threads)
        .map(|_| std::sync::atomic::AtomicU64::new(0))
        .collect();
    pool.parallel_for_named("robustness_smoke_warmup", n, 1024, |i| {
        let v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        sums[i % sums.len()].fetch_add(v, std::sync::atomic::Ordering::Relaxed);
    });
    let report = run(effort, &plan());
    trace_to_chrome(&report.trace)
}

fn count(report: &SimReport, pred: impl Fn(&EventKind) -> bool) -> usize {
    report.trace.log.count(pred)
}

fn main() {
    let effort = Effort::from_args();
    println!("robustness_smoke ({effort:?})");

    // --- fault accounting and exact-once execution ----------------------
    let report = run(effort, &plan());
    let f = report.faults;
    assert!(f.injected > 0, "the plan must inject something: {f:?}");
    assert_eq!(
        f.injected,
        f.recovered + f.absorbed,
        "every fault recovered or absorbed: {f:?}"
    );
    let total = report.total_tasks;
    let started = count(&report, |k| matches!(k, EventKind::TaskStarted { .. }));
    let completed = count(&report, |k| matches!(k, EventKind::TaskCompleted { .. }));
    assert_eq!(started, total, "one task_started per task despite faults");
    assert_eq!(
        completed, total,
        "one task_completed per task despite faults"
    );
    let unique: HashSet<_> = report
        .trace
        .log
        .merged()
        .into_iter()
        .filter_map(|e| match e.kind {
            EventKind::TaskCompleted { key, .. } => Some(key),
            _ => None,
        })
        .collect();
    assert_eq!(unique.len(), total, "no task completed twice");
    println!(
        "  {total} tasks exact-once; {} injected = {} recovered + {} absorbed",
        f.injected, f.recovered, f.absorbed
    );

    // --- every fault kind demonstrably fired ----------------------------
    assert!(f.workers_killed >= 1, "a worker must die: {f:?}");
    assert!(
        f.tasks_requeued >= 1,
        "killed workers hand their queue back: {f:?}"
    );
    assert!(f.messages_dropped >= 1, "the loss window must bite: {f:?}");
    assert!(
        f.solver_fallbacks >= 1,
        "the outage must force a fallback: {f:?}"
    );
    let straggler_started = count(&report, |k| matches!(k, EventKind::StragglerStart { .. }));
    let straggler_ended = count(&report, |k| matches!(k, EventKind::StragglerEnd { .. }));
    assert_eq!(straggler_started, 1, "one straggler burst");
    assert_eq!(straggler_ended, 1, "the burst ends");
    let killed = count(&report, |k| matches!(k, EventKind::WorkerKilled { .. }));
    assert_eq!(killed, f.workers_killed, "kill events match the stats");
    let fallbacks = count(&report, |k| matches!(k, EventKind::SolverFallback { .. }));
    assert_eq!(fallbacks, f.solver_fallbacks, "fallback events match");
    println!(
        "  {} kills ({} tasks requeued), {} drops ({} failovers), \
         {} solver fallbacks, straggler burst bracketed",
        f.workers_killed, f.tasks_requeued, f.messages_dropped, f.message_failovers, fallbacks
    );

    // --- bitwise determinism across smprt thread counts -----------------
    let reference = chrome_with_pool(effort, 1);
    for threads in [2, 4, 8] {
        let got = chrome_with_pool(effort, threads);
        assert_eq!(
            got, reference,
            "faulty chrome trace differs with {threads} pool threads"
        );
    }
    println!("  faulty chrome export bitwise identical at 1/2/4/8 pool threads");

    // --- empty plan means zero drift ------------------------------------
    let (platform, config, mcfg) = experiment(effort);
    let baseline =
        ClusterSim::execute(RunSpec::new(&platform, &config, micropp_workload(&mcfg)).trace(true))
            .expect("baseline run");
    let none = run(effort, &FaultPlan::none());
    assert_eq!(none.makespan, baseline.makespan, "makespan drifted");
    assert_eq!(
        none.iteration_times, baseline.iteration_times,
        "iteration times drifted"
    );
    assert_eq!(none.events, baseline.events, "event count drifted");
    assert_eq!(
        none.faults,
        Default::default(),
        "empty plan reports no faults"
    );
    assert_eq!(
        trace_to_chrome(&none.trace),
        trace_to_chrome(&baseline.trace),
        "empty fault plan must leave the trace bitwise identical"
    );
    println!("  empty fault plan: bitwise identical to the fault-free entry point");
    println!("robustness_smoke OK");
}
