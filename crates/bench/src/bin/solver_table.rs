//! §5.4.2 solver cost: the paper measures ≈57 ms per global solve at 32
//! nodes (CVXOPT) with roughly quadratic growth in the graph size. This
//! binary measures our simplex and parametric max-flow solvers on the
//! same allocation problems.
//!
//! Usage: `solver_table [--quick]`

use tlb_bench::{Effort, Experiment, Point};
use tlb_core::{
    GlobalPolicy, GlobalSolverKind, Platform, PortfolioConfig, PortfolioEngine, Strategy,
};
use tlb_expander::{BipartiteGraph, ExpanderConfig};

fn main() {
    let effort = Effort::from_args();
    let node_counts: &[usize] = effort.pick(&[4, 8, 16, 32, 64][..], &[4, 8, 16][..]);
    let reps = effort.pick(20, 5);

    let mut exp = Experiment::new(
        "solver_table",
        "global allocation solve time (2 appranks/node, degree 4, 48-core nodes)",
        "nodes",
        "ms/solve",
    );
    let mut simplex_pts = Vec::new();
    let mut flow_pts = Vec::new();
    let mut portfolio_pts = Vec::new();
    let mut portfolio_wins = [0usize; Strategy::COUNT];
    let mut rng = tlb_rng::Rng::seed_from_u64(7);

    for &nodes in node_counts {
        let appranks = nodes * 2;
        let degree = 4.min(nodes);
        let g =
            BipartiteGraph::generate(&ExpanderConfig::new(appranks, nodes, degree).with_seed(1))
                .expect("graph");
        let platform = Platform::mn4(nodes);
        let mut policy = GlobalPolicy::new(&g, &platform);
        let work: Vec<f64> = (0..appranks).map(|_| rng.range_f64(1.0, 50.0)).collect();

        let time_of = |policy: &mut GlobalPolicy, kind: GlobalSolverKind| -> f64 {
            let start = std::time::Instant::now();
            for _ in 0..reps {
                let sol = policy.allocate(&work, kind).expect("solve");
                std::hint::black_box(sol.objective);
            }
            start.elapsed().as_secs_f64() * 1e3 / reps as f64
        };
        let simplex_ms = time_of(&mut policy, GlobalSolverKind::Simplex);
        let flow_ms = time_of(&mut policy, GlobalSolverKind::Flow);
        // The full four-strategy race (inline, deterministic): wall-clock
        // pays for every strategy, so this bounds the portfolio's real
        // per-solve cost against the single solvers above.
        let mut engine =
            PortfolioEngine::new(PortfolioConfig::default()).expect("default portfolio");
        let start = std::time::Instant::now();
        for _ in 0..reps {
            let sol = policy
                .allocate_with(&work, |p| engine.solve(p).map(|o| o.solution))
                .expect("portfolio solve");
            std::hint::black_box(sol.objective);
        }
        let portfolio_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
        for (w, &s) in portfolio_wins.iter_mut().zip(Strategy::ALL.iter()) {
            *w += engine.stats().of(s).wins;
        }
        println!(
            "{nodes:>3} nodes: simplex {simplex_ms:8.3} ms, flow {flow_ms:8.3} ms, \
             portfolio {portfolio_ms:8.3} ms"
        );
        simplex_pts.push(Point {
            x: nodes as f64,
            y: simplex_ms,
        });
        flow_pts.push(Point {
            x: nodes as f64,
            y: flow_ms,
        });
        portfolio_pts.push(Point {
            x: nodes as f64,
            y: portfolio_ms,
        });
    }
    exp.push_series("simplex", simplex_pts.clone());
    exp.push_series("maxflow", flow_pts);
    exp.push_series("portfolio", portfolio_pts);
    exp.note(format!(
        "portfolio wins across sizes: {}",
        Strategy::ALL
            .iter()
            .zip(portfolio_wins.iter())
            .map(|(s, w)| format!("{} {w}", s.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    if let Some(p32) = simplex_pts.iter().find(|p| p.x == 32.0) {
        exp.note(format!(
            "simplex at 32 nodes: {:.1} ms (paper, CVXOPT: ~57 ms)",
            p32.y
        ));
    }
    if simplex_pts.len() >= 2 {
        let first = &simplex_pts[0];
        let last = simplex_pts.last().unwrap();
        let growth = (last.y / first.y).log2() / (last.x / first.x).log2();
        exp.note(format!(
            "empirical growth exponent: {growth:.2} (paper: ~2, quadratic)"
        ));
    }
    exp.finish();
}
