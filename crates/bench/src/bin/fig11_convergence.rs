//! Fig. 11: convergence of the node-level imbalance over time for the
//! synthetic benchmark.
//!
//! Usage: `fig11_convergence [--quick]`
//!
//! (a) two nodes, imbalance 2.0; (b) four nodes, imbalance 4.0. Series:
//! {local, global} × {LeWI on/off} plus LeWI-only. The paper's findings:
//! DROM (either policy) drives the node imbalance to ~1.0; LeWI alone
//! hovers around 1.2; local converges faster than global; LeWI speeds up
//! local's convergence.

use tlb_apps::synthetic::{synthetic_workload, SyntheticConfig};
use tlb_bench::{run_traced, Effort, Experiment, Point};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb_des::SimTime;

fn main() {
    let effort = Effort::from_args();
    let iterations = effort.pick(12, 6);

    for &(nodes, imb) in &[(2usize, 2.0f64), (4, 4.0)] {
        let mut exp = Experiment::new(
            &format!("fig11_{nodes}n"),
            &format!("node imbalance convergence, {nodes} nodes, imbalance {imb}"),
            "time (s)",
            "max/avg node busy",
        );
        let platform = Platform::mn4(nodes);
        let mut cfg = SyntheticConfig::new(nodes, imb);
        cfg.iterations = iterations;
        let wl = synthetic_workload(&cfg, &platform);

        let degree = nodes.min(4);
        let variants: Vec<(String, BalanceConfig)> = vec![
            (
                "local+lewi".into(),
                BalanceConfig::preset(Preset::Offload {
                    degree,
                    drom: DromPolicy::Local,
                }),
            ),
            (
                "local".into(),
                BalanceConfig::preset(Preset::Offload {
                    degree,
                    drom: DromPolicy::Local,
                })
                .with_lewi(false),
            ),
            (
                "global+lewi".into(),
                BalanceConfig::preset(Preset::Offload {
                    degree,
                    drom: DromPolicy::Global,
                }),
            ),
            (
                "global".into(),
                BalanceConfig::preset(Preset::Offload {
                    degree,
                    drom: DromPolicy::Global,
                })
                .with_lewi(false),
            ),
            (
                "lewi only".into(),
                BalanceConfig::preset(Preset::Offload {
                    degree,
                    drom: DromPolicy::Off,
                }),
            ),
        ];
        for (name, bc) in variants {
            let report = run_traced(&platform, &bc, wl.clone());
            let end = report.makespan;
            let series = report.trace.node_imbalance_series(
                end,
                SimTime::from_millis(500),
                effort.pick(100, 40),
            );
            let points: Vec<Point> = series.into_iter().map(|(x, y)| Point { x, y }).collect();
            // Steady-state imbalance: mean over the final third.
            let tail: Vec<f64> = points
                .iter()
                .filter(|p| p.x > 2.0 * end.as_secs_f64() / 3.0)
                .map(|p| p.y)
                .collect();
            let steady = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
            eprintln!("{nodes}n {name}: steady-state node imbalance {steady:.3}");
            exp.note(format!("{name}: steady-state imbalance {steady:.3}"));
            exp.push_series(name, points);
        }
        exp.note("paper: DROM variants converge to ~1.0; LeWI-only fluctuates around 1.2");
        exp.finish();
    }
}
