//! Fig. 7: MicroPP and n-body with the **local** allocation policy.
//!
//! Usage: `fig07_local [--quick]`
//!
//! The local convergence policy balances per node only; the paper finds
//! it ~10% worse than the global policy at 32 nodes and more sensitive
//! to the offloading degree.

use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_apps::nbody::{NBodyConfig, NBodyWorkload};
use tlb_bench::{run_mean_iteration, Effort, Experiment, Point};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};

fn main() {
    let effort = Effort::from_args();

    // (a) MicroPP, 2 appranks/node, local policy.
    let node_counts: &[usize] = effort.pick(&[2, 4, 8, 16, 32, 64][..], &[2, 4, 8][..]);
    let iterations = effort.pick(10, 5);
    let skip = effort.pick(3, 1);

    let mut exp = Experiment::new(
        "fig07",
        "MicroPP weak scaling, 2 appranks/node, LOCAL policy (MareNostrum 4)",
        "nodes",
        "s/iteration",
    );
    let mut series: Vec<(String, Vec<Point>)> = vec![
        ("dlb".into(), vec![]),
        ("degree 2".into(), vec![]),
        ("degree 4".into(), vec![]),
        ("degree 8".into(), vec![]),
        ("global d4".into(), vec![]),
        ("perfect".into(), vec![]),
    ];
    for &nodes in node_counts {
        let appranks = nodes * 2;
        let mut mcfg = MicroPpConfig::new(appranks);
        mcfg.iterations = iterations;
        let wl = micropp_workload(&mcfg);
        let platform = Platform::mn4(nodes);
        let perfect = wl.rank_work(0).iter().sum::<f64>() / platform.effective_capacity();
        let configs: Vec<(usize, BalanceConfig)> = vec![
            (0, BalanceConfig::preset(Preset::NodeDlb)),
            (
                1,
                BalanceConfig::preset(Preset::Offload {
                    degree: 2,
                    drom: DromPolicy::Local,
                }),
            ),
            (
                2,
                BalanceConfig::preset(Preset::Offload {
                    degree: 4,
                    drom: DromPolicy::Local,
                }),
            ),
            (
                3,
                BalanceConfig::preset(Preset::Offload {
                    degree: 8,
                    drom: DromPolicy::Local,
                }),
            ),
            (
                4,
                BalanceConfig::preset(Preset::Offload {
                    degree: 4,
                    drom: DromPolicy::Global,
                }),
            ),
        ];
        for (idx, cfg) in configs {
            if cfg.degree > nodes {
                continue;
            }
            let t = run_mean_iteration(&platform, &cfg, wl.clone(), skip);
            series[idx].1.push(Point {
                x: nodes as f64,
                y: t,
            });
            eprintln!("nodes={nodes} {}: {t:.4}", series[idx].0);
        }
        series[5].1.push(Point {
            x: nodes as f64,
            y: perfect,
        });
    }
    for (label, points) in series {
        exp.push_series(label, points);
    }
    if let (Some(dlb), Some(l4), Some(g4)) = (
        exp.series[0].points.iter().find(|p| p.x == 32.0),
        exp.series[2].points.iter().find(|p| p.x == 32.0),
        exp.series[4].points.iter().find(|p| p.x == 32.0),
    ) {
        exp.note(format!(
            "32 nodes: local d4 reduces {:.1}% vs DLB (paper: 38%); global d4 {:.1}% (paper: 47%)",
            100.0 * (1.0 - l4.y / dlb.y),
            100.0 * (1.0 - g4.y / dlb.y)
        ));
    }
    exp.finish();

    // (c) n-body with one slow node under the local policy.
    let mut exp_n = Experiment::new(
        "fig07c",
        "n-body on Nord3 with one slow node, LOCAL policy",
        "nodes",
        "s/iteration",
    );
    let nb_nodes: &[usize] = effort.pick(&[2, 4, 8, 16][..], &[2, 4][..]);
    let bodies_per_rank = effort.pick(40_000, 10_000);
    let mut nb_series: Vec<(String, Vec<Point>)> = vec![
        ("dlb".into(), vec![]),
        ("local d3".into(), vec![]),
        ("global d3".into(), vec![]),
    ];
    for &nodes in nb_nodes {
        let ranks = nodes * 2;
        let mk = || {
            let mut cfg = NBodyConfig::new(bodies_per_rank * ranks, ranks);
            cfg.force_cost = 2e-6;
            cfg.iterations = effort.pick(8, 4);
            NBodyWorkload::new(cfg)
        };
        let platform = Platform::nord3(nodes, &[0]);
        let configs: Vec<(usize, BalanceConfig)> = vec![
            (0, BalanceConfig::preset(Preset::NodeDlb)),
            (
                1,
                BalanceConfig::preset(Preset::Offload {
                    degree: 3,
                    drom: DromPolicy::Local,
                }),
            ),
            (
                2,
                BalanceConfig::preset(Preset::Offload {
                    degree: 3,
                    drom: DromPolicy::Global,
                }),
            ),
        ];
        for (idx, cfg) in configs {
            if cfg.degree > nodes {
                continue;
            }
            let t = run_mean_iteration(&platform, &cfg, mk(), skip);
            nb_series[idx].1.push(Point {
                x: nodes as f64,
                y: t,
            });
        }
    }
    for (label, points) in nb_series {
        exp_n.push_series(label, points);
    }
    exp_n.finish();
}
