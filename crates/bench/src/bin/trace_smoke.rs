//! Smoke test for the structured event-tracing subsystem (`tlb-trace`):
//! runs a fig. 5-sized MicroPP experiment with tracing on and checks the
//! invariants the observability layer promises.
//!
//! Usage: `trace_smoke [--quick]`
//!
//! Checks:
//!
//! 1. every task gets exactly one `task_started` and one `task_completed`
//!    event, and the started keys are unique;
//! 2. the run records at least one scheduler decision, LeWI borrow, DROM
//!    ownership transaction and global-solver invocation;
//! 3. the Chrome trace-event export round-trips through the in-tree JSON
//!    parser and pairs every task into a complete ("X") slice;
//! 4. the exported event stream is *bitwise identical* no matter how many
//!    smprt worker threads are alive in the process (virtual timestamps
//!    only — no wall-clock leaks into the stream);
//! 5. with tracing disabled the log and counters stay empty and the
//!    exports carry headers/metadata only.

use std::collections::HashSet;
use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_bench::Effort;
use tlb_cluster::{trace_to_chrome, trace_to_csv, ClusterSim, RunSpec, SimReport};
use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};
use tlb_smprt::Pool;
use tlb_trace::EventKind;

fn experiment(effort: Effort) -> (Platform, BalanceConfig, MicroPpConfig) {
    let mut mcfg = MicroPpConfig::new(4);
    mcfg.iterations = effort.pick(6, 3);
    // Skewed load so offloading, LeWI and DROM all have work to do.
    mcfg.fractions_override = Some(vec![0.85, 0.25, 0.2, 0.15]);
    let platform = Platform::mn4(4);
    let mut config = BalanceConfig::preset(Preset::Offload {
        degree: 2,
        drom: DromPolicy::Global,
    });
    // Tick the global solver fast enough that even the quick run records
    // solver invocations and DROM ownership transactions.
    config.global_period = tlb_des::SimTime::from_millis(500);
    (platform, config, mcfg)
}

fn run(effort: Effort, trace: bool) -> SimReport {
    let (platform, config, mcfg) = experiment(effort);
    ClusterSim::execute(RunSpec::new(&platform, &config, micropp_workload(&mcfg)).trace(trace))
        .expect("trace_smoke experiment must be valid")
}

/// Exercise the smprt pool with `threads` live workers, then run the
/// traced experiment while those workers exist. The pool work is real
/// (parallel stencil-ish arithmetic) so any wall-clock or thread-count
/// leak into the event stream would show up as a byte difference.
fn chrome_with_pool(effort: Effort, threads: usize) -> String {
    let pool = Pool::new(threads);
    let n = 50_000;
    let sums: Vec<std::sync::atomic::AtomicU64> = (0..threads)
        .map(|_| std::sync::atomic::AtomicU64::new(0))
        .collect();
    pool.parallel_for_named("trace_smoke_warmup", n, 1024, |i| {
        let v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        sums[i % sums.len()].fetch_add(v, std::sync::atomic::Ordering::Relaxed);
    });
    let report = run(effort, true);
    trace_to_chrome(&report.trace)
}

fn count(report: &SimReport, pred: impl Fn(&EventKind) -> bool) -> usize {
    report.trace.log.count(pred)
}

fn main() {
    let effort = Effort::from_args();
    println!("trace_smoke ({effort:?})");

    // --- invariants on one traced run -----------------------------------
    let report = run(effort, true);
    let total = report.total_tasks;
    let started = count(&report, |k| matches!(k, EventKind::TaskStarted { .. }));
    let completed = count(&report, |k| matches!(k, EventKind::TaskCompleted { .. }));
    assert_eq!(started, total, "one task_started per task");
    assert_eq!(completed, total, "one task_completed per task");
    let unique: HashSet<_> = report
        .trace
        .log
        .merged()
        .into_iter()
        .filter_map(|e| match e.kind {
            EventKind::TaskStarted { key, .. } => Some(key),
            _ => None,
        })
        .collect();
    assert_eq!(unique.len(), total, "started task keys are unique");

    let decisions = count(&report, |k| matches!(k, EventKind::SchedDecision { .. }));
    let borrows = count(&report, |k| matches!(k, EventKind::LewiBorrow { .. }));
    let drom = count(&report, |k| {
        matches!(
            k,
            EventKind::DromOwnership { .. } | EventKind::DromTransfer { .. }
        )
    });
    let solver = count(&report, |k| matches!(k, EventKind::SolverInvoked { .. }));
    assert!(decisions >= total, "a scheduler decision per task at least");
    assert!(borrows >= 1, "LeWI borrowed at least once");
    assert!(drom >= 1, "DROM changed ownership at least once");
    assert!(solver >= 1, "global solver invoked at least once");
    println!(
        "  {total} tasks: started/completed 1:1, {decisions} decisions, \
         {borrows} lewi borrows, {drom} drom transactions, {solver} solver runs"
    );

    // --- Chrome export round-trips the in-tree parser -------------------
    let chrome = trace_to_chrome(&report.trace);
    let doc = tlb_json::parse(&chrome).expect("chrome export parses");
    let events = doc.get("traceEvents").as_array().expect("traceEvents");
    let slices = events
        .iter()
        .filter(|e| e.get("ph").as_str() == Some("X"))
        .count();
    assert_eq!(slices, total, "one complete slice per task");
    println!(
        "  chrome export: {} records, {slices} task slices",
        events.len()
    );

    // --- bitwise determinism across smprt thread counts -----------------
    let reference = chrome_with_pool(effort, 1);
    for threads in [2, 4, 8] {
        let got = chrome_with_pool(effort, threads);
        assert_eq!(
            got, reference,
            "chrome trace differs with {threads} pool threads"
        );
    }
    assert_eq!(reference, chrome, "pool activity perturbed the trace");
    println!("  chrome export bitwise identical at 1/2/4/8 pool threads");

    // --- disabled tracing records nothing -------------------------------
    let off = run(effort, false);
    assert!(off.trace.log.is_empty(), "disabled trace logs no events");
    assert!(
        off.trace.counters.is_empty(),
        "disabled trace counts nothing"
    );
    let off_csv = trace_to_csv(&off.trace);
    assert_eq!(off_csv.lines().count(), 1, "disabled CSV is header-only");
    let off_doc = tlb_json::parse(&trace_to_chrome(&off.trace)).unwrap();
    assert!(
        off_doc
            .get("traceEvents")
            .as_array()
            .unwrap()
            .iter()
            .all(|e| e.get("ph").as_str() == Some("M")),
        "disabled chrome export is metadata-only"
    );
    println!("  disabled tracing: no events, no counters, header-only exports");
    println!("trace_smoke OK");
}
