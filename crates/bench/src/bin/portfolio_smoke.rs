//! Smoke test for the racing solver portfolio (`tlb-portfolio`): runs
//! fig. 5- and fig. 8-style experiments with all four strategies racing
//! on every global tick, and writes per-strategy win/cost statistics to
//! `BENCH_portfolio_smoke.json` at the repository root.
//!
//! Usage: `portfolio_smoke [--quick]`
//!
//! Checks:
//!
//! 1. on every tick the winner's post-solve score is no worse than any
//!    individual strategy's score on the same problem (the portfolio
//!    never loses to the best single enabled solver);
//! 2. every race is accounted for: one `portfolio_solve`/`portfolio_pick`
//!    event pair per solver run, stats sum up;
//! 3. the Chrome export and the per-strategy statistics are *bitwise
//!    identical* whether the race runs inline or on a 2/4/8-thread smprt
//!    pool (virtual time only, no wall-clock in any decision).

use std::path::PathBuf;
use tlb_apps::micropp::{micropp_workload, MicroPpConfig};
use tlb_apps::synthetic::{synthetic_workload, SyntheticConfig};
use tlb_bench::Effort;
use tlb_cluster::{trace_to_chrome, ClusterSim, FaultPlan, RunSpec, SimReport};
use tlb_core::{BalanceConfig, DromPolicy, Platform, PortfolioConfig, Preset, Strategy};
use tlb_json::Value;
use tlb_trace::EventKind;

fn config(pool_threads: usize) -> BalanceConfig {
    let mut config = BalanceConfig::preset(Preset::Offload {
        degree: 2,
        drom: DromPolicy::Global,
    });
    // Tick fast enough that even the quick run races several times.
    config.global_period = tlb_des::SimTime::from_millis(500);
    config.portfolio = Some(PortfolioConfig::default().with_pool_threads(pool_threads));
    config
}

/// Fig. 5-style scenario: skewed MicroPP on four MN4 nodes.
fn run_micropp(effort: Effort, pool_threads: usize) -> SimReport {
    let mut mcfg = MicroPpConfig::new(4);
    mcfg.iterations = effort.pick(6, 3);
    mcfg.fractions_override = Some(vec![0.85, 0.25, 0.2, 0.15]);
    let platform = Platform::mn4(4);
    ClusterSim::execute(
        RunSpec::new(&platform, &config(pool_threads), micropp_workload(&mcfg))
            .trace(true)
            .faults(&FaultPlan::none()),
    )
    .expect("portfolio_smoke micropp experiment must be valid")
}

/// Fig. 8-style scenario: synthetic workload at imbalance 2.5.
fn run_synthetic(effort: Effort, pool_threads: usize) -> SimReport {
    let platform = Platform::mn4(4);
    let mut scfg = SyntheticConfig::new(4, 2.5);
    scfg.iterations = effort.pick(6, 3);
    scfg.seed = 1;
    let wl = synthetic_workload(&scfg, &platform);
    ClusterSim::execute(
        RunSpec::new(&platform, &config(pool_threads), wl)
            .trace(true)
            .faults(&FaultPlan::none()),
    )
    .expect("portfolio_smoke synthetic experiment must be valid")
}

/// Check the per-tick winner gate on one report and return the number of
/// ticks inspected.
fn gate_winner_scores(name: &str, report: &SimReport) -> usize {
    let merged = report.trace.log.merged();
    let solves: Vec<_> = merged
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::PortfolioSolve(rec) => Some(rec.as_ref()),
            _ => None,
        })
        .collect();
    let picks: Vec<_> = merged
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::PortfolioPick {
                strategy, score, ..
            } => Some((*strategy, *score)),
            _ => None,
        })
        .collect();
    assert_eq!(
        solves.len(),
        picks.len(),
        "{name}: one pick per race record"
    );
    assert!(!solves.is_empty(), "{name}: the portfolio never raced");
    for (tick, (rec, &(winner, score))) in solves.iter().zip(&picks).enumerate() {
        for c in &rec.candidates {
            if c.score >= 0.0 {
                assert!(
                    score <= c.score + 1e-12,
                    "{name} tick {tick}: winner {winner} score {score} worse than \
                     candidate {} score {}",
                    c.name,
                    c.score
                );
            }
        }
    }
    solves.len()
}

fn repo_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() {
    let effort = Effort::from_args();
    println!("portfolio_smoke ({effort:?})");

    type Runner = fn(Effort, usize) -> SimReport;
    let scenarios: [(&str, Runner); 2] = [
        ("micropp_fig05", run_micropp),
        ("synthetic_fig08", run_synthetic),
    ];

    let mut scenario_docs = Vec::new();
    for (name, runner) in scenarios {
        let reference = runner(effort, 1);
        let stats = reference
            .portfolio
            .clone()
            .expect("portfolio stats must be reported");
        assert!(stats.solves > 0, "{name}: no races ran");
        assert_eq!(stats.no_winner, 0, "{name}: a race found no winner");
        assert_eq!(
            stats.solves, reference.solver_runs,
            "{name}: one race per solver run"
        );
        let ticks = gate_winner_scores(name, &reference);
        assert_eq!(ticks, stats.solves, "{name}: every race left a record");
        let wins: usize = Strategy::ALL.iter().map(|&s| stats.of(s).wins).sum();
        assert_eq!(wins, stats.solves, "{name}: wins must sum to races");
        println!(
            "  {name}: {} races, winner never worse than any candidate",
            stats.solves
        );

        // Bitwise determinism across engine pool sizes.
        let chrome_ref = trace_to_chrome(&reference.trace);
        for threads in [2usize, 4, 8] {
            let got = runner(effort, threads);
            assert_eq!(
                got.portfolio.as_ref(),
                Some(&stats),
                "{name}: stats differ with {threads} pool threads"
            );
            assert_eq!(
                trace_to_chrome(&got.trace),
                chrome_ref,
                "{name}: chrome trace differs with {threads} pool threads"
            );
        }
        println!("  {name}: chrome + stats bitwise identical at 1/2/4/8 pool threads");

        let per_strategy: Vec<(&str, Value)> = Strategy::ALL
            .iter()
            .map(|&s| {
                let st = stats.of(s);
                (
                    s.name(),
                    Value::object(vec![
                        ("attempts", st.attempts.into()),
                        ("wins", st.wins.into()),
                        ("infeasible", st.infeasible.into()),
                        ("errors", st.errors.into()),
                        ("timeouts", st.timeouts.into()),
                        ("virtual_cost_s", st.virtual_cost.as_secs_f64().into()),
                    ]),
                )
            })
            .collect();
        scenario_docs.push((
            name,
            Value::object(vec![
                ("solves", stats.solves.into()),
                ("no_winner", stats.no_winner.into()),
                ("ticks_gated", ticks.into()),
                ("per_strategy", Value::object(per_strategy)),
            ]),
        ));
    }

    let doc = Value::object(vec![
        ("bench", "portfolio_smoke".into()),
        ("effort", format!("{effort:?}").into()),
        (
            "pool_threads_checked",
            Value::Array(vec![1u32.into(), 2u32.into(), 4u32.into(), 8u32.into()]),
        ),
        ("scenarios", Value::object(scenario_docs)),
    ]);
    let path = repo_root().join("BENCH_portfolio_smoke.json");
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_portfolio_smoke.json");
    println!("saved: {}", path.display());
    println!("portfolio_smoke OK");
}
