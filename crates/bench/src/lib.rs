//! Experiment harness shared by the per-figure binaries.
//!
//! Every binary regenerates one table or figure of the paper:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig05_policies`   | Fig. 5: local vs global DROM policy traces |
//! | `fig06_micropp`    | Fig. 6(a)/(b): MicroPP weak scaling, global policy |
//! | `fig06_nbody`      | Fig. 6(c): n-body with one slow node |
//! | `fig07_local`      | Fig. 7: the same applications, local policy |
//! | `fig08_sweep`      | Fig. 8: synthetic imbalance sweep |
//! | `fig09_lewi_drom`  | Fig. 9: LeWI/DROM trace decomposition |
//! | `fig10_slow_node`  | Fig. 10: synthetic with an emulated slow node |
//! | `fig11_convergence`| Fig. 11: node-imbalance convergence series |
//! | `headline`         | §1/§8 headline claims, checked numerically |
//! | `solver_table`     | §5.4.2 solver-cost scaling (57 ms @ 32 nodes) |
//! | `ablations`        | design-choice ablations from DESIGN.md |
//!
//! Results print as aligned tables and are also written as JSON under
//! `results/` so EXPERIMENTS.md can cite exact numbers.

use std::path::PathBuf;
use tlb_cluster::{ClusterSim, RunSpec, SimReport, Workload};
use tlb_core::{BalanceConfig, Platform};

/// Scale factor for quick runs (`--quick` divides iteration counts and
/// sweep resolution so a figure regenerates in seconds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Full paper-scale regeneration.
    Full,
    /// Reduced iterations/resolution for smoke runs and CI.
    Quick,
}

impl Effort {
    /// Parse from process args: `--quick` selects [`Effort::Quick`].
    pub fn from_args() -> Effort {
        if std::env::args().any(|a| a == "--quick") {
            Effort::Quick
        } else {
            Effort::Full
        }
    }

    /// Pick `full` or `quick` depending on the effort.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Effort::Full => full,
            Effort::Quick => quick,
        }
    }
}

/// One measured point of an experiment series.
#[derive(Clone, Debug)]
pub struct Point {
    /// x-coordinate (nodes, imbalance, time, …).
    pub x: f64,
    /// Measured value (usually seconds).
    pub y: f64,
}

/// One named series of an experiment (a line in the paper's figure).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label ("baseline", "degree 4", "perfect", …).
    pub label: String,
    /// The measured points.
    pub points: Vec<Point>,
}

/// A complete regenerated figure/table.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Experiment id ("fig06a", …).
    pub id: String,
    /// Human description.
    pub title: String,
    /// Axis label for x.
    pub x_label: String,
    /// Axis label for y.
    pub y_label: String,
    /// All series.
    pub series: Vec<Series>,
    /// Free-form notes (observations, paper comparison).
    pub notes: Vec<String>,
}

impl Experiment {
    /// An empty experiment.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Experiment {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a series.
    pub fn push_series(&mut self, label: impl Into<String>, points: Vec<Point>) {
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render an aligned text table: one row per x, one column per series.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>14}", s.label);
        }
        let _ = writeln!(out);
        for &x in &xs {
            let _ = write!(out, "{x:>12.3}");
            for s in &self.series {
                match s.points.iter().find(|p| (p.x - x).abs() < 1e-12) {
                    Some(p) => {
                        let _ = write!(out, " {:>14.4}", p.y);
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// The experiment as a JSON value (what [`Experiment::save`] writes).
    pub fn to_json(&self) -> tlb_json::Value {
        use tlb_json::Value;
        Value::object(vec![
            ("id", self.id.as_str().into()),
            ("title", self.title.as_str().into()),
            ("x_label", self.x_label.as_str().into()),
            ("y_label", self.y_label.as_str().into()),
            (
                "series",
                Value::Array(
                    self.series
                        .iter()
                        .map(|s| {
                            Value::object(vec![
                                ("label", s.label.as_str().into()),
                                (
                                    "points",
                                    Value::Array(
                                        s.points
                                            .iter()
                                            .map(|p| {
                                                Value::object(vec![
                                                    ("x", p.x.into()),
                                                    ("y", p.y.into()),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "notes",
                Value::Array(self.notes.iter().map(|n| n.as_str().into()).collect()),
            ),
        ])
    }

    /// Write the experiment JSON under `results/<id>.json` (workspace
    /// root if run via cargo, else the current directory).
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json().to_string_pretty())?;
        Ok(path)
    }

    /// Print the table and save JSON (the standard binary epilogue).
    pub fn finish(&self) {
        println!("{}", self.render_table());
        match self.save() {
            Ok(path) => println!("saved: {}", path.display()),
            Err(e) => eprintln!("warning: could not save results: {e}"),
        }
    }
}

/// Directory for JSON results.
pub fn results_dir() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../../results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Run a simulation without tracing and return mean steady-state
/// iteration seconds (skipping `skip` warm-up iterations).
pub fn run_mean_iteration<W: Workload>(
    platform: &Platform,
    config: &BalanceConfig,
    workload: W,
    skip: usize,
) -> f64 {
    let report = ClusterSim::execute(RunSpec::new(platform, config, workload))
        .expect("experiment configuration must be valid");
    report.mean_iteration_secs(skip)
}

/// Run with tracing enabled (for the trace figures).
pub fn run_traced<W: Workload>(
    platform: &Platform,
    config: &BalanceConfig,
    workload: W,
) -> SimReport {
    ClusterSim::execute(RunSpec::new(platform, config, workload).trace(true))
        .expect("experiment configuration must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut e = Experiment::new("t1", "demo", "nodes", "seconds");
        e.push_series(
            "a",
            vec![Point { x: 2.0, y: 1.5 }, Point { x: 4.0, y: 1.0 }],
        );
        e.push_series("b", vec![Point { x: 2.0, y: 2.5 }]);
        e.note("hello");
        let t = e.render_table();
        assert!(t.contains("# t1"));
        assert!(t.contains("note: hello"));
        // Missing point renders as '-'.
        assert!(t.lines().any(|l| l.contains('-') && l.contains("4.000")));
    }

    #[test]
    fn effort_pick() {
        assert_eq!(Effort::Full.pick(10, 2), 10);
        assert_eq!(Effort::Quick.pick(10, 2), 2);
    }
}

/// Render a piecewise-constant timeline as an ASCII bar: one character
/// per time bucket, eight intensity levels from ' ' to '█' scaled to
/// `max_value`. The visual counterpart of one Paraver row in the paper's
/// Figs. 5 and 9.
pub fn render_timeline(
    timeline: &tlb_des::Timeline,
    end: tlb_des::SimTime,
    width: usize,
    max_value: f64,
) -> String {
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    assert!(width >= 2, "trace bar needs at least two columns");
    let mut out = String::with_capacity(width * 3);
    for i in 0..width {
        let from = tlb_des::SimTime::from_nanos(end.as_nanos() * i as u64 / width as u64);
        let to = tlb_des::SimTime::from_nanos(end.as_nanos() * (i as u64 + 1) / width as u64);
        let mean = if to > from {
            timeline.mean(from, to)
        } else {
            0.0
        };
        let level = if max_value <= 0.0 {
            0
        } else {
            ((mean / max_value * 8.0).round() as usize).min(8)
        };
        out.push(LEVELS[level]);
    }
    out
}

/// Render every worker's busy-core timeline of a trace as labelled ASCII
/// rows, grouped by node — a terminal rendition of the paper's trace
/// figures.
pub fn render_trace(trace: &tlb_cluster::Trace, end: tlb_des::SimTime, width: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let max = trace
        .busy
        .iter()
        .flatten()
        .flat_map(|tl| tl.samples().iter().map(|s| s.value))
        .fold(1.0f64, f64::max);
    for (node, workers) in trace.busy.iter().enumerate() {
        let _ = writeln!(out, "node {node}:");
        for (proc, tl) in workers.iter().enumerate() {
            let apprank = trace.worker_apprank[node][proc];
            let _ = writeln!(
                out,
                "  a{apprank:<3} |{}|",
                render_timeline(tl, end, width, max)
            );
        }
    }
    out
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use tlb_des::{SimTime, Timeline};

    #[test]
    fn timeline_bar_scales_levels() {
        let mut tl = Timeline::new();
        tl.record(SimTime::ZERO, 0.0);
        tl.record(SimTime::from_secs(1), 4.0);
        let bar = render_timeline(&tl, SimTime::from_secs(2), 10, 4.0);
        assert_eq!(bar.chars().count(), 10);
        assert!(bar.starts_with(' '), "starts idle: {bar:?}");
        assert!(bar.ends_with('█'), "ends saturated: {bar:?}");
    }

    #[test]
    fn zero_max_renders_blank() {
        let mut tl = Timeline::new();
        tl.record(SimTime::ZERO, 1.0);
        let bar = render_timeline(&tl, SimTime::from_secs(1), 5, 0.0);
        assert_eq!(bar, "     ");
    }
}
