//! Library half of the `tlb-run` command: argument parsing and experiment
//! assembly, separated from `main` so it is unit-testable.
//!
//! ```console
//! tlb-run --app micropp --nodes 8 --appranks-per-node 2 \
//!         --degree 4 --policy global --iterations 10 \
//!         [--machine mn4|nord3|ideal] [--slow-node 0] [--lewi off]
//!         [--trace-csv out.csv] [--chrome out.json] [--json]
//! tlb-run trace --app nbody --nodes 4   # traced run, Chrome JSON export
//! tlb-run sweep --scenario examples/policy_matrix.json --jobs 8 --resume
//! tlb-run serve --addr 127.0.0.1:7070 --jobs 4 --cache-dir tlb_sweep_cache
//! ```

use std::fmt;
use tlb_cluster::{ClusterSim, FaultPlan, FaultStats, RunSpec, SimReport, SpecWorkload, Workload};
use tlb_core::{BalanceConfig, Platform, PolicySpec, PortfolioConfig, Strategy};
use tlb_des::SimTime;

/// Which application to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    /// MicroPP-style FE workload.
    Micropp,
    /// Barnes–Hut n-body with ORB.
    Nbody,
    /// Synthetic configurable-imbalance benchmark.
    Synthetic,
    /// Halo-exchange stencil.
    Stencil,
    /// AMR-style time-varying imbalance (the hot ranks move mid-run).
    Amr,
}

/// Machine preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Machine {
    /// 48-core MareNostrum-4 nodes with realistic overheads.
    Mn4,
    /// 16-core Nord3 nodes.
    Nord3,
    /// Idealised nodes (no runtime noise), 16 cores.
    Ideal,
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Args {
    /// Application.
    pub app: App,
    /// Node count.
    pub nodes: usize,
    /// Appranks per node.
    pub appranks_per_node: usize,
    /// Offloading degree (1 = no offloading).
    pub degree: usize,
    /// Balancing policy (registry name, optionally parameterized).
    pub policy: PolicySpec,
    /// LeWI override from `--lewi`; `None` follows the policy.
    pub lewi: Option<bool>,
    /// Iterations.
    pub iterations: usize,
    /// Machine preset.
    pub machine: Machine,
    /// Slow node index (Nord3-style 1.8 GHz), if any.
    pub slow_node: Option<usize>,
    /// Synthetic imbalance target.
    pub imbalance: f64,
    /// Expander seed.
    pub seed: u64,
    /// Write the trace as CSV here.
    pub trace_csv: Option<String>,
    /// Write the trace as Chrome trace-event JSON here.
    pub chrome: Option<String>,
    /// `trace` subcommand: force tracing on and default the Chrome export.
    pub trace_mode: bool,
    /// Emit the report as JSON instead of text.
    pub json: bool,
    /// Fault-injection spec (see [`FaultPlan::parse`]), if any.
    pub faults: Option<String>,
    /// Seed for the fault plan's deterministic draws.
    pub fault_seed: u64,
    /// Solver-portfolio spec (see [`PortfolioConfig::parse`]), if any.
    pub portfolio: Option<String>,
    /// Portfolio virtual-time budget override, in seconds.
    pub portfolio_budget: Option<f64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            app: App::Synthetic,
            nodes: 4,
            appranks_per_node: 1,
            degree: 4,
            policy: PolicySpec::named("lewi+drom-global").expect("default policy is registered"),
            lewi: None,
            iterations: 6,
            machine: Machine::Mn4,
            slow_node: None,
            imbalance: 2.0,
            seed: 1,
            trace_csv: None,
            chrome: None,
            trace_mode: false,
            json: false,
            faults: None,
            fault_seed: 1,
            portfolio: None,
            portfolio_budget: None,
        }
    }
}

/// Argument parsing errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "usage: tlb-run [trace|sweep|serve] [options]
  sweep                                   subcommand: batch-run a scenario
                                          file over its axis grid (see
                                          tlb-run sweep --help)
  serve                                   subcommand: resident sweep daemon
                                          over TCP (see tlb-run serve
                                          --help)
  trace                                   subcommand: record the structured
                                          event trace and write a Chrome
                                          trace-event JSON (default
                                          tlb_trace.chrome.json; open in
                                          Perfetto / chrome://tracing)
  --app micropp|nbody|synthetic|stencil|amr
                                          workload (default synthetic)
  --nodes N                               node count (default 4)
  --appranks-per-node N                   (default 1)
  --degree D                              offloading degree (default 4)
  --policy NAME[(k=v,...)]                balancing policy from the registry:
                                          baseline, lewi, lewi+drom-local,
                                          lewi+drom-global, reactive-offload,
                                          diffusion — optionally with typed
                                          parameters, e.g.
                                          'reactive-offload(hi=0.4)'; the
                                          legacy shorthands off|local|global
                                          map to lewi|lewi+drom-local|
                                          lewi+drom-global (default
                                          lewi+drom-global)
  --lewi on|off                           fine-grained lending override
                                          (default: what the policy says)
  --iterations N                          timesteps (default 6)
  --machine mn4|nord3|ideal               platform preset (default mn4)
  --slow-node I                           run node I at 1.8/3.0 GHz speed
  --imbalance X                           synthetic imbalance (default 2.0)
  --seed S                                expander seed (default 1)
  --trace-csv PATH                        dump the trace as CSV
  --chrome PATH                           dump the trace as Chrome JSON
  --json                                  print the report as JSON
  --faults SPEC                           inject faults; SPEC is ';'-separated
                                          clauses kind@time[,k=v...], kinds:
                                          straggler@T,node=N[,slow=S][,for=D]
                                          kill@T[,apprank=A,slot=K]
                                          outage@T[,for=D][,error=timeout|
                                            infeasible|unbounded]
                                            [,strategy=simplex|flow|greedy|
                                            local]
                                          loss@T[,for=D][,rate=R][,retries=N]
                                            [,backoff=B]
                                          delay@T[,for=D][,extra=X]
  --fault-seed S                          seed for fault draws (default 1)
  --portfolio STRATEGIES                  race allocation solvers on every
                                          global tick; STRATEGIES is 'all' or
                                          a comma list of simplex,flow,
                                          greedy,local, optionally prefixed
                                          'adaptive:' (requires
                                          --policy global)
  --portfolio-budget SECS                 virtual-time budget per race
                                          (default 0.25; needs --portfolio)
  --help                                  this text";

/// Parse an argument list (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, ParseError> {
    let mut args = Args::default();
    let mut it = argv.into_iter().peekable();
    if it.peek().map(String::as_str) == Some("trace") {
        it.next();
        args.trace_mode = true;
    }
    let missing = |flag: &str| ParseError(format!("{flag} needs a value"));
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--app" => {
                args.app = match it.next().ok_or_else(|| missing("--app"))?.as_str() {
                    "micropp" => App::Micropp,
                    "nbody" => App::Nbody,
                    "synthetic" => App::Synthetic,
                    "stencil" => App::Stencil,
                    "amr" => App::Amr,
                    other => return Err(ParseError(format!("unknown app '{other}'"))),
                }
            }
            "--nodes" => args.nodes = parse_num(&mut it, "--nodes")?,
            "--appranks-per-node" => {
                args.appranks_per_node = parse_num(&mut it, "--appranks-per-node")?
            }
            "--degree" => args.degree = parse_num(&mut it, "--degree")?,
            "--policy" => {
                let value = it.next().ok_or_else(|| missing("--policy"))?;
                // Legacy DROM shorthands keep old command lines working;
                // everything else goes straight to the policy registry.
                let text = match value.as_str() {
                    "off" => "lewi",
                    "local" => "lewi+drom-local",
                    "global" => "lewi+drom-global",
                    other => other,
                };
                args.policy =
                    PolicySpec::parse(text).map_err(|e| ParseError(format!("--policy: {e}")))?;
            }
            "--lewi" => {
                args.lewi = match it.next().ok_or_else(|| missing("--lewi"))?.as_str() {
                    "on" => Some(true),
                    "off" => Some(false),
                    other => return Err(ParseError(format!("--lewi on|off, got '{other}'"))),
                }
            }
            "--iterations" => args.iterations = parse_num(&mut it, "--iterations")?,
            "--machine" => {
                args.machine = match it.next().ok_or_else(|| missing("--machine"))?.as_str() {
                    "mn4" => Machine::Mn4,
                    "nord3" => Machine::Nord3,
                    "ideal" => Machine::Ideal,
                    other => return Err(ParseError(format!("unknown machine '{other}'"))),
                }
            }
            "--slow-node" => args.slow_node = Some(parse_num(&mut it, "--slow-node")?),
            "--imbalance" => {
                args.imbalance = it
                    .next()
                    .ok_or_else(|| missing("--imbalance"))?
                    .parse()
                    .map_err(|e| ParseError(format!("--imbalance: {e}")))?
            }
            "--seed" => args.seed = parse_num(&mut it, "--seed")? as u64,
            "--trace-csv" => {
                args.trace_csv = Some(it.next().ok_or_else(|| missing("--trace-csv"))?)
            }
            "--chrome" => args.chrome = Some(it.next().ok_or_else(|| missing("--chrome"))?),
            "--json" => args.json = true,
            "--faults" => args.faults = Some(it.next().ok_or_else(|| missing("--faults"))?),
            "--fault-seed" => args.fault_seed = parse_num(&mut it, "--fault-seed")? as u64,
            "--portfolio" => {
                args.portfolio = Some(it.next().ok_or_else(|| missing("--portfolio"))?)
            }
            "--portfolio-budget" => {
                args.portfolio_budget = Some(
                    it.next()
                        .ok_or_else(|| missing("--portfolio-budget"))?
                        .parse()
                        .map_err(|e| ParseError(format!("--portfolio-budget: {e}")))?,
                )
            }
            "--help" | "-h" => return Err(ParseError(USAGE.to_string())),
            other => return Err(ParseError(format!("unknown flag '{other}'\n{USAGE}"))),
        }
    }
    if args.nodes == 0 || args.appranks_per_node == 0 || args.iterations == 0 {
        return Err(ParseError("counts must be positive".into()));
    }
    if args.degree == 0 || args.degree > args.nodes {
        return Err(ParseError(format!(
            "degree must be in 1..={} for {} nodes",
            args.nodes, args.nodes
        )));
    }
    if let Some(spec) = &args.faults {
        FaultPlan::parse(spec, args.fault_seed)
            .map_err(|e| ParseError(format!("--faults: {e}")))?;
    }
    if let Some(spec) = &args.portfolio {
        PortfolioConfig::parse(spec).map_err(|e| ParseError(format!("--portfolio: {e}")))?;
        if !args.policy.uses_solver() {
            return Err(ParseError(
                "--portfolio requires a global-solver policy (--policy global)".into(),
            ));
        }
    }
    if let Some(budget) = args.portfolio_budget {
        if args.portfolio.is_none() {
            return Err(ParseError("--portfolio-budget needs --portfolio".into()));
        }
        if !budget.is_finite() || budget <= 0.0 {
            return Err(ParseError(format!(
                "--portfolio-budget must be a positive number of seconds, got {budget}"
            )));
        }
    }
    Ok(args)
}

fn parse_num(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))?
        .parse()
        .map_err(|e| ParseError(format!("{flag}: {e}")))
}

/// Build the platform from the parsed arguments.
pub fn build_platform(args: &Args) -> Platform {
    let mut p = match args.machine {
        Machine::Mn4 => Platform::mn4(args.nodes),
        Machine::Nord3 => Platform::nord3(args.nodes, &[]),
        Machine::Ideal => Platform::homogeneous(args.nodes, 16),
    };
    if let Some(n) = args.slow_node {
        p.node_speed[n] = 1.8 / 3.0;
    }
    p
}

/// The LeWI setting a run will actually use: the `--lewi` override if
/// given, the policy's own setting otherwise.
pub fn effective_lewi(args: &Args) -> bool {
    args.lewi.unwrap_or_else(|| args.policy.lewi())
}

/// Build the balancing configuration.
pub fn build_config(args: &Args) -> BalanceConfig {
    let mut cfg = BalanceConfig::default().with_policy(args.policy.clone());
    cfg.degree = args.degree;
    cfg.lewi = effective_lewi(args);
    cfg.seed = args.seed;
    if let Some(spec) = &args.portfolio {
        let mut pc = PortfolioConfig::parse(spec).expect("validated by parse_args");
        if let Some(budget) = args.portfolio_budget {
            pc = pc.with_budget(SimTime::from_secs_f64(budget));
        }
        cfg.portfolio = Some(pc);
    }
    cfg
}

/// The Chrome trace-event output path implied by the arguments, if any:
/// an explicit `--chrome PATH`, or the default name in `trace` mode.
pub fn chrome_path(args: &Args) -> Option<String> {
    args.chrome
        .clone()
        .or_else(|| args.trace_mode.then(|| "tlb_trace.chrome.json".to_string()))
}

/// Build the workload and run; returns the report plus the perfect-balance
/// bound in seconds per iteration.
pub fn run(args: &Args) -> Result<(SimReport, f64), String> {
    let platform = build_platform(args);
    let appranks = args.nodes * args.appranks_per_node;
    let trace = args.trace_mode || args.trace_csv.is_some() || args.chrome.is_some();
    let plan = match &args.faults {
        Some(spec) => {
            FaultPlan::parse(spec, args.fault_seed).map_err(|e| format!("--faults: {e}"))?
        }
        None => FaultPlan::none(),
    };

    let (report, per_iter_work) = match args.app {
        App::Synthetic => {
            let mut cfg = tlb_apps::synthetic::SyntheticConfig::new(appranks, args.imbalance);
            cfg.iterations = args.iterations;
            cfg.seed = args.seed;
            let wl = tlb_apps::synthetic::synthetic_workload(&cfg, &platform);
            let work = wl.rank_work(0).iter().sum::<f64>();
            let r = ClusterSim::execute(
                RunSpec::new(&platform, &build_config(args), wl)
                    .trace(trace)
                    .faults(&plan),
            )
            .map_err(|e| e.to_string())?;
            (r, work)
        }
        App::Micropp => {
            let mut cfg = tlb_apps::micropp::MicroPpConfig::new(appranks);
            cfg.iterations = args.iterations;
            cfg.seed = args.seed;
            let wl = tlb_apps::micropp::micropp_workload(&cfg);
            let work = wl.rank_work(0).iter().sum::<f64>();
            let r = ClusterSim::execute(
                RunSpec::new(&platform, &build_config(args), wl)
                    .trace(trace)
                    .faults(&plan),
            )
            .map_err(|e| e.to_string())?;
            (r, work)
        }
        App::Nbody => {
            let mut cfg = tlb_apps::nbody::NBodyConfig::new(20_000 * appranks, appranks);
            cfg.iterations = args.iterations;
            cfg.force_cost = 2e-6;
            cfg.seed = args.seed;
            let mut probe = tlb_apps::nbody::NBodyWorkload::new(cfg.clone());
            let work: f64 = (0..appranks)
                .map(|r| probe.tasks(r, 0).iter().map(|t| t.duration).sum::<f64>())
                .sum();
            let wl = tlb_apps::nbody::NBodyWorkload::new(cfg);
            let r = ClusterSim::execute(
                RunSpec::new(&platform, &build_config(args), wl)
                    .trace(trace)
                    .faults(&plan),
            )
            .map_err(|e| e.to_string())?;
            (r, work)
        }
        App::Amr => {
            let mut cfg = tlb_apps::amr::AmrConfig::new(appranks, args.imbalance);
            cfg.iterations = args.iterations;
            cfg.seed = args.seed;
            let wl = tlb_apps::amr::amr_workload(&cfg, &platform);
            let work = wl.iteration_work();
            let r = ClusterSim::execute(
                RunSpec::new(&platform, &build_config(args), wl)
                    .trace(trace)
                    .faults(&plan),
            )
            .map_err(|e| e.to_string())?;
            (r, work)
        }
        App::Stencil => {
            let mut cfg =
                tlb_apps::stencil::StencilConfig::new(appranks, 128, 128).with_gradient(0.5, 2.0);
            cfg.iterations = args.iterations;
            cfg.secs_per_row = 1e-3;
            let wl = tlb_apps::stencil::StencilWorkload::new(cfg);
            let work: f64 = (0..appranks)
                .map(|r| {
                    // gradient workload: recompute from the public helper
                    tlb_apps::stencil::StencilWorkload::new(
                        tlb_apps::stencil::StencilConfig::new(appranks, 128, 128)
                            .with_gradient(0.5, 2.0),
                    )
                    .rank_work(r)
                })
                .sum::<f64>()
                * 10.0; // secs_per_row scaled from default 1e-4 to 1e-3
            let r = ClusterSim::execute(
                RunSpec::new(&platform, &build_config(args), wl)
                    .trace(trace)
                    .faults(&plan),
            )
            .map_err(|e| e.to_string())?;
            (r, work)
        }
    };

    let perfect = per_iter_work / platform.effective_capacity();
    if let Some(path) = &args.trace_csv {
        tlb_cluster::save_trace_csv(&report.trace, std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = chrome_path(args) {
        tlb_cluster::save_trace_chrome(&report.trace, std::path::Path::new(&path))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok((report, perfect))
}

/// Format the report as human-readable text.
pub fn format_text(args: &Args, report: &SimReport, perfect: f64) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{:?} on {} nodes ({} appranks), degree {}, policy {}, LeWI {}",
        args.app,
        args.nodes,
        args.nodes * args.appranks_per_node,
        args.degree,
        args.policy.canonical(),
        if effective_lewi(args) { "on" } else { "off" },
    );
    let _ = writeln!(out, "makespan:            {}", report.makespan);
    let _ = writeln!(
        out,
        "mean iteration:      {:.4} s (perfect balance bound {:.4} s)",
        report.mean_iteration_secs(args.iterations / 3),
        perfect
    );
    let _ = writeln!(
        out,
        "offloaded tasks:     {} of {} ({:.1}%)",
        report.offloaded_tasks,
        report.total_tasks,
        100.0 * report.offload_fraction()
    );
    let _ = writeln!(
        out,
        "parallel efficiency: {:.3}",
        report.parallel_efficiency
    );
    let _ = writeln!(
        out,
        "solver runs:         {} ({} total)",
        report.solver_runs, report.solver_time
    );
    let f = &report.faults;
    if *f != FaultStats::default() {
        let _ = writeln!(
            out,
            "faults:              {} injected, {} recovered, {} absorbed",
            f.injected, f.recovered, f.absorbed
        );
        let _ = writeln!(
            out,
            "  workers killed {}, tasks requeued {}, msgs dropped {}, \
             failovers {}, solver fallbacks {}",
            f.workers_killed,
            f.tasks_requeued,
            f.messages_dropped,
            f.message_failovers,
            f.solver_fallbacks
        );
    }
    if let Some(p) = &report.portfolio {
        let _ = writeln!(
            out,
            "portfolio:           {} races, {} without a winner",
            p.solves, p.no_winner
        );
        for &s in &Strategy::ALL {
            let st = p.of(s);
            if st.attempts == 0 && st.wins == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<8} attempts {:<4} wins {:<4} infeasible {} errors {} \
                 timeouts {} cost {:.4} s",
                s.name(),
                st.attempts,
                st.wins,
                st.infeasible,
                st.errors,
                st.timeouts,
                st.virtual_cost.as_secs_f64()
            );
        }
    }
    if report.trace.enabled && !report.trace.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, value) in report.trace.counters.sorted_counts() {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
        for (name, value) in report.trace.counters.sorted_gauges() {
            let _ = writeln!(out, "  {name:<28} {value:.3}");
        }
        let _ = writeln!(out, "trace events:        {}", report.trace.log.len());
    }
    out
}

/// A JSON-ready summary of a run (the full trace is exported separately).
pub fn format_json(args: &Args, report: &SimReport, perfect: f64) -> String {
    use tlb_json::Value;
    let mut fields = vec![
        ("app", format!("{:?}", args.app).into()),
        ("nodes", args.nodes.into()),
        ("appranks", (args.nodes * args.appranks_per_node).into()),
        ("degree", args.degree.into()),
        ("policy", args.policy.canonical().as_str().into()),
        ("lewi", effective_lewi(args).into()),
        ("makespan_s", report.makespan.as_secs_f64().into()),
        (
            "mean_iteration_s",
            report.mean_iteration_secs(args.iterations / 3).into(),
        ),
        ("perfect_bound_s", perfect.into()),
        ("offloaded_tasks", report.offloaded_tasks.into()),
        ("total_tasks", report.total_tasks.into()),
        ("parallel_efficiency", report.parallel_efficiency.into()),
        ("solver_runs", report.solver_runs.into()),
        (
            "iteration_times_s",
            Value::Array(
                report
                    .iteration_times
                    .iter()
                    .map(|t| t.as_secs_f64().into())
                    .collect(),
            ),
        ),
    ];
    let f = &report.faults;
    if *f != FaultStats::default() {
        fields.push((
            "faults",
            Value::object(vec![
                ("injected", f.injected.into()),
                ("recovered", f.recovered.into()),
                ("absorbed", f.absorbed.into()),
                ("workers_killed", f.workers_killed.into()),
                ("tasks_requeued", f.tasks_requeued.into()),
                ("messages_dropped", f.messages_dropped.into()),
                ("message_failovers", f.message_failovers.into()),
                ("solver_fallbacks", f.solver_fallbacks.into()),
            ]),
        ));
    }
    if let Some(p) = &report.portfolio {
        let per_strategy = Strategy::ALL
            .iter()
            .map(|&s| {
                let st = p.of(s);
                (
                    s.name(),
                    Value::object(vec![
                        ("attempts", st.attempts.into()),
                        ("wins", st.wins.into()),
                        ("infeasible", st.infeasible.into()),
                        ("errors", st.errors.into()),
                        ("timeouts", st.timeouts.into()),
                        ("demotions", st.demotions.into()),
                        ("virtual_cost_s", st.virtual_cost.as_secs_f64().into()),
                    ]),
                )
            })
            .collect();
        fields.push((
            "portfolio",
            Value::object(vec![
                ("solves", p.solves.into()),
                ("no_winner", p.no_winner.into()),
                ("per_strategy", Value::object(per_strategy)),
            ]),
        ));
    }
    if report.trace.enabled {
        fields.push(("trace_events", report.trace.log.len().into()));
        fields.push(("counters", report.trace.counters.to_json()));
    }
    Value::object(fields).to_string_compact()
}

/// Keep `SpecWorkload` in the public surface for config-driven runs.
pub type CustomWorkload = SpecWorkload;

// ---------------------------------------------------------------------------
// `tlb-run sweep`: batch scenario execution on the tlb-sweep engine.
// ---------------------------------------------------------------------------

/// Parsed `tlb-run sweep` command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepArgs {
    /// Path of the scenario JSON file.
    pub scenario: String,
    /// Pool threads to shard points across.
    pub jobs: usize,
    /// Reuse cached point results.
    pub resume: bool,
    /// Where the sweep report JSON is written.
    pub out: String,
    /// Point-result cache directory.
    pub cache_dir: String,
    /// Print the run summary as JSON instead of text.
    pub json: bool,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            scenario: String::new(),
            jobs: 1,
            resume: false,
            out: "tlb_sweep.json".into(),
            cache_dir: "tlb_sweep_cache".into(),
            json: false,
        }
    }
}

/// Usage text of the `sweep` subcommand.
pub const SWEEP_USAGE: &str = "usage: tlb-run sweep --scenario FILE [options]
  --scenario FILE   scenario JSON (strict schema, schema_version 1; see
                    examples/policy_matrix.json)
  --jobs N          points executed concurrently (default 1; the report
                    is bitwise identical at every level)
  --resume          reuse cached point results from --cache-dir
  --out PATH        sweep report path (default tlb_sweep.json)
  --cache-dir PATH  point-result cache (default tlb_sweep_cache)
  --json            print the run summary as JSON
  --help            this text";

/// Parse the argument list following the `sweep` subcommand word.
pub fn parse_sweep_args<I: IntoIterator<Item = String>>(argv: I) -> Result<SweepArgs, ParseError> {
    let mut args = SweepArgs::default();
    let mut it = argv.into_iter().peekable();
    let missing = |flag: &str| ParseError(format!("{flag} needs a value"));
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scenario" => args.scenario = it.next().ok_or_else(|| missing("--scenario"))?,
            "--jobs" => args.jobs = parse_num(&mut it, "--jobs")?,
            "--resume" => args.resume = true,
            "--out" => args.out = it.next().ok_or_else(|| missing("--out"))?,
            "--cache-dir" => args.cache_dir = it.next().ok_or_else(|| missing("--cache-dir"))?,
            "--json" => args.json = true,
            "--help" | "-h" => return Err(ParseError(SWEEP_USAGE.to_string())),
            other => {
                return Err(ParseError(format!(
                    "unknown sweep flag '{other}'\n{SWEEP_USAGE}"
                )))
            }
        }
    }
    if args.scenario.is_empty() {
        return Err(ParseError(format!(
            "sweep needs --scenario FILE\n{SWEEP_USAGE}"
        )));
    }
    if args.jobs == 0 {
        return Err(ParseError("--jobs must be positive".into()));
    }
    Ok(args)
}

/// Load and strictly parse the scenario file. Any violation — missing
/// file, malformed JSON, unknown key, unsupported schema version, bad
/// axis value — is a usage error (exit 2), exactly like `--faults`
/// validation on the single-run path.
pub fn load_scenario(args: &SweepArgs) -> Result<tlb_sweep::Scenario, ParseError> {
    let text = std::fs::read_to_string(&args.scenario)
        .map_err(|e| ParseError(format!("--scenario {}: {e}", args.scenario)))?;
    tlb_sweep::Scenario::from_json_str(&text)
        .map_err(|e| ParseError(format!("--scenario {}: {e}", args.scenario)))
}

/// Execute a sweep: run the engine, write the report to `args.out`, and
/// return the printable summary.
pub fn run_sweep_cmd(args: &SweepArgs, scenario: &tlb_sweep::Scenario) -> Result<String, String> {
    let opts = tlb_sweep::SweepOptions {
        jobs: args.jobs,
        resume: args.resume,
        cache_dir: Some(std::path::PathBuf::from(&args.cache_dir)),
    };
    let outcome = tlb_sweep::run_sweep(scenario, &opts).map_err(|e| e.to_string())?;
    std::fs::write(&args.out, outcome.report.to_string_pretty())
        .map_err(|e| format!("writing {}: {e}", args.out))?;
    let stats = outcome.stats;
    if args.json {
        use tlb_json::Value;
        Ok(Value::object(vec![
            ("scenario", scenario.name.as_str().into()),
            ("points_total", stats.points_total.into()),
            ("executed", stats.executed.into()),
            ("cache_hits", stats.cache_hits.into()),
            ("jobs", args.jobs.into()),
            ("out", args.out.as_str().into()),
        ])
        .to_string_compact())
    } else {
        Ok(format!(
            "sweep '{}': {} points ({} executed, {} cached) on {} job(s)\nreport: {}",
            scenario.name,
            stats.points_total,
            stats.executed,
            stats.cache_hits,
            args.jobs,
            args.out
        ))
    }
}

// ---------------------------------------------------------------------------
// `tlb-run serve`: the resident sweep-as-a-service daemon (tlb-serve).
// ---------------------------------------------------------------------------

/// Parsed `tlb-run serve` command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeArgs {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Pool threads executing points.
    pub jobs: usize,
    /// Point-result cache directory (shared with `tlb-run sweep`), or
    /// `None` with `--no-cache`.
    pub cache_dir: Option<String>,
    /// Admission-queue bound; requests past it are shed.
    pub queue_bound: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:7070".into(),
            jobs: 2,
            cache_dir: Some("tlb_sweep_cache".into()),
            queue_bound: 1024,
        }
    }
}

/// Usage text of the `serve` subcommand.
pub const SERVE_USAGE: &str = "usage: tlb-run serve [options]
  --addr HOST:PORT   bind address (default 127.0.0.1:7070; :0 = ephemeral)
  --jobs N           points executed concurrently (default 2)
  --cache-dir PATH   point-result cache, shared with tlb-run sweep
                     (default tlb_sweep_cache; created if missing)
  --no-cache         disable the result cache (dedup still applies)
  --queue-bound N    admission queue bound; requests that would push the
                     backlog past it are shed with a retry-after reply
                     (default 1024)
  --help             this text

protocol: line-delimited JSON over TCP; one request object in, one or
more reply objects out. cmds: sweep (scenario -> ack, streamed points,
report), stats, ping, shutdown (drains, flushes cache, then acks).";

/// Parse the argument list following the `serve` subcommand word.
pub fn parse_serve_args<I: IntoIterator<Item = String>>(argv: I) -> Result<ServeArgs, ParseError> {
    let mut args = ServeArgs::default();
    let mut it = argv.into_iter().peekable();
    let missing = |flag: &str| ParseError(format!("{flag} needs a value"));
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => args.addr = it.next().ok_or_else(|| missing("--addr"))?,
            "--jobs" => args.jobs = parse_num(&mut it, "--jobs")?,
            "--cache-dir" => {
                args.cache_dir = Some(it.next().ok_or_else(|| missing("--cache-dir"))?)
            }
            "--no-cache" => args.cache_dir = None,
            "--queue-bound" => args.queue_bound = parse_num(&mut it, "--queue-bound")?,
            "--help" | "-h" => return Err(ParseError(SERVE_USAGE.to_string())),
            other => {
                return Err(ParseError(format!(
                    "unknown serve flag '{other}'\n{SERVE_USAGE}"
                )))
            }
        }
    }
    if args.jobs == 0 {
        return Err(ParseError("--jobs must be positive".into()));
    }
    tlb_serve::validate_addr(&args.addr).map_err(ParseError)?;
    Ok(args)
}

/// The executor provisioning implied by the parsed arguments.
pub fn serve_config(args: &ServeArgs) -> tlb_serve::ExecutorConfig {
    tlb_serve::ExecutorConfig {
        jobs: args.jobs,
        queue_bound: args.queue_bound,
        cache_dir: args.cache_dir.as_ref().map(std::path::PathBuf::from),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Result<Args, ParseError> {
        parse_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults_parse() {
        let a = args("").unwrap();
        assert_eq!(a.app, App::Synthetic);
        assert_eq!(a.degree, 4);
        assert_eq!(a.policy.name(), "lewi+drom-global");
        assert_eq!(a.lewi, None);
        assert!(effective_lewi(&a));
    }

    #[test]
    fn full_flag_set() {
        let a = args(
            "--app micropp --nodes 8 --appranks-per-node 2 --degree 3 \
             --policy local --lewi off --iterations 9 --machine nord3 \
             --slow-node 0 --seed 5 --json",
        )
        .unwrap();
        assert_eq!(a.app, App::Micropp);
        assert_eq!(a.nodes, 8);
        assert_eq!(a.appranks_per_node, 2);
        assert_eq!(a.degree, 3);
        assert_eq!(a.policy.name(), "lewi+drom-local");
        assert_eq!(a.lewi, Some(false));
        assert!(!effective_lewi(&a));
        assert_eq!(a.iterations, 9);
        assert_eq!(a.machine, Machine::Nord3);
        assert_eq!(a.slow_node, Some(0));
        assert_eq!(a.seed, 5);
        assert!(a.json);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(args("--app warp-drive").is_err());
        assert!(args("--nodes zero").is_err());
        assert!(args("--degree 9 --nodes 4").is_err());
        assert!(args("--policy sometimes").is_err());
        assert!(args("--frobnicate").is_err());
        assert!(args("--nodes").is_err());
    }

    #[test]
    fn policy_flag_takes_registry_names_and_parameters() {
        // Registry names pass straight through.
        let a = args("--policy baseline").unwrap();
        assert_eq!(a.policy.name(), "baseline");
        assert!(!effective_lewi(&a));
        // Parameterized form (no whitespace; the shell would strip it
        // anyway before the arg reaches us).
        let b = args("--policy reactive-offload(hi=0.4,unit=2)").unwrap();
        assert_eq!(b.policy.canonical(), "reactive-offload(hi=0.4,unit=2)");
        let c = args("--policy diffusion(order=2)").unwrap();
        assert_eq!(c.policy.canonical(), "diffusion(order=2)");
        // Errors carry the registry's vocabulary.
        let err = args("--policy gossip").unwrap_err();
        assert!(err.0.contains("reactive-offload"), "{err}");
        assert!(args("--policy diffusion(gamma=1)").is_err());
    }

    #[test]
    fn legacy_policy_shorthands_still_map() {
        assert_eq!(args("--policy off").unwrap().policy.name(), "lewi");
        assert_eq!(
            args("--policy local").unwrap().policy.name(),
            "lewi+drom-local"
        );
        assert_eq!(
            args("--policy global").unwrap().policy.name(),
            "lewi+drom-global"
        );
        // `--policy off --lewi off` is the old spelling of baseline.
        let cfg = build_config(&args("--policy off --lewi off").unwrap());
        assert!(!cfg.lewi);
        assert_eq!(cfg.drom, tlb_core::DromPolicy::Off);
    }

    #[test]
    fn amr_app_runs_end_to_end() {
        let a = args(
            "--app amr --nodes 2 --degree 2 --iterations 4 --machine ideal \
             --policy reactive-offload",
        )
        .unwrap();
        let (report, perfect) = run(&a).unwrap();
        assert_eq!(report.iteration_times.len(), 4);
        assert!(perfect > 0.0);
        // Deterministic: the same arguments reproduce the same report.
        let (again, _) = run(&a).unwrap();
        assert_eq!(report.makespan, again.makespan);
        assert_eq!(report.iteration_times, again.iteration_times);
        let text = format_text(&a, &report, perfect);
        assert!(text.contains("policy reactive-offload"), "{text}");
    }

    #[test]
    fn help_prints_usage() {
        let err = args("--help").unwrap_err();
        assert!(err.0.contains("usage: tlb-run"));
    }

    #[test]
    fn platform_presets() {
        let mut a = args("--machine mn4 --nodes 4").unwrap();
        assert_eq!(build_platform(&a).cores_per_node, 48);
        a.machine = Machine::Nord3;
        assert_eq!(build_platform(&a).cores_per_node, 16);
        a.slow_node = Some(1);
        let p = build_platform(&a);
        assert!((p.node_speed[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_synthetic_run() {
        let a =
            args("--app synthetic --nodes 4 --degree 2 --iterations 3 --machine ideal").unwrap();
        let (report, perfect) = run(&a).unwrap();
        assert_eq!(report.iteration_times.len(), 3);
        assert!(perfect > 0.0);
        assert!(report.makespan.as_secs_f64() >= perfect * 2.9); // 3 iterations
        let text = format_text(&a, &report, perfect);
        assert!(text.contains("makespan"));
        let json = format_json(&a, &report, perfect);
        let parsed = tlb_json::parse(&json).unwrap();
        assert_eq!(parsed.get("nodes").as_usize(), Some(4));
    }

    #[test]
    fn trace_subcommand_parses_and_defaults_chrome() {
        let a = args("trace --nodes 2 --degree 2").unwrap();
        assert!(a.trace_mode);
        assert_eq!(chrome_path(&a).as_deref(), Some("tlb_trace.chrome.json"));
        let b = args("trace --chrome my.json").unwrap();
        assert_eq!(chrome_path(&b).as_deref(), Some("my.json"));
        // "trace" is only a subcommand in leading position.
        assert!(args("--nodes 2 trace").is_err());
        let c = args("--nodes 2 --degree 2").unwrap();
        assert!(!c.trace_mode);
        assert_eq!(chrome_path(&c), None);
    }

    #[test]
    fn traced_run_writes_chrome_and_reports_counters() {
        let dir = std::env::temp_dir().join("tlb_cli_chrome_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.chrome.json");
        let mut a = args("trace --nodes 2 --degree 2 --iterations 2 --machine ideal").unwrap();
        a.chrome = Some(path.to_string_lossy().into_owned());
        a.json = true;
        let (report, perfect) = run(&a).unwrap();
        let chrome = std::fs::read_to_string(&path).unwrap();
        let parsed = tlb_json::parse(&chrome).unwrap();
        assert!(!parsed.get("traceEvents").as_array().unwrap().is_empty());
        let text = format_text(&a, &report, perfect);
        assert!(text.contains("counters:"));
        assert!(text.contains("tasks_completed"));
        let json = tlb_json::parse(&format_json(&a, &report, perfect)).unwrap();
        let counts = json.get("counters").get("counters");
        assert_eq!(
            counts.get("tasks_completed").as_u64(),
            Some(report.total_tasks as u64)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn untraced_run_reports_no_counters() {
        let a = args("--nodes 2 --degree 2 --iterations 2 --machine ideal").unwrap();
        let (report, perfect) = run(&a).unwrap();
        assert!(!format_text(&a, &report, perfect).contains("counters:"));
        let json = tlb_json::parse(&format_json(&a, &report, perfect)).unwrap();
        assert!(json.get("counters").is_null());
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let a = args("--faults straggler@0.5,node=1,slow=3 --fault-seed 7").unwrap();
        assert_eq!(a.faults.as_deref(), Some("straggler@0.5,node=1,slow=3"));
        assert_eq!(a.fault_seed, 7);
        // Spec errors are parse errors (exit 2), not run errors.
        let err = args("--faults nonsense@3").unwrap_err();
        assert!(err.0.contains("--faults"), "{err}");
        assert!(args("--faults loss@0,rate=1.5").is_err());
        assert!(args("--faults").is_err());
        // Defaults: no plan, seed 1.
        let d = args("").unwrap();
        assert_eq!(d.faults, None);
        assert_eq!(d.fault_seed, 1);
    }

    #[test]
    fn faulty_run_reports_fault_stats() {
        let mut a = args(
            "--app synthetic --nodes 4 --degree 2 --iterations 3 --machine ideal \
             --faults straggler@0.2,node=1,slow=3,for=0.5;outage@0.1,for=5",
        )
        .unwrap();
        let (report, perfect) = run(&a).unwrap();
        let f = &report.faults;
        assert!(f.injected > 0, "faults should fire: {f:?}");
        assert_eq!(f.injected, f.recovered + f.absorbed, "{f:?}");
        let text = format_text(&a, &report, perfect);
        assert!(text.contains("faults:"), "{text}");
        a.json = true;
        let json = tlb_json::parse(&format_json(&a, &report, perfect)).unwrap();
        assert_eq!(
            json.get("faults").get("injected").as_usize(),
            Some(f.injected)
        );

        // Fault-free runs keep the report clean of fault noise.
        let clean =
            args("--app synthetic --nodes 4 --degree 2 --iterations 3 --machine ideal").unwrap();
        let (r2, p2) = run(&clean).unwrap();
        assert_eq!(r2.faults, tlb_cluster::FaultStats::default());
        assert!(!format_text(&clean, &r2, p2).contains("faults:"));
        let j2 = tlb_json::parse(&format_json(&clean, &r2, p2)).unwrap();
        assert!(j2.get("faults").is_null());
    }

    #[test]
    fn portfolio_flags_parse_and_validate() {
        let a = args("--portfolio all --portfolio-budget 0.1").unwrap();
        assert_eq!(a.portfolio.as_deref(), Some("all"));
        assert_eq!(a.portfolio_budget, Some(0.1));
        let cfg = build_config(&a);
        let pc = cfg.portfolio.expect("portfolio config set");
        assert_eq!(pc.strategies.len(), 4);
        assert_eq!(pc.budget, SimTime::from_secs_f64(0.1));
        // Spec and combination errors are parse errors (exit 2).
        assert!(args("--portfolio cplex").is_err());
        assert!(args("--portfolio simplex,simplex").is_err());
        assert!(args("--portfolio all --policy local").is_err());
        assert!(args("--portfolio-budget 0.1").is_err());
        assert!(args("--portfolio all --portfolio-budget 0").is_err());
        assert!(args("--portfolio all --portfolio-budget nan").is_err());
        // Adaptive prefix and defaults.
        let b = args("--portfolio adaptive:simplex,greedy").unwrap();
        let pc = build_config(&b).portfolio.unwrap();
        assert!(pc.adaptive);
        assert_eq!(pc.strategies, vec![Strategy::Simplex, Strategy::Greedy]);
        assert_eq!(build_config(&args("").unwrap()).portfolio, None);
    }

    #[test]
    fn portfolio_run_reports_stats() {
        let a = args(
            "--app synthetic --nodes 4 --degree 2 --iterations 3 --machine ideal \
             --portfolio all",
        )
        .unwrap();
        let (report, perfect) = run(&a).unwrap();
        let p = report.portfolio.as_ref().expect("portfolio stats");
        assert!(p.solves > 0, "no races ran");
        let text = format_text(&a, &report, perfect);
        assert!(text.contains("portfolio:"), "{text}");
        let json = tlb_json::parse(&format_json(&a, &report, perfect)).unwrap();
        assert_eq!(
            json.get("portfolio").get("solves").as_usize(),
            Some(p.solves)
        );
        assert!(json
            .get("portfolio")
            .get("per_strategy")
            .get("simplex")
            .get("attempts")
            .as_usize()
            .is_some());

        // Portfolio-free runs keep the report clean.
        let clean = args("--app synthetic --nodes 4 --degree 2 --iterations 3 --machine ideal");
        let (r2, p2) = run(&clean.unwrap()).unwrap();
        assert!(r2.portfolio.is_none());
        assert!(!format_text(&a, &r2, p2).contains("portfolio:"));
    }

    #[test]
    fn trace_csv_is_written() {
        let dir = std::env::temp_dir().join("tlb_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.csv");
        let mut a = args("--nodes 2 --degree 2 --iterations 2 --machine ideal").unwrap();
        a.trace_csv = Some(path.to_string_lossy().into_owned());
        run(&a).unwrap();
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("kind,node,proc"));
        std::fs::remove_file(&path).ok();
    }

    fn sweep_args(s: &str) -> Result<SweepArgs, ParseError> {
        parse_sweep_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn sweep_flags_parse() {
        let a = sweep_args("--scenario sc.json --jobs 8 --resume --out r.json --json").unwrap();
        assert_eq!(a.scenario, "sc.json");
        assert_eq!(a.jobs, 8);
        assert!(a.resume);
        assert_eq!(a.out, "r.json");
        assert_eq!(a.cache_dir, "tlb_sweep_cache");
        assert!(a.json);
    }

    #[test]
    fn sweep_usage_errors_are_parse_errors() {
        // All of these exit 2 through main, like --faults validation.
        assert!(sweep_args("").is_err(), "missing --scenario");
        assert!(sweep_args("--scenario sc.json --jobs 0").is_err());
        assert!(sweep_args("--scenario sc.json --frobnicate").is_err());
        assert!(sweep_args("--help")
            .unwrap_err()
            .0
            .contains("usage: tlb-run sweep"));
    }

    #[test]
    fn sweep_scenario_violations_are_parse_errors() {
        let dir = std::env::temp_dir().join(format!("tlb_cli_sweep_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        let path_str = path.to_string_lossy().into_owned();

        let mut a = SweepArgs {
            scenario: "does-not-exist.json".into(),
            ..SweepArgs::default()
        };
        assert!(load_scenario(&a).is_err());

        std::fs::write(
            &path,
            r#"{"schema_version": 1, "name": "x", "app": "synthetic", "oops": 1}"#,
        )
        .unwrap();
        a.scenario = path_str;
        let err = load_scenario(&a).unwrap_err();
        assert!(err.0.contains("unknown key 'oops'"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_cmd_runs_and_writes_report() {
        let dir = std::env::temp_dir().join(format!("tlb_cli_sweep_run_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sc_path = dir.join("sc.json");
        std::fs::write(
            &sc_path,
            r#"{"schema_version": 1, "name": "cli-smoke", "app": "synthetic",
                "machine": "ideal", "nodes": 2, "iterations": 2,
                "axes": {"policy": ["baseline", "lewi"]}}"#,
        )
        .unwrap();
        let a = SweepArgs {
            scenario: sc_path.to_string_lossy().into_owned(),
            jobs: 2,
            out: dir.join("report.json").to_string_lossy().into_owned(),
            cache_dir: dir.join("cache").to_string_lossy().into_owned(),
            json: true,
            ..SweepArgs::default()
        };
        let scenario = load_scenario(&a).unwrap();
        let summary = tlb_json::parse(&run_sweep_cmd(&a, &scenario).unwrap()).unwrap();
        assert_eq!(summary.get("points_total").as_usize(), Some(2));
        assert_eq!(summary.get("executed").as_usize(), Some(2));
        assert_eq!(summary.get("cache_hits").as_usize(), Some(0));
        let report =
            tlb_json::parse(&std::fs::read_to_string(dir.join("report.json")).unwrap()).unwrap();
        assert_eq!(report.get("points").as_array().unwrap().len(), 2);

        // Resume: everything cached, byte-identical report.
        let resumed = SweepArgs {
            resume: true,
            ..a.clone()
        };
        let first = std::fs::read_to_string(dir.join("report.json")).unwrap();
        let summary = tlb_json::parse(&run_sweep_cmd(&resumed, &scenario).unwrap()).unwrap();
        assert_eq!(summary.get("executed").as_usize(), Some(0));
        assert_eq!(summary.get("cache_hits").as_usize(), Some(2));
        assert_eq!(
            first,
            std::fs::read_to_string(dir.join("report.json")).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_cmd_creates_missing_nested_cache_dir() {
        // Regression: `--cache-dir` pointing at a path whose parents do
        // not exist yet must be created, not rejected.
        let dir = std::env::temp_dir().join(format!("tlb_cli_sweep_mkdir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sc_path = dir.join("sc.json");
        std::fs::write(
            &sc_path,
            r#"{"schema_version": 1, "name": "mkdir", "app": "synthetic",
                "machine": "ideal", "nodes": 2, "iterations": 2,
                "axes": {"policy": ["baseline"]}}"#,
        )
        .unwrap();
        let nested = dir.join("deeply/nested/cache");
        assert!(!nested.exists());
        let a = SweepArgs {
            scenario: sc_path.to_string_lossy().into_owned(),
            out: dir.join("report.json").to_string_lossy().into_owned(),
            cache_dir: nested.to_string_lossy().into_owned(),
            ..SweepArgs::default()
        };
        let scenario = load_scenario(&a).unwrap();
        run_sweep_cmd(&a, &scenario).unwrap();
        assert!(nested.is_dir(), "nested cache dir was not created");
        assert_eq!(
            std::fs::read_dir(&nested).unwrap().count(),
            1,
            "expected exactly one cached point"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn serve_args(s: &str) -> Result<ServeArgs, ParseError> {
        parse_serve_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn serve_flags_parse() {
        let a = serve_args("").unwrap();
        assert_eq!(a.addr, "127.0.0.1:7070");
        assert_eq!(a.jobs, 2);
        assert_eq!(a.cache_dir.as_deref(), Some("tlb_sweep_cache"));
        assert_eq!(a.queue_bound, 1024);

        let b =
            serve_args("--addr 127.0.0.1:0 --jobs 8 --cache-dir /tmp/c --queue-bound 16").unwrap();
        assert_eq!(b.addr, "127.0.0.1:0");
        assert_eq!(b.jobs, 8);
        assert_eq!(b.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(b.queue_bound, 16);
        let cfg = serve_config(&b);
        assert_eq!(cfg.jobs, 8);
        assert_eq!(cfg.queue_bound, 16);
        assert_eq!(cfg.cache_dir, Some(std::path::PathBuf::from("/tmp/c")));

        let c = serve_args("--no-cache").unwrap();
        assert_eq!(c.cache_dir, None);
        assert_eq!(serve_config(&c).cache_dir, None);
    }

    #[test]
    fn serve_usage_errors_are_parse_errors() {
        assert!(serve_args("--jobs 0").is_err());
        assert!(serve_args("--addr not-an-address").is_err());
        assert!(serve_args("--frobnicate").is_err());
        assert!(serve_args("--addr").is_err());
        assert!(serve_args("--help")
            .unwrap_err()
            .0
            .contains("usage: tlb-run serve"));
    }
}
