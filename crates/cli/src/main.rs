//! `tlb-run`: run one transparent-load-balancing experiment from the
//! command line. See `tlb-run --help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("sweep") {
        sweep_main(argv[1..].to_vec());
        return;
    }
    if argv.first().map(String::as_str) == Some("serve") {
        serve_main(argv[1..].to_vec());
        return;
    }
    let args = match tlb_cli::parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match tlb_cli::run(&args) {
        Ok((report, perfect)) => {
            if args.json {
                println!("{}", tlb_cli::format_json(&args, &report, perfect));
            } else {
                print!("{}", tlb_cli::format_text(&args, &report, perfect));
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// The `sweep` subcommand: flag or scenario-schema violations exit 2
/// (usage errors, like `--faults` validation); engine failures exit 1.
fn sweep_main(argv: Vec<String>) {
    let args = match tlb_cli::parse_sweep_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let scenario = match tlb_cli::load_scenario(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match tlb_cli::run_sweep_cmd(&args, &scenario) {
        Ok(summary) => println!("{summary}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// The `serve` subcommand: start the resident sweep daemon and block
/// until a client sends `shutdown` (which drains in-flight points and
/// flushes the cache before the process exits).
fn serve_main(argv: Vec<String>) {
    let args = match tlb_cli::parse_serve_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let server = match tlb_serve::Server::start(&args.addr, tlb_cli::serve_config(&args)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("tlb-serve listening on {}", server.local_addr());
    server.join();
}
