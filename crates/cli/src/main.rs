//! `tlb-run`: run one transparent-load-balancing experiment from the
//! command line. See `tlb-run --help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match tlb_cli::parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match tlb_cli::run(&args) {
        Ok((report, perfect)) => {
            if args.json {
                println!("{}", tlb_cli::format_json(&args, &report, perfect));
            } else {
                print!("{}", tlb_cli::format_text(&args, &report, perfect));
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
