//! Pool-sharded execution of an expanded scenario and the deterministic
//! aggregation of its per-point reports.

use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;

use tlb_cluster::{ClusterSim, FaultPlan, FaultStats, RunSpec, SimReport, Workload};
use tlb_core::Platform;
use tlb_json::Value;
use tlb_smprt::Pool;

use crate::cache::{point_key, point_key_input, Cache};
use crate::scenario::{Scenario, SweepPoint};

/// How to run a sweep.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Pool threads to shard points across (1 = fully serial). The
    /// report is bitwise identical at every level.
    pub jobs: usize,
    /// Reuse cached point results instead of re-executing them.
    pub resume: bool,
    /// Where cached point results live; `None` disables the cache
    /// entirely (nothing read, nothing written).
    pub cache_dir: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 1,
            resume: false,
            cache_dir: None,
        }
    }
}

/// Execution accounting for one `run_sweep` call. Deliberately kept out
/// of the sweep report JSON: cache hits change *how* a number was
/// obtained, never the number, and the report must be byte-identical
/// between a fresh and a fully-cached run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Points in the expanded grid.
    pub points_total: usize,
    /// Points that ran a simulation.
    pub executed: usize,
    /// Points served from the cache.
    pub cache_hits: usize,
}

/// What `run_sweep` returns: the aggregate report plus accounting.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The sweep report (see the module docs for the layout). Identical
    /// across `jobs` levels and across fresh/cached execution.
    pub report: Value,
    /// Execution accounting.
    pub stats: SweepStats,
    /// Per-point cache keys, in expansion order (exposed so callers and
    /// tests can reason about cache identity without re-deriving it).
    pub keys: Vec<u64>,
}

/// Sweep failures: a scenario-level problem or the first failing point
/// (by expansion order, so the reported error is deterministic too).
#[derive(Clone, Debug)]
pub enum SweepError {
    /// The scenario itself is unusable (bad spec, cache I/O).
    Scenario(String),
    /// A point failed; `index` is its expansion position.
    Point {
        /// Expansion position of the failing point.
        index: usize,
        /// The underlying error.
        message: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Scenario(m) => write!(f, "{m}"),
            SweepError::Point { index, message } => write!(f, "point {index}: {message}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Expand, execute (sharded over `opts.jobs` pool threads), and
/// aggregate a scenario.
///
/// Every point runs the ordinary single-threaded simulator; the pool
/// parallelism is purely *between* points, and aggregation happens
/// sequentially in expansion order afterwards — which is the whole
/// bitwise-determinism argument, there is nothing schedule-dependent to
/// hide.
pub fn run_sweep(scenario: &Scenario, opts: &SweepOptions) -> Result<SweepOutcome, SweepError> {
    scenario
        .validate()
        .map_err(|e| SweepError::Scenario(e.to_string()))?;
    let points = scenario.expand();
    let keys: Vec<u64> = points.iter().map(|p| point_key(scenario, p)).collect();
    let cache = match &opts.cache_dir {
        Some(dir) => Some(
            Cache::open(dir).map_err(|e| SweepError::Scenario(format!("cache {dir:?}: {e}")))?,
        ),
        None => None,
    };

    // One slot per point; slots are written exactly once each, then read
    // back sequentially. `bool` is "was a cache hit".
    type Slot = Mutex<Option<Result<(Value, bool), String>>>;
    let slots: Vec<Slot> = points.iter().map(|_| Mutex::new(None)).collect();
    let pool = Pool::new(opts.jobs.max(1));
    pool.parallel_for(points.len(), 1, |i| {
        let outcome = (|| {
            let key_input = point_key_input(scenario, &points[i]);
            if opts.resume {
                if let Some(cache) = &cache {
                    if let Some(value) = cache.load(keys[i], &key_input) {
                        return Ok((value, true));
                    }
                }
            }
            let value = run_point(scenario, &points[i])?;
            if let Some(cache) = &cache {
                cache
                    .store(keys[i], &key_input, &value)
                    .map_err(|e| format!("cache write: {e}"))?;
            }
            Ok((value, false))
        })();
        *slots[i].lock().unwrap() = Some(outcome);
    });

    let mut stats = SweepStats {
        points_total: points.len(),
        ..SweepStats::default()
    };
    let mut records = Vec::with_capacity(points.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let outcome = slot
            .into_inner()
            .unwrap()
            .expect("parallel_for covers every index");
        match outcome {
            Ok((value, hit)) => {
                if hit {
                    stats.cache_hits += 1;
                } else {
                    stats.executed += 1;
                }
                records.push(value);
            }
            Err(message) => return Err(SweepError::Point { index: i, message }),
        }
    }

    let report = aggregate(scenario, &points, records);
    Ok(SweepOutcome {
        report,
        stats,
        keys,
    })
}

/// Run one grid point: build platform, config, and workload, execute the
/// simulation (untraced — sweeps measure results, not timelines), and
/// summarize into the point's JSON record.
///
/// Public because the batch driver is not the only executor anymore:
/// the `tlb-serve` daemon runs single points on demand through exactly
/// this function, so a served record and a swept record are the same
/// bytes by construction.
pub fn run_point(scenario: &Scenario, point: &SweepPoint) -> Result<Value, String> {
    let platform = scenario.platform();
    let config = scenario.config(point).map_err(|e| e.to_string())?;
    let plan = match &scenario.faults {
        Some(spec) => FaultPlan::parse(spec, scenario.fault_seed)?,
        None => FaultPlan::none(),
    };
    let appranks = scenario.nodes * point.appranks_per_node;
    let (workload, per_iter_work) = build_workload(scenario, point, appranks, &platform);
    let report = ClusterSim::execute(RunSpec::new(&platform, &config, workload).faults(&plan))
        .map_err(|e| e.to_string())?;
    let perfect = per_iter_work / platform.effective_capacity();
    Ok(point_record(scenario, point, appranks, &report, perfect))
}

/// Build the point's workload plus its nominal per-iteration work in
/// core·seconds (the numerator of the perfect-balance bound). Mirrors
/// the `tlb-run` CLI's construction so a sweep point and the equivalent
/// command line produce the same simulation.
fn build_workload(
    scenario: &Scenario,
    point: &SweepPoint,
    appranks: usize,
    platform: &Platform,
) -> (Box<dyn Workload>, f64) {
    match scenario.app {
        crate::scenario::SweepApp::Synthetic => {
            let mut cfg = tlb_apps::synthetic::SyntheticConfig::new(appranks, scenario.imbalance);
            cfg.iterations = scenario.iterations;
            cfg.seed = point.seed;
            let wl = tlb_apps::synthetic::synthetic_workload(&cfg, platform);
            let work = wl.rank_work(0).iter().sum::<f64>();
            (Box::new(wl), work)
        }
        crate::scenario::SweepApp::Micropp => {
            let mut cfg = tlb_apps::micropp::MicroPpConfig::new(appranks);
            cfg.iterations = scenario.iterations;
            cfg.seed = point.seed;
            let wl = tlb_apps::micropp::micropp_workload(&cfg);
            let work = wl.rank_work(0).iter().sum::<f64>();
            (Box::new(wl), work)
        }
        crate::scenario::SweepApp::Nbody => {
            let mut cfg = tlb_apps::nbody::NBodyConfig::new(20_000 * appranks, appranks);
            cfg.iterations = scenario.iterations;
            cfg.force_cost = 2e-6;
            cfg.seed = point.seed;
            let mut probe = tlb_apps::nbody::NBodyWorkload::new(cfg.clone());
            let work: f64 = (0..appranks)
                .map(|r| probe.tasks(r, 0).iter().map(|t| t.duration).sum::<f64>())
                .sum();
            (Box::new(tlb_apps::nbody::NBodyWorkload::new(cfg)), work)
        }
        crate::scenario::SweepApp::Stencil => {
            let mut cfg =
                tlb_apps::stencil::StencilConfig::new(appranks, 128, 128).with_gradient(0.5, 2.0);
            cfg.iterations = scenario.iterations;
            cfg.secs_per_row = 1e-3;
            let wl = tlb_apps::stencil::StencilWorkload::new(cfg.clone());
            let work: f64 = (0..appranks).map(|r| wl.rank_work(r)).sum();
            (Box::new(tlb_apps::stencil::StencilWorkload::new(cfg)), work)
        }
        crate::scenario::SweepApp::Amr => {
            let mut cfg = tlb_apps::amr::AmrConfig::new(appranks, scenario.imbalance);
            cfg.iterations = scenario.iterations;
            cfg.seed = point.seed;
            let wl = tlb_apps::amr::amr_workload(&cfg, platform);
            let work = wl.iteration_work();
            (Box::new(wl), work)
        }
    }
}

/// One point's JSON record. Only virtual-time results appear here —
/// never wall-clock — so the record is a pure function of the point's
/// configuration. Deliberately *excludes* the expansion index: the
/// record (and therefore the cache entry) must be identical no matter
/// which scenario's grid a point was reached through, so overlapping
/// sweeps and the serve daemon share cache entries byte for byte.
/// [`aggregate`] re-attaches each record's index positionally.
fn point_record(
    scenario: &Scenario,
    point: &SweepPoint,
    appranks: usize,
    report: &SimReport,
    perfect: f64,
) -> Value {
    let mean_iteration = report.mean_iteration_secs(scenario.iterations / 3);
    let mut fields = vec![
        ("appranks_per_node", point.appranks_per_node.into()),
        ("degree", point.degree.into()),
        ("policy", point.policy.canonical().as_str().into()),
        ("seed", point.seed.into()),
        ("appranks", appranks.into()),
        ("makespan_s", report.makespan.as_secs_f64().into()),
        ("mean_iteration_s", mean_iteration.into()),
        ("perfect_bound_s", perfect.into()),
        (
            "balance_ratio",
            if perfect > 0.0 {
                (mean_iteration / perfect).into()
            } else {
                Value::Null
            },
        ),
        ("offloaded_tasks", report.offloaded_tasks.into()),
        ("total_tasks", report.total_tasks.into()),
        ("events", report.events.into()),
        ("solver_runs", report.solver_runs.into()),
        ("solver_time_s", report.solver_time.as_secs_f64().into()),
        ("spawned_helpers", report.spawned_helpers.into()),
        ("parallel_efficiency", report.parallel_efficiency.into()),
        (
            "iteration_times_s",
            Value::Array(
                report
                    .iteration_times
                    .iter()
                    .map(|t| t.as_secs_f64().into())
                    .collect(),
            ),
        ),
    ];
    if report.faults != FaultStats::default() {
        fields.push((
            "faults",
            Value::object(vec![
                ("injected", report.faults.injected.into()),
                ("recovered", report.faults.recovered.into()),
                ("absorbed", report.faults.absorbed.into()),
                ("solver_fallbacks", report.faults.solver_fallbacks.into()),
            ]),
        ));
    }
    if let Some(p) = &report.portfolio {
        fields.push((
            "portfolio",
            Value::object(vec![
                ("solves", p.solves.into()),
                ("no_winner", p.no_winner.into()),
            ]),
        ));
    }
    Value::object(fields)
}

/// The baseline reference degree: 1 when the axis includes it, else the
/// smallest degree swept (deterministic, documented in DESIGN.md §10).
fn baseline_degree(scenario: &Scenario) -> usize {
    if scenario.axes.degree.contains(&1) {
        1
    } else {
        *scenario.axes.degree.iter().min().unwrap_or(&1)
    }
}

fn get_f64(record: &Value, key: &str) -> f64 {
    record.get(key).as_f64().unwrap_or(f64::NAN)
}

/// Sequential aggregation in expansion order: attach speedup-vs-baseline
/// to every point, then fold per-axis tables and the per-policy
/// iteration-time series. Pure function of the ordered records — which
/// is why the `tlb-serve` daemon can call it on records gathered from
/// any mix of cache hits, deduped in-flight points, and fresh runs and
/// still reply with a report bitwise identical to an offline sweep.
pub fn aggregate(scenario: &Scenario, points: &[SweepPoint], records: Vec<Value>) -> Value {
    let base_degree = baseline_degree(scenario);
    // Baseline makespan per (appranks_per_node, seed).
    let baseline_of = |apn: usize, seed: u64| -> Option<f64> {
        points
            .iter()
            .position(|p| {
                p.policy.name() == "baseline"
                    && p.degree == base_degree
                    && p.appranks_per_node == apn
                    && p.seed == seed
            })
            .map(|i| get_f64(&records[i], "makespan_s"))
    };

    let mut points_json = Vec::with_capacity(records.len());
    let mut speedups: Vec<Option<f64>> = Vec::with_capacity(records.len());
    for (i, (point, record)) in points.iter().zip(&records).enumerate() {
        let speedup = baseline_of(point.appranks_per_node, point.seed).and_then(|base| {
            let own = get_f64(record, "makespan_s");
            (own > 0.0).then(|| base / own)
        });
        speedups.push(speedup);
        // The expansion index is positional, not part of the cached
        // record (see `point_record`); attach it here.
        let mut fields: Vec<(String, Value)> = vec![("index".into(), i.into())];
        fields.extend(record.as_object().cloned().unwrap_or_default());
        fields.push((
            "speedup_vs_baseline".into(),
            speedup.map_or(Value::Null, Value::from),
        ));
        points_json.push(Value::Object(fields));
    }

    // Per-axis tables: group sequentially, preserving first-seen order.
    let table = |key_of: &dyn Fn(&SweepPoint) -> Value| -> Value {
        let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let k = key_of(p).to_string_compact();
            match groups.iter_mut().find(|(g, _)| *g == k) {
                Some((_, idx)) => idx.push(i),
                None => groups.push((k, vec![i])),
            }
        }
        Value::Array(
            groups
                .into_iter()
                .map(|(k, idx)| {
                    let n = idx.len() as f64;
                    let mean = |field: &str| {
                        idx.iter()
                            .map(|&i| get_f64(&records[i], field))
                            .sum::<f64>()
                            / n
                    };
                    let best = idx
                        .iter()
                        .map(|&i| get_f64(&records[i], "makespan_s"))
                        .fold(f64::INFINITY, f64::min);
                    let sps: Vec<f64> = idx.iter().filter_map(|&i| speedups[i]).collect();
                    Value::object(vec![
                        ("key", tlb_json::parse(&k).unwrap_or(Value::Null)),
                        ("n", idx.len().into()),
                        ("mean_makespan_s", mean("makespan_s").into()),
                        ("best_makespan_s", best.into()),
                        ("mean_balance_ratio", mean("balance_ratio").into()),
                        (
                            "mean_speedup_vs_baseline",
                            if sps.is_empty() {
                                Value::Null
                            } else {
                                (sps.iter().sum::<f64>() / sps.len() as f64).into()
                            },
                        ),
                    ])
                })
                .collect(),
        )
    };

    // Per-policy mean iteration-time series (the imbalance-convergence
    // view: DROM policies should bend these curves down over time).
    let mut series: Vec<(String, Value)> = Vec::new();
    for policy in &scenario.axes.policy {
        let idx: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.policy == *policy)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let mut sums = vec![0.0f64; scenario.iterations];
        let mut counts = vec![0usize; scenario.iterations];
        for &i in &idx {
            if let Some(times) = records[i].get("iteration_times_s").as_array() {
                for (it, t) in times.iter().enumerate().take(scenario.iterations) {
                    sums[it] += t.as_f64().unwrap_or(0.0);
                    counts[it] += 1;
                }
            }
        }
        series.push((
            policy.canonical(),
            Value::Array(
                sums.iter()
                    .zip(&counts)
                    .map(|(&s, &c)| {
                        if c == 0 {
                            Value::Null
                        } else {
                            (s / c as f64).into()
                        }
                    })
                    .collect(),
            ),
        ));
    }

    Value::object(vec![
        (
            "schema_version",
            Value::Int(crate::scenario::SCHEMA_VERSION as i64),
        ),
        ("scenario", scenario.to_json()),
        ("points_total", points.len().into()),
        ("baseline_degree", base_degree.into()),
        ("points", Value::Array(points_json)),
        (
            "by_policy",
            table(&|p: &SweepPoint| p.policy.canonical().as_str().into()),
        ),
        ("by_degree", table(&|p: &SweepPoint| p.degree.into())),
        (
            "by_appranks_per_node",
            table(&|p: &SweepPoint| p.appranks_per_node.into()),
        ),
        ("per_policy_iteration_series", Value::Object(series)),
    ])
}
