//! The declarative sweep description and its strict, versioned schema.

use std::fmt;
use tlb_core::{BalanceConfig, Platform, PolicySpec, PortfolioConfig};
use tlb_des::SimTime;
use tlb_json::Value;

/// Version of the scenario JSON schema this build reads and writes.
/// Bumped whenever a field changes meaning; a mismatch is a parse error
/// rather than a silently different experiment.
pub const SCHEMA_VERSION: u64 = 1;

/// Which application a scenario runs (mirrors `tlb-run --app`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepApp {
    /// Configurable-imbalance synthetic benchmark.
    Synthetic,
    /// MicroPP-style FE workload.
    Micropp,
    /// Barnes–Hut n-body with ORB repartitioning.
    Nbody,
    /// Halo-exchange stencil.
    Stencil,
    /// AMR-style time-varying imbalance: the hot ranks move mid-run.
    Amr,
}

impl SweepApp {
    /// Canonical schema string.
    pub fn name(self) -> &'static str {
        match self {
            SweepApp::Synthetic => "synthetic",
            SweepApp::Micropp => "micropp",
            SweepApp::Nbody => "nbody",
            SweepApp::Stencil => "stencil",
            SweepApp::Amr => "amr",
        }
    }

    fn parse(s: &str) -> Result<Self, ScenarioError> {
        match s {
            "synthetic" => Ok(SweepApp::Synthetic),
            "micropp" => Ok(SweepApp::Micropp),
            "nbody" => Ok(SweepApp::Nbody),
            "stencil" => Ok(SweepApp::Stencil),
            "amr" => Ok(SweepApp::Amr),
            other => Err(ScenarioError(format!(
                "unknown app '{other}' (expected synthetic|micropp|nbody|stencil|amr)"
            ))),
        }
    }
}

/// Machine preset (mirrors `tlb-run --machine`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepMachine {
    /// 48-core MareNostrum-4 nodes with realistic overheads.
    Mn4,
    /// 16-core Nord3 nodes.
    Nord3,
    /// Idealised 16-core nodes with no runtime noise.
    Ideal,
}

impl SweepMachine {
    /// Canonical schema string.
    pub fn name(self) -> &'static str {
        match self {
            SweepMachine::Mn4 => "mn4",
            SweepMachine::Nord3 => "nord3",
            SweepMachine::Ideal => "ideal",
        }
    }

    fn parse(s: &str) -> Result<Self, ScenarioError> {
        match s {
            "mn4" => Ok(SweepMachine::Mn4),
            "nord3" => Ok(SweepMachine::Nord3),
            "ideal" => Ok(SweepMachine::Ideal),
            other => Err(ScenarioError(format!(
                "unknown machine '{other}' (expected mn4|nord3|ideal)"
            ))),
        }
    }
}

/// The varying dimensions of a sweep. The cartesian product expands in
/// this fixed nesting order: appranks-per-node, then degree, then
/// policy, then seed.
#[derive(Clone, Debug, PartialEq)]
pub struct Axes {
    /// Appranks per node values.
    pub appranks_per_node: Vec<usize>,
    /// Offloading degree values.
    pub degree: Vec<usize>,
    /// Balancing policy values, straight from the `tlb-core` policy
    /// registry (`name` or `name(k=v,...)` strings in the schema).
    pub policy: Vec<PolicySpec>,
    /// Seed values (drive both the expander and the workload).
    pub seed: Vec<u64>,
}

impl Default for Axes {
    fn default() -> Self {
        Axes {
            appranks_per_node: vec![1],
            degree: vec![1],
            policy: vec![PolicySpec::named("baseline").expect("baseline is registered")],
            seed: vec![1],
        }
    }
}

/// A declarative description of one sweep: everything `tlb-run` would
/// take on the command line, with the varying knobs as [`Axes`].
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Human-readable sweep name (cosmetic: not part of cache keys).
    pub name: String,
    /// Application to run.
    pub app: SweepApp,
    /// Machine preset.
    pub machine: SweepMachine,
    /// Node count.
    pub nodes: usize,
    /// Iterations per run.
    pub iterations: usize,
    /// Synthetic-benchmark imbalance target (ignored by other apps).
    pub imbalance: f64,
    /// Fault-injection spec (`tlb_cluster::FaultPlan::parse` syntax).
    pub faults: Option<String>,
    /// Seed for the fault plan's deterministic draws.
    pub fault_seed: u64,
    /// Solver-portfolio spec (`PortfolioConfig::parse` syntax); applied
    /// to the points whose policy uses the global solver.
    pub portfolio: Option<String>,
    /// Portfolio virtual-time budget override, in seconds.
    pub portfolio_budget: Option<f64>,
    /// The varying dimensions.
    pub axes: Axes,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: "sweep".into(),
            app: SweepApp::Synthetic,
            machine: SweepMachine::Mn4,
            nodes: 4,
            iterations: 6,
            imbalance: 2.0,
            faults: None,
            fault_seed: 1,
            portfolio: None,
            portfolio_budget: None,
            axes: Axes::default(),
        }
    }
}

/// One expanded grid point of a scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Position in the deterministic expansion order.
    pub index: usize,
    /// Appranks per node.
    pub appranks_per_node: usize,
    /// Offloading degree.
    pub degree: usize,
    /// Balancing policy.
    pub policy: PolicySpec,
    /// Expander/workload seed.
    pub seed: u64,
}

/// Scenario schema violations (unknown key, bad type, bad value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn bad(field: &str, what: &str) -> ScenarioError {
    ScenarioError(format!("field '{field}': {what}"))
}

fn as_usize(field: &str, v: &Value) -> Result<usize, ScenarioError> {
    v.as_usize()
        .ok_or_else(|| bad(field, "expected a non-negative integer"))
}

fn as_u64(field: &str, v: &Value) -> Result<u64, ScenarioError> {
    v.as_u64()
        .ok_or_else(|| bad(field, "expected a non-negative integer"))
}

fn as_f64(field: &str, v: &Value) -> Result<f64, ScenarioError> {
    v.as_f64().ok_or_else(|| bad(field, "expected a number"))
}

fn as_str<'v>(field: &str, v: &'v Value) -> Result<&'v str, ScenarioError> {
    v.as_str().ok_or_else(|| bad(field, "expected a string"))
}

fn as_list<'v>(field: &str, v: &'v Value) -> Result<&'v [Value], ScenarioError> {
    let items = v
        .as_array()
        .ok_or_else(|| bad(field, "expected an array"))?;
    if items.is_empty() {
        return Err(bad(field, "axis must not be empty"));
    }
    Ok(items)
}

impl Scenario {
    /// Parse a scenario from JSON text. Strict: `schema_version` must be
    /// present and current, and any unknown key anywhere in the document
    /// is an error.
    pub fn from_json_str(text: &str) -> Result<Self, ScenarioError> {
        let value =
            tlb_json::parse(text).map_err(|e| ScenarioError(format!("invalid JSON: {e}")))?;
        Scenario::from_json(&value)
    }

    /// Parse a scenario from an already-parsed JSON value (see
    /// [`Scenario::from_json_str`]).
    pub fn from_json(value: &Value) -> Result<Self, ScenarioError> {
        let pairs = value
            .as_object()
            .ok_or_else(|| ScenarioError("scenario must be a JSON object".into()))?;
        let mut sc = Scenario::default();
        let mut saw_version = false;
        let mut saw_name = false;
        let mut saw_app = false;
        for (key, v) in pairs {
            match key.as_str() {
                "schema_version" => {
                    let got = as_u64(key, v)?;
                    if got != SCHEMA_VERSION {
                        return Err(ScenarioError(format!(
                            "unsupported schema_version {got} (this build reads {SCHEMA_VERSION})"
                        )));
                    }
                    saw_version = true;
                }
                "name" => {
                    sc.name = as_str(key, v)?.to_string();
                    saw_name = true;
                }
                "app" => {
                    sc.app = SweepApp::parse(as_str(key, v)?)?;
                    saw_app = true;
                }
                "machine" => sc.machine = SweepMachine::parse(as_str(key, v)?)?,
                "nodes" => sc.nodes = as_usize(key, v)?,
                "iterations" => sc.iterations = as_usize(key, v)?,
                "imbalance" => sc.imbalance = as_f64(key, v)?,
                "faults" => {
                    sc.faults = match v {
                        Value::Null => None,
                        other => Some(as_str(key, other)?.to_string()),
                    }
                }
                "fault_seed" => sc.fault_seed = as_u64(key, v)?,
                "portfolio" => {
                    sc.portfolio = match v {
                        Value::Null => None,
                        other => Some(as_str(key, other)?.to_string()),
                    }
                }
                "portfolio_budget" => {
                    sc.portfolio_budget = match v {
                        Value::Null => None,
                        other => Some(as_f64(key, other)?),
                    }
                }
                "axes" => sc.axes = parse_axes(v)?,
                other => {
                    return Err(ScenarioError(format!(
                        "unknown key '{other}' (strict schema; known keys: schema_version, \
                         name, app, machine, nodes, iterations, imbalance, faults, fault_seed, \
                         portfolio, portfolio_budget, axes)"
                    )))
                }
            }
        }
        if !saw_version {
            return Err(ScenarioError(
                "missing required key 'schema_version'".into(),
            ));
        }
        if !saw_name {
            return Err(ScenarioError("missing required key 'name'".into()));
        }
        if !saw_app {
            return Err(ScenarioError("missing required key 'app'".into()));
        }
        sc.validate()?;
        Ok(sc)
    }

    /// Semantic validation beyond shape: positive counts, degrees within
    /// the node count, and parseable fault/portfolio specs.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.nodes == 0 || self.iterations == 0 {
            return Err(ScenarioError(
                "nodes and iterations must be positive".into(),
            ));
        }
        if !self.imbalance.is_finite() || self.imbalance < 1.0 {
            return Err(ScenarioError(format!(
                "imbalance must be a finite number >= 1.0, got {}",
                self.imbalance
            )));
        }
        for &apn in &self.axes.appranks_per_node {
            if apn == 0 {
                return Err(ScenarioError(
                    "appranks_per_node values must be positive".into(),
                ));
            }
        }
        for &d in &self.axes.degree {
            if d == 0 || d > self.nodes {
                return Err(ScenarioError(format!(
                    "degree {d} out of range 1..={} for {} nodes",
                    self.nodes, self.nodes
                )));
            }
        }
        if let Some(spec) = &self.faults {
            tlb_cluster::FaultPlan::parse(spec, self.fault_seed)
                .map_err(|e| ScenarioError(format!("faults: {e}")))?;
        }
        if let Some(spec) = &self.portfolio {
            PortfolioConfig::parse(spec).map_err(|e| ScenarioError(format!("portfolio: {e}")))?;
            if !self.axes.policy.iter().any(|p| p.uses_solver()) {
                return Err(ScenarioError(
                    "portfolio requires a solver-using policy ('lewi+drom-global') \
                     in the policy axis"
                        .into(),
                ));
            }
        }
        if let Some(budget) = self.portfolio_budget {
            if self.portfolio.is_none() {
                return Err(ScenarioError("portfolio_budget needs portfolio".into()));
            }
            if !budget.is_finite() || budget <= 0.0 {
                return Err(ScenarioError(format!(
                    "portfolio_budget must be a positive number of seconds, got {budget}"
                )));
            }
        }
        Ok(())
    }

    /// Serialize to the canonical JSON form. `from_json(to_json(sc))`
    /// returns an equal scenario, and the key order is fixed, so the
    /// output is byte-stable.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("schema_version", Value::Int(SCHEMA_VERSION as i64)),
            ("name", self.name.as_str().into()),
            ("app", self.app.name().into()),
            ("machine", self.machine.name().into()),
            ("nodes", self.nodes.into()),
            ("iterations", self.iterations.into()),
            ("imbalance", self.imbalance.into()),
        ];
        if let Some(f) = &self.faults {
            fields.push(("faults", f.as_str().into()));
            fields.push(("fault_seed", self.fault_seed.into()));
        }
        if let Some(p) = &self.portfolio {
            fields.push(("portfolio", p.as_str().into()));
        }
        if let Some(b) = self.portfolio_budget {
            fields.push(("portfolio_budget", b.into()));
        }
        fields.push((
            "axes",
            Value::object(vec![
                (
                    "appranks_per_node",
                    Value::Array(
                        self.axes
                            .appranks_per_node
                            .iter()
                            .map(|&v| v.into())
                            .collect(),
                    ),
                ),
                (
                    "degree",
                    Value::Array(self.axes.degree.iter().map(|&v| v.into()).collect()),
                ),
                (
                    "policy",
                    Value::Array(
                        self.axes
                            .policy
                            .iter()
                            .map(|p| p.canonical().as_str().into())
                            .collect(),
                    ),
                ),
                (
                    "seed",
                    Value::Array(self.axes.seed.iter().map(|&v| v.into()).collect()),
                ),
            ]),
        ));
        Value::object(fields)
    }

    /// Expand the axis product into the deterministic, dense run list.
    /// Nesting order (outer to inner): appranks-per-node, degree,
    /// policy, seed.
    pub fn expand(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(
            self.axes.appranks_per_node.len()
                * self.axes.degree.len()
                * self.axes.policy.len()
                * self.axes.seed.len(),
        );
        for &apn in &self.axes.appranks_per_node {
            for &degree in &self.axes.degree {
                for policy in &self.axes.policy {
                    for &seed in &self.axes.seed {
                        points.push(SweepPoint {
                            index: points.len(),
                            appranks_per_node: apn,
                            degree,
                            policy: policy.clone(),
                            seed,
                        });
                    }
                }
            }
        }
        points
    }

    /// Build the platform a point of this scenario runs on.
    pub fn platform(&self) -> Platform {
        match self.machine {
            SweepMachine::Mn4 => Platform::mn4(self.nodes),
            SweepMachine::Nord3 => Platform::nord3(self.nodes, &[]),
            SweepMachine::Ideal => Platform::homogeneous(self.nodes, 16),
        }
    }

    /// Build the balancing configuration for one point: the policy axis
    /// fixes (LeWI, DROM), the degree axis the offloading degree, and
    /// the seed axis the expander seed. The scenario's portfolio spec is
    /// attached to the points whose policy runs the global solver, with
    /// the racing pool forced inline so the only live threads during a
    /// sweep are the sweep workers themselves (results are bitwise
    /// independent of the portfolio pool size).
    pub fn config(&self, point: &SweepPoint) -> Result<BalanceConfig, ScenarioError> {
        let mut cfg = BalanceConfig::default()
            .with_policy(point.policy.clone())
            .with_degree(point.degree)
            .with_seed(point.seed);
        if point.policy.uses_solver() {
            if let Some(spec) = &self.portfolio {
                let mut pc = PortfolioConfig::parse(spec)
                    .map_err(|e| ScenarioError(format!("portfolio: {e}")))?
                    .with_pool_threads(0);
                if let Some(budget) = self.portfolio_budget {
                    pc = pc.with_budget(SimTime::from_secs_f64(budget));
                }
                cfg = cfg.with_portfolio(pc);
            }
        }
        Ok(cfg)
    }
}

fn parse_axes(value: &Value) -> Result<Axes, ScenarioError> {
    let pairs = value
        .as_object()
        .ok_or_else(|| bad("axes", "expected an object"))?;
    let mut axes = Axes::default();
    for (key, v) in pairs {
        match key.as_str() {
            "appranks_per_node" => {
                axes.appranks_per_node = as_list(key, v)?
                    .iter()
                    .map(|x| as_usize(key, x))
                    .collect::<Result<_, _>>()?
            }
            "degree" => {
                axes.degree = as_list(key, v)?
                    .iter()
                    .map(|x| as_usize(key, x))
                    .collect::<Result<_, _>>()?
            }
            "policy" => {
                axes.policy = as_list(key, v)?
                    .iter()
                    .map(|x| {
                        PolicySpec::parse(as_str(key, x)?)
                            .map_err(|e| ScenarioError(format!("field 'policy': {e}")))
                    })
                    .collect::<Result<_, _>>()?
            }
            "seed" => {
                axes.seed = as_list(key, v)?
                    .iter()
                    .map(|x| as_u64(key, x))
                    .collect::<Result<_, _>>()?
            }
            other => {
                return Err(ScenarioError(format!(
                    "unknown key 'axes.{other}' (known: appranks_per_node, degree, policy, seed)"
                )))
            }
        }
    }
    Ok(axes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let sc =
            Scenario::from_json_str(r#"{"schema_version": 1, "name": "t", "app": "synthetic"}"#)
                .unwrap();
        assert_eq!(sc.nodes, 4);
        assert_eq!(sc.axes, Axes::default());
        assert_eq!(sc.expand().len(), 1);
    }

    #[test]
    fn unknown_key_rejected() {
        let err = Scenario::from_json_str(
            r#"{"schema_version": 1, "name": "t", "app": "synthetic", "nodez": 8}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("unknown key 'nodez'"), "{err}");
        let err = Scenario::from_json_str(
            r#"{"schema_version": 1, "name": "t", "app": "synthetic",
                "axes": {"degrees": [1]}}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("axes.degrees"), "{err}");
    }

    #[test]
    fn wrong_schema_version_rejected() {
        let err = Scenario::from_json_str(r#"{"schema_version": 2, "name": "t", "app": "nbody"}"#)
            .unwrap_err();
        assert!(err.0.contains("schema_version"), "{err}");
        let err = Scenario::from_json_str(r#"{"name": "t", "app": "nbody"}"#).unwrap_err();
        assert!(err.0.contains("schema_version"), "{err}");
    }

    #[test]
    fn degree_beyond_nodes_rejected() {
        let err = Scenario::from_json_str(
            r#"{"schema_version": 1, "name": "t", "app": "synthetic", "nodes": 2,
                "axes": {"degree": [1, 4]}}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("degree 4"), "{err}");
    }

    #[test]
    fn portfolio_without_global_policy_rejected() {
        let err = Scenario::from_json_str(
            r#"{"schema_version": 1, "name": "t", "app": "synthetic",
                "portfolio": "all", "axes": {"policy": ["lewi"]}}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("lewi+drom-global"), "{err}");
    }

    #[test]
    fn expansion_order_is_documented_nesting() {
        let sc = Scenario::from_json_str(
            r#"{"schema_version": 1, "name": "t", "app": "synthetic",
                "axes": {"degree": [1, 2], "policy": ["baseline", "lewi"], "seed": [7, 8]}}"#,
        )
        .unwrap();
        let pts = sc.expand();
        assert_eq!(pts.len(), 8);
        let spot = |i: usize| (pts[i].degree, pts[i].policy.name(), pts[i].seed);
        assert_eq!(spot(0), (1, "baseline", 7));
        assert_eq!(spot(1), (1, "baseline", 8));
        assert_eq!(spot(2), (1, "lewi", 7));
        assert_eq!(spot(4), (2, "baseline", 7));
        assert!(pts.iter().enumerate().all(|(i, p)| p.index == i));
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let texts = [
            r#"{"schema_version": 1, "name": "t", "app": "synthetic"}"#,
            r#"{"schema_version": 1, "name": "paper", "app": "micropp", "machine": "nord3",
                "nodes": 8, "iterations": 10, "imbalance": 3.5,
                "faults": "straggler@0.1,node=0", "fault_seed": 9,
                "portfolio": "adaptive:simplex,flow", "portfolio_budget": 0.5,
                "axes": {"appranks_per_node": [1, 2], "degree": [1, 2, 4],
                         "policy": ["baseline", "lewi+drom-global"], "seed": [1, 2, 3]}}"#,
            r#"{"schema_version": 1, "name": "families", "app": "amr",
                "axes": {"policy": ["reactive-offload(hi=0.4,unit=2)",
                                    "diffusion(alpha=0.25,order=2)"]}}"#,
        ];
        for text in texts {
            let sc = Scenario::from_json_str(text).unwrap();
            let json = sc.to_json();
            let back = Scenario::from_json(&json).unwrap();
            assert_eq!(sc, back, "round trip changed the scenario for {text}");
            // Serialization itself is byte-stable.
            assert_eq!(json.to_string_compact(), back.to_json().to_string_compact());
        }
    }

    #[test]
    fn policy_axis_maps_to_knobs() {
        use tlb_core::DromPolicy;
        let sc = Scenario::from_json_str(
            r#"{"schema_version": 1, "name": "t", "app": "synthetic",
                "axes": {"policy": ["baseline", "lewi", "lewi+drom-local",
                                    "lewi+drom-global"], "degree": [2]}}"#,
        )
        .unwrap();
        let knobs: Vec<(bool, DromPolicy)> = sc
            .expand()
            .iter()
            .map(|p| {
                let cfg = sc.config(p).unwrap();
                (cfg.lewi, cfg.drom)
            })
            .collect();
        assert_eq!(
            knobs,
            vec![
                (false, DromPolicy::Off),
                (true, DromPolicy::Off),
                (true, DromPolicy::Local),
                (true, DromPolicy::Global),
            ]
        );
    }

    #[test]
    fn unknown_policy_error_lists_registry() {
        let err = Scenario::from_json_str(
            r#"{"schema_version": 1, "name": "t", "app": "synthetic",
                "axes": {"policy": ["gossip"]}}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("unknown policy 'gossip'"), "{err}");
        assert!(err.0.contains("reactive-offload"), "{err}");
        assert!(err.0.contains("diffusion"), "{err}");
        let err = Scenario::from_json_str(
            r#"{"schema_version": 1, "name": "t", "app": "synthetic",
                "axes": {"policy": ["diffusion(gamma=1)"]}}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("unknown parameter 'gamma'"), "{err}");
        assert!(err.0.contains("alpha"), "{err}");
    }
}
