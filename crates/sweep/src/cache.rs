//! Incremental result cache keyed by content hashes of sweep points.
//!
//! The key hashes the canonical JSON of everything that can change a
//! point's result: the engine version, the scenario's code-relevant
//! knobs (application, machine, sizes, faults, portfolio), and the
//! point's own axis values. The cosmetic scenario `name` is excluded,
//! so renaming a sweep keeps its cache warm, while editing any knob
//! changes every affected key and forces re-execution.
//!
//! The cache is safe for concurrent use from many threads (and many
//! processes sharing a directory, e.g. the `tlb-serve` daemon next to
//! an offline `tlb-run sweep`):
//!
//! * every entry stores the canonical key-input object it was hashed
//!   from, and [`Cache::load`] verifies it against the reader's own
//!   key input — an FNV collision or a stale/corrupt entry reads as a
//!   miss instead of deserializing garbage into the wrong point;
//! * writes go through a *uniquely named* temporary file (pid plus a
//!   process-wide sequence number) and an atomic rename, so parallel
//!   writers to the same key can never observe or publish a torn file
//!   — last rename wins, and both writers wrote the same bytes anyway.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tlb_json::Value;

use crate::scenario::{Scenario, SweepPoint};

/// Bumped whenever the simulator's observable behaviour changes, so
/// stale caches from older engine builds can never be replayed as
/// current results. Version 3: point keys carry the canonical policy
/// string (name *plus* parameters) instead of the bare policy name.
pub const ENGINE_VERSION: u64 = 3;

/// 64-bit FNV-1a over a byte string: tiny, dependency-free, and stable
/// across platforms — exactly what a content-addressed cache key needs
/// (collisions are harmless: the stored key input is verified on read,
/// so a colliding entry costs one re-run, never a wrong result).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The canonical key-input object of one scenario point: the compact
/// JSON of everything code-relevant. [`point_key`] hashes it, and the
/// cache stores it verbatim inside each entry so reads can verify the
/// entry really belongs to the requested point.
pub fn point_key_input(scenario: &Scenario, point: &SweepPoint) -> Value {
    let mut fields = vec![
        ("engine_version", ENGINE_VERSION.into()),
        ("app", scenario.app.name().into()),
        ("machine", scenario.machine.name().into()),
        ("nodes", scenario.nodes.into()),
        ("iterations", scenario.iterations.into()),
        ("imbalance", scenario.imbalance.into()),
        ("appranks_per_node", point.appranks_per_node.into()),
        ("degree", point.degree.into()),
        // The *canonical* policy string, never the bare name: two
        // parameterizations of one policy must never share a key, and
        // two spellings of one parameterization always must.
        ("policy", point.policy.canonical().as_str().into()),
        ("seed", point.seed.into()),
    ];
    if let Some(f) = &scenario.faults {
        fields.push(("faults", f.as_str().into()));
        fields.push(("fault_seed", scenario.fault_seed.into()));
    }
    if let Some(p) = &scenario.portfolio {
        fields.push(("portfolio", p.as_str().into()));
        if let Some(b) = scenario.portfolio_budget {
            fields.push(("portfolio_budget", b.into()));
        }
    }
    Value::object(fields)
}

/// The cache key of one scenario point: FNV-1a over the canonical
/// compact JSON of the code-relevant configuration.
pub fn point_key(scenario: &Scenario, point: &SweepPoint) -> u64 {
    fnv1a64(
        point_key_input(scenario, point)
            .to_string_compact()
            .as_bytes(),
    )
}

/// Process-wide tmp-file sequence so concurrent writers (threads of the
/// serve daemon, sweep pool workers) never share a temporary name.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of per-point result files, named by their hex cache key.
///
/// Entries are JSON objects `{"key_input": ..., "record": ...}`; the
/// `key_input` is verified on load (see the module docs).
#[derive(Clone, Debug)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Open (creating if needed, parents included) a cache directory.
    pub fn open(dir: &Path) -> io::Result<Cache> {
        std::fs::create_dir_all(dir)?;
        Ok(Cache {
            dir: dir.to_path_buf(),
        })
    }

    /// The file a key lives in.
    pub fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Fetch a cached point result, verifying that the entry's stored
    /// key input matches `key_input`. Any unreadable, unparseable,
    /// truncated, or mismatching entry (FNV collision, stale engine)
    /// reads as a miss, so corruption costs one re-run, not an error —
    /// and never a silently wrong record.
    pub fn load(&self, key: u64, key_input: &Value) -> Option<Value> {
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        let entry = tlb_json::parse(&text).ok()?;
        if entry.get("key_input") != key_input {
            return None;
        }
        match entry.get("record") {
            Value::Null => None,
            record => Some(record.clone()),
        }
    }

    /// Store a point result together with its key input. Written via a
    /// uniquely named temporary file and an atomic rename, so a crash
    /// mid-write cannot leave a truncated entry behind and concurrent
    /// writers to the same key cannot publish each other's partial
    /// bytes.
    pub fn store(&self, key: u64, key_input: &Value, value: &Value) -> io::Result<()> {
        let path = self.path_of(key);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{key:016x}.{}.{}.tmp", std::process::id(), seq));
        let entry = Value::object(vec![
            ("key_input", key_input.clone()),
            ("record", value.clone()),
        ]);
        std::fs::write(&tmp, entry.to_string_pretty())?;
        std::fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_core::PolicySpec;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    fn point(sc: &Scenario) -> SweepPoint {
        sc.expand().into_iter().next().unwrap()
    }

    #[test]
    fn key_ignores_name_but_sees_knobs() {
        let sc = Scenario::default();
        let mut renamed = sc.clone();
        renamed.name = "other".into();
        assert_eq!(
            point_key(&sc, &point(&sc)),
            point_key(&renamed, &point(&renamed))
        );

        let mut more_iters = sc.clone();
        more_iters.iterations += 1;
        assert_ne!(
            point_key(&sc, &point(&sc)),
            point_key(&more_iters, &point(&more_iters))
        );

        let mut faulty = sc.clone();
        faulty.faults = Some("delay@0.1".into());
        assert_ne!(
            point_key(&sc, &point(&sc)),
            point_key(&faulty, &point(&faulty))
        );
    }

    #[test]
    fn key_separates_points() {
        let mut sc = Scenario::default();
        sc.axes.policy = vec![
            PolicySpec::named("baseline").unwrap(),
            PolicySpec::named("lewi").unwrap(),
        ];
        sc.axes.seed = vec![1, 2];
        let pts = sc.expand();
        let mut keys: Vec<u64> = pts.iter().map(|p| point_key(&sc, p)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), pts.len(), "colliding point keys");
    }

    #[test]
    fn key_sees_policy_parameters() {
        // Two parameterizations of one policy must never collide, and
        // two spellings of one parameterization must always agree.
        let mut sc = Scenario::default();
        sc.axes.policy = vec![PolicySpec::parse("reactive-offload").unwrap()];
        let base = point_key(&sc, &point(&sc));
        let mut tuned = sc.clone();
        tuned.axes.policy = vec![PolicySpec::parse("reactive-offload(hi=0.4)").unwrap()];
        assert_ne!(base, point_key(&tuned, &point(&tuned)));
        let mut spelled = sc.clone();
        spelled.axes.policy =
            vec![PolicySpec::parse("reactive-offload(hi=0.25, lo=0.1, unit=1)").unwrap()];
        assert_eq!(base, point_key(&spelled, &point(&spelled)));
    }

    fn temp_cache(tag: &str) -> (PathBuf, Cache) {
        let dir =
            std::env::temp_dir().join(format!("tlb_sweep_cache_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::open(&dir).unwrap();
        (dir, cache)
    }

    #[test]
    fn cache_round_trips_and_survives_garbage() {
        let (dir, cache) = temp_cache("roundtrip");
        let sc = Scenario::default();
        let input = point_key_input(&sc, &point(&sc));
        let value = Value::object(vec![("makespan_s", 1.25.into())]);
        assert!(cache.load(7, &input).is_none());
        cache.store(7, &input, &value).unwrap();
        assert_eq!(cache.load(7, &input).unwrap(), value);
        std::fs::write(cache.path_of(8), "{ not json").unwrap();
        assert!(cache.load(8, &input).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatching_key_input_reads_as_miss() {
        let (dir, cache) = temp_cache("collision");
        let sc = Scenario::default();
        let mut other = sc.clone();
        other.iterations += 1;
        let input = point_key_input(&sc, &point(&sc));
        let other_input = point_key_input(&other, &point(&other));
        let value = Value::object(vec![("makespan_s", 2.0.into())]);
        // Simulate an FNV collision: the entry under this key belongs
        // to a different point. The reader must reject it.
        cache.store(9, &other_input, &value).unwrap();
        assert!(cache.load(9, &input).is_none(), "collision served");
        assert_eq!(cache.load(9, &other_input).unwrap(), value);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_legacy_entries_read_as_miss() {
        let (dir, cache) = temp_cache("truncated");
        let sc = Scenario::default();
        let input = point_key_input(&sc, &point(&sc));
        let value = Value::object(vec![("makespan_s", 3.0.into())]);
        cache.store(4, &input, &value).unwrap();
        // Truncate the entry mid-file: parse fails, read is a miss.
        let full = std::fs::read_to_string(cache.path_of(4)).unwrap();
        std::fs::write(cache.path_of(4), &full[..full.len() / 2]).unwrap();
        assert!(cache.load(4, &input).is_none(), "torn entry served");
        // A legacy bare-record entry (no key_input wrapper) is a miss.
        std::fs::write(cache.path_of(5), value.to_string_pretty()).unwrap();
        assert!(cache.load(5, &input).is_none(), "legacy entry served");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_writers_to_same_key_never_tear() {
        let (dir, cache) = temp_cache("parallel");
        let sc = Scenario::default();
        let input = point_key_input(&sc, &point(&sc));
        let value = Value::object(vec![("makespan_s", 0.5.into())]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = cache.clone();
                let input = &input;
                let value = &value;
                s.spawn(move || {
                    for _ in 0..50 {
                        cache.store(11, input, value).unwrap();
                        // Readers racing the writers must always see a
                        // complete entry or (never here) a miss — a torn
                        // file would surface as a parse failure miss, but
                        // the rename is atomic so every read hits.
                        assert_eq!(cache.load(11, input).as_ref(), Some(value));
                    }
                });
            }
        });
        // No temporary files leak.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leaked tmp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
