//! Incremental result cache keyed by content hashes of sweep points.
//!
//! The key hashes the canonical JSON of everything that can change a
//! point's result: the engine version, the scenario's code-relevant
//! knobs (application, machine, sizes, faults, portfolio), and the
//! point's own axis values. The cosmetic scenario `name` is excluded,
//! so renaming a sweep keeps its cache warm, while editing any knob
//! changes every affected key and forces re-execution.

use std::io;
use std::path::{Path, PathBuf};

use tlb_json::Value;

use crate::scenario::{Scenario, SweepPoint};

/// Bumped whenever the simulator's observable behaviour changes, so
/// stale caches from older engine builds can never be replayed as
/// current results.
pub const ENGINE_VERSION: u64 = 1;

/// 64-bit FNV-1a over a byte string: tiny, dependency-free, and stable
/// across platforms — exactly what a content-addressed cache key needs
/// (collisions are harmless beyond a spurious re-run guard: the cached
/// payload is full JSON, not a pointer).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The cache key of one scenario point: FNV-1a over the canonical
/// compact JSON of the code-relevant configuration.
pub fn point_key(scenario: &Scenario, point: &SweepPoint) -> u64 {
    let mut fields = vec![
        ("engine_version", ENGINE_VERSION.into()),
        ("app", scenario.app.name().into()),
        ("machine", scenario.machine.name().into()),
        ("nodes", scenario.nodes.into()),
        ("iterations", scenario.iterations.into()),
        ("imbalance", scenario.imbalance.into()),
        ("appranks_per_node", point.appranks_per_node.into()),
        ("degree", point.degree.into()),
        ("policy", point.policy.name().into()),
        ("seed", point.seed.into()),
    ];
    if let Some(f) = &scenario.faults {
        fields.push(("faults", f.as_str().into()));
        fields.push(("fault_seed", scenario.fault_seed.into()));
    }
    if let Some(p) = &scenario.portfolio {
        fields.push(("portfolio", p.as_str().into()));
        if let Some(b) = scenario.portfolio_budget {
            fields.push(("portfolio_budget", b.into()));
        }
    }
    fnv1a64(Value::object(fields).to_string_compact().as_bytes())
}

/// A directory of per-point result files, named by their hex cache key.
#[derive(Clone, Debug)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: &Path) -> io::Result<Cache> {
        std::fs::create_dir_all(dir)?;
        Ok(Cache {
            dir: dir.to_path_buf(),
        })
    }

    /// The file a key lives in.
    pub fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Fetch a cached point result. Any unreadable or unparseable entry
    /// reads as a miss, so a corrupt file costs one re-run, not an error.
    pub fn load(&self, key: u64) -> Option<Value> {
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        tlb_json::parse(&text).ok()
    }

    /// Store a point result. Written via a temporary file and rename so
    /// a crash mid-write cannot leave a truncated entry behind.
    pub fn store(&self, key: u64, value: &Value) -> io::Result<()> {
        let path = self.path_of(key);
        let tmp = self.dir.join(format!("{key:016x}.json.tmp"));
        std::fs::write(&tmp, value.to_string_pretty())?;
        std::fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PolicyAxis;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    fn point(sc: &Scenario) -> SweepPoint {
        sc.expand()[0]
    }

    #[test]
    fn key_ignores_name_but_sees_knobs() {
        let sc = Scenario::default();
        let mut renamed = sc.clone();
        renamed.name = "other".into();
        assert_eq!(
            point_key(&sc, &point(&sc)),
            point_key(&renamed, &point(&renamed))
        );

        let mut more_iters = sc.clone();
        more_iters.iterations += 1;
        assert_ne!(
            point_key(&sc, &point(&sc)),
            point_key(&more_iters, &point(&more_iters))
        );

        let mut faulty = sc.clone();
        faulty.faults = Some("delay@0.1".into());
        assert_ne!(
            point_key(&sc, &point(&sc)),
            point_key(&faulty, &point(&faulty))
        );
    }

    #[test]
    fn key_separates_points() {
        let mut sc = Scenario::default();
        sc.axes.policy = vec![PolicyAxis::Baseline, PolicyAxis::Lewi];
        sc.axes.seed = vec![1, 2];
        let pts = sc.expand();
        let mut keys: Vec<u64> = pts.iter().map(|p| point_key(&sc, p)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), pts.len(), "colliding point keys");
    }

    #[test]
    fn cache_round_trips_and_survives_garbage() {
        let dir = std::env::temp_dir().join(format!("tlb_sweep_cache_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::open(&dir).unwrap();
        let value = Value::object(vec![("makespan_s", 1.25.into())]);
        assert!(cache.load(7).is_none());
        cache.store(7, &value).unwrap();
        assert_eq!(cache.load(7).unwrap(), value);
        std::fs::write(cache.path_of(8), "{ not json").unwrap();
        assert!(cache.load(8).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
