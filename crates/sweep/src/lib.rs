//! Batch execution engine for the paper's parameter studies.
//!
//! The experiments behind Figs. 5–11 are all *sweeps*: the same
//! application re-run over a grid of appranks, offloading degrees,
//! balancing policies, and seeds. This crate makes that grid a value:
//!
//! * [`Scenario`] — a declarative description of one sweep (application,
//!   platform, fixed knobs, and the axes to vary), serialized through
//!   `tlb-json` under a versioned, *strict* schema: unknown keys are
//!   rejected at parse time so a typo cannot silently run the wrong
//!   experiment.
//! * [`Scenario::expand`] — the deterministic cartesian product of the
//!   axes, in a fixed nesting order, so point *N* means the same
//!   configuration on every machine and at every `--jobs` level.
//! * [`run_sweep`] — shards the points across a `tlb-smprt` work-stealing
//!   pool (one simulation per slot; each simulation is the ordinary
//!   single-threaded DES), then aggregates sequentially in point order.
//!   The sweep report is **bitwise identical** across 1/2/4/8 pool
//!   threads because nothing about the parallel schedule feeds into the
//!   output.
//! * [`Cache`] / [`point_key`] — an incremental result cache keyed by an
//!   FNV-1a content hash of the scenario point plus every code-relevant
//!   knob. Re-running a sweep with `resume` skips every point whose
//!   result is already on disk; editing any knob changes the key and
//!   forces re-execution.
//!
//! ```
//! use tlb_sweep::{run_sweep, Scenario, SweepOptions};
//!
//! let sc = Scenario::from_json_str(
//!     r#"{"schema_version": 1, "name": "demo", "app": "synthetic",
//!         "nodes": 2, "iterations": 2,
//!         "axes": {"degree": [1, 2], "policy": ["baseline", "lewi+drom-global"]}}"#,
//! )
//! .unwrap();
//! assert_eq!(sc.expand().len(), 4);
//! let out = run_sweep(&sc, &SweepOptions::default()).unwrap();
//! assert_eq!(out.stats.executed, 4);
//! ```

mod cache;
mod engine;
mod scenario;

pub use cache::{fnv1a64, point_key, point_key_input, Cache, ENGINE_VERSION};
pub use engine::{
    aggregate, run_point, run_sweep, SweepError, SweepOptions, SweepOutcome, SweepStats,
};
pub use scenario::{
    Axes, Scenario, ScenarioError, SweepApp, SweepMachine, SweepPoint, SCHEMA_VERSION,
};
