//! The sweep engine's headline guarantees: the report is bitwise
//! identical across pool sizes, cache keys are schedule-independent,
//! and a resumed sweep executes nothing.

use std::path::PathBuf;
use tlb_sweep::{run_sweep, Scenario, SweepOptions};

fn scenario() -> Scenario {
    Scenario::from_json_str(
        r#"{
            "schema_version": 1,
            "name": "determinism",
            "app": "synthetic",
            "machine": "ideal",
            "nodes": 2,
            "iterations": 3,
            "imbalance": 2.0,
            "axes": {
                "degree": [1, 2],
                "policy": ["baseline", "lewi", "lewi+drom-local", "lewi+drom-global"],
                "seed": [1, 2]
            }
        }"#,
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlb_sweep_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn jobs_1_and_jobs_8_are_bitwise_identical() {
    let sc = scenario();
    let dir1 = temp_dir("jobs1");
    let dir8 = temp_dir("jobs8");
    let serial = run_sweep(
        &sc,
        &SweepOptions {
            jobs: 1,
            resume: false,
            cache_dir: Some(dir1.clone()),
        },
    )
    .unwrap();
    let parallel = run_sweep(
        &sc,
        &SweepOptions {
            jobs: 8,
            resume: false,
            cache_dir: Some(dir8.clone()),
        },
    )
    .unwrap();
    assert_eq!(serial.stats.points_total, 16);
    assert_eq!(serial.stats.executed, 16);
    assert_eq!(parallel.stats.executed, 16);
    // The whole report, byte for byte — not just summary statistics.
    assert_eq!(
        serial.report.to_string_pretty(),
        parallel.report.to_string_pretty()
    );
    // Cache identity is schedule-independent too.
    assert_eq!(serial.keys, parallel.keys);
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir8);
}

#[test]
fn resume_executes_nothing_and_reproduces_the_report() {
    let sc = scenario();
    let dir = temp_dir("resume");
    let fresh = run_sweep(
        &sc,
        &SweepOptions {
            jobs: 4,
            resume: false,
            cache_dir: Some(dir.clone()),
        },
    )
    .unwrap();
    assert_eq!(fresh.stats.executed, 16);
    assert_eq!(fresh.stats.cache_hits, 0);

    let resumed = run_sweep(
        &sc,
        &SweepOptions {
            jobs: 4,
            resume: true,
            cache_dir: Some(dir.clone()),
        },
    )
    .unwrap();
    assert_eq!(resumed.stats.executed, 0, "resume must skip every sim");
    assert_eq!(resumed.stats.cache_hits, 16);
    assert_eq!(
        fresh.report.to_string_pretty(),
        resumed.report.to_string_pretty(),
        "cached and fresh reports must be byte-identical"
    );

    // Invalidate one entry: exactly one point re-executes.
    std::fs::remove_file(dir.join(format!("{:016x}.json", resumed.keys[5]))).unwrap();
    let partial = run_sweep(
        &sc,
        &SweepOptions {
            jobs: 4,
            resume: true,
            cache_dir: Some(dir.clone()),
        },
    )
    .unwrap();
    assert_eq!(partial.stats.executed, 1);
    assert_eq!(partial.stats.cache_hits, 15);
    assert_eq!(
        fresh.report.to_string_pretty(),
        partial.report.to_string_pretty()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn without_resume_the_cache_is_write_only() {
    let sc = scenario();
    let dir = temp_dir("norerun");
    for _ in 0..2 {
        let out = run_sweep(
            &sc,
            &SweepOptions {
                jobs: 2,
                resume: false,
                cache_dir: Some(dir.clone()),
            },
        )
        .unwrap();
        assert_eq!(
            out.stats.executed, 16,
            "no --resume means full re-execution"
        );
        assert_eq!(out.stats.cache_hits, 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregates_see_policy_improvements() {
    let sc = scenario();
    let out = run_sweep(&sc, &SweepOptions::default()).unwrap();
    let by_policy = out.report.get("by_policy").as_array().unwrap();
    assert_eq!(by_policy.len(), 4);
    // The baseline group's speedup over itself is exactly 1 at degree 1;
    // averaged with its degree-2 points it stays close to 1.
    let baseline = &by_policy[0];
    assert_eq!(baseline.get("key").as_str().unwrap(), "baseline");
    // Every non-baseline policy group must beat baseline on mean makespan
    // for this imbalanced workload.
    let base_mean = baseline.get("mean_makespan_s").as_f64().unwrap();
    for group in &by_policy[1..] {
        let mean = group.get("mean_makespan_s").as_f64().unwrap();
        assert!(
            mean < base_mean,
            "policy {} mean {mean} not better than baseline {base_mean}",
            group.get("key").as_str().unwrap_or("?")
        );
    }
    // Speedup of the degree-1 baseline points is exactly 1.
    for p in out.report.get("points").as_array().unwrap() {
        if p.get("policy").as_str() == Some("baseline") && p.get("degree").as_usize() == Some(1) {
            assert_eq!(p.get("speedup_vs_baseline").as_f64(), Some(1.0));
        }
    }
}
