//! Randomized tests for the core allocation program: bounds and invariants
//! that must hold for any instance. Seeded `tlb-rng` loops stand in for
//! proptest (no registry deps).

use tlb_linprog::{solve_flow, solve_lp, AllocationProblem};
use tlb_rng::Rng;

fn ring_adjacency(appranks: usize, nodes: usize, degree: usize) -> Vec<Vec<usize>> {
    let per = appranks / nodes;
    (0..appranks)
        .map(|a| {
            let home = a / per;
            let mut adj = vec![home];
            let mut extra: Vec<usize> = (1..degree).map(|s| (home + s) % nodes).collect();
            extra.sort_unstable();
            extra.dedup();
            adj.extend(extra.into_iter().filter(|&n| n != home));
            adj
        })
        .collect()
}

fn instance(rng: &mut Rng) -> AllocationProblem {
    let nodes = rng.range_usize(2, 8);
    let per = rng.range_usize(1, 3);
    let degree = rng.range_usize(1, 4).min(nodes);
    let cores = rng.range_usize(4, 24).max(per * degree + 1);
    let appranks = nodes * per;
    let work: Vec<f64> = (0..appranks).map(|_| rng.range_f64(0.0, 40.0)).collect();
    AllocationProblem::new(work, ring_adjacency(appranks, nodes, degree), cores, nodes)
}

const CASES: usize = 128;

/// The LP optimum respects its analytic lower bounds, and the integer
/// cores form a valid DROM state.
#[test]
fn lp_bounds_and_valid_cores() {
    let root = Rng::seed_from_u64(0x11b_0001);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let p = instance(&mut rng);
        let sol = solve_lp(&p).unwrap();
        let total_work: f64 = p.work.iter().sum();
        let total_cores: f64 = p.node_cores.iter().sum::<usize>() as f64;
        // Bound 1: machine-wide mean load.
        assert!(
            sol.objective >= total_work / total_cores - 1e-6,
            "case {case}"
        );
        // Bound 2: each apprank against everything it can reach.
        for (a, adj) in p.adjacency.iter().enumerate() {
            let reach: f64 = adj.iter().map(|&n| p.node_cores[n] as f64).sum();
            assert!(
                sol.objective >= p.work[a] / reach - 1e-6,
                "case {case} apprank {a}: objective {} below reach bound {}",
                sol.objective,
                p.work[a] / reach
            );
        }
        // Integer cores: node sums exact, every worker ≥ 1.
        let mut per_node = vec![0usize; p.nodes()];
        for w in sol.workers(&p) {
            assert!(w.cores >= 1, "case {case}");
            per_node[w.node] += w.cores;
        }
        assert_eq!(per_node, p.node_cores.clone(), "case {case}");
        // Work shares conserve each apprank's work.
        for (a, shares) in sol.work_share.iter().enumerate() {
            let s: f64 = shares.iter().sum();
            assert!(
                (s - p.work[a]).abs() < 1e-6 * p.work[a].max(1.0),
                "case {case} apprank {a}"
            );
        }
    }
}

/// The flow solver is a relaxation: never above the floor-aware LP.
#[test]
fn flow_lower_bounds_lp() {
    let root = Rng::seed_from_u64(0x11b_0002);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let p = instance(&mut rng);
        let lp = solve_lp(&p).unwrap();
        let fl = solve_flow(&p, 1e-7).unwrap();
        assert!(
            fl.objective <= lp.objective * (1.0 + 1e-4) + 1e-9,
            "case {case}: flow {} above lp {}",
            fl.objective,
            lp.objective
        );
    }
}

/// Scaling all work by a constant scales the objective linearly and
/// leaves the (integer) allocation essentially unchanged.
#[test]
fn objective_is_homogeneous() {
    let root = Rng::seed_from_u64(0x11b_0003);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let p = instance(&mut rng);
        let scale = rng.range_f64(0.5, 4.0);
        let base = solve_lp(&p).unwrap();
        let mut scaled = p.clone();
        for w in scaled.work.iter_mut() {
            *w *= scale;
        }
        let s = solve_lp(&scaled).unwrap();
        if base.objective > 1e-9 {
            assert!(
                (s.objective / base.objective - scale).abs() < 1e-4 * scale,
                "case {case}: scaled objective {} vs base {} * {scale}",
                s.objective,
                base.objective
            );
        }
    }
}

/// Adding work to one apprank never lowers the optimum (monotonicity).
#[test]
fn objective_is_monotone() {
    let root = Rng::seed_from_u64(0x11b_0004);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let p = instance(&mut rng);
        let extra = rng.range_f64(0.1, 20.0);
        let base = solve_lp(&p).unwrap();
        let mut more = p.clone();
        let a = rng.range_usize(0, more.work.len());
        more.work[a] += extra;
        let s = solve_lp(&more).unwrap();
        assert!(s.objective >= base.objective - 1e-6, "case {case}");
    }
}
