//! Property tests for the core allocation program: bounds and invariants
//! that must hold for any instance.

use proptest::prelude::*;
use tlb_linprog::{solve_flow, solve_lp, AllocationProblem};

fn ring_adjacency(appranks: usize, nodes: usize, degree: usize) -> Vec<Vec<usize>> {
    let per = appranks / nodes;
    (0..appranks)
        .map(|a| {
            let home = a / per;
            let mut adj = vec![home];
            let mut extra: Vec<usize> = (1..degree).map(|s| (home + s) % nodes).collect();
            extra.sort_unstable();
            extra.dedup();
            adj.extend(extra.into_iter().filter(|&n| n != home));
            adj
        })
        .collect()
}

fn instances() -> impl Strategy<Value = AllocationProblem> {
    (2usize..8, 1usize..3, 1usize..4, 4usize..24, any::<u64>()).prop_map(
        |(nodes, per, degree, cores, seed)| {
            let appranks = nodes * per;
            let degree = degree.min(nodes);
            let cores = cores.max(per * degree + 1);
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let work: Vec<f64> = (0..appranks).map(|_| next() * 40.0).collect();
            AllocationProblem::new(work, ring_adjacency(appranks, nodes, degree), cores, nodes)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The LP optimum respects its analytic lower bounds, and the integer
    /// cores form a valid DROM state.
    #[test]
    fn lp_bounds_and_valid_cores(p in instances()) {
        let sol = solve_lp(&p).unwrap();
        let total_work: f64 = p.work.iter().sum();
        let total_cores: f64 = p.node_cores.iter().sum::<usize>() as f64;
        // Bound 1: machine-wide mean load.
        prop_assert!(sol.objective >= total_work / total_cores - 1e-6);
        // Bound 2: each apprank against everything it can reach.
        for (a, adj) in p.adjacency.iter().enumerate() {
            let reach: f64 = adj.iter().map(|&n| p.node_cores[n] as f64).sum();
            prop_assert!(
                sol.objective >= p.work[a] / reach - 1e-6,
                "apprank {a}: objective {} below reach bound {}",
                sol.objective,
                p.work[a] / reach
            );
        }
        // Integer cores: node sums exact, every worker ≥ 1.
        let mut per_node = vec![0usize; p.nodes()];
        for w in sol.workers(&p) {
            prop_assert!(w.cores >= 1);
            per_node[w.node] += w.cores;
        }
        prop_assert_eq!(per_node, p.node_cores.clone());
        // Work shares conserve each apprank's work.
        for (a, shares) in sol.work_share.iter().enumerate() {
            let s: f64 = shares.iter().sum();
            prop_assert!((s - p.work[a]).abs() < 1e-6 * p.work[a].max(1.0));
        }
    }

    /// The flow solver is a relaxation: never above the floor-aware LP.
    #[test]
    fn flow_lower_bounds_lp(p in instances()) {
        let lp = solve_lp(&p).unwrap();
        let fl = solve_flow(&p, 1e-7).unwrap();
        prop_assert!(
            fl.objective <= lp.objective * (1.0 + 1e-4) + 1e-9,
            "flow {} above lp {}",
            fl.objective,
            lp.objective
        );
    }

    /// Scaling all work by a constant scales the objective linearly and
    /// leaves the (integer) allocation essentially unchanged.
    #[test]
    fn objective_is_homogeneous(p in instances(), scale in 0.5f64..4.0) {
        let base = solve_lp(&p).unwrap();
        let mut scaled = p.clone();
        for w in scaled.work.iter_mut() {
            *w *= scale;
        }
        let s = solve_lp(&scaled).unwrap();
        if base.objective > 1e-9 {
            prop_assert!(
                (s.objective / base.objective - scale).abs() < 1e-4 * scale,
                "scaled objective {} vs base {} * {scale}",
                s.objective,
                base.objective
            );
        }
    }

    /// Adding work to one apprank never lowers the optimum (monotonicity).
    #[test]
    fn objective_is_monotone(p in instances(), extra in 0.1f64..20.0, idx in any::<prop::sample::Index>()) {
        let base = solve_lp(&p).unwrap();
        let mut more = p.clone();
        let a = idx.index(more.work.len());
        more.work[a] += extra;
        let s = solve_lp(&more).unwrap();
        prop_assert!(s.objective >= base.objective - 1e-6);
    }
}
