//! Differential test: the simplex LP and the parametric max-flow solver
//! answer the *same* min-max question and must agree on the optimum.
//!
//! Two knobs make exact agreement meaningful:
//!
//! * `keep_local_incentive = 0.0` — the δ tiebreak perturbs the LP's
//!   reported objective away from the pure min-max value, so it is
//!   switched off.
//! * instances keep the `x ≥ 1` DLB floors slack (plenty of cores per
//!   node, narrowly spread work), because the flow solver is a
//!   floor-free relaxation: where floors bind the LP is legitimately
//!   above the flow bound and the two are *not* comparable at 1e-9.
//!
//! On a mismatch the instance is shrunk — work entries zeroed, helper
//! edges dropped — while the disagreement persists, and the minimal
//! failing instance is reported.

use tlb_linprog::{solve_flow, solve_lp, AllocationProblem};
use tlb_rng::Rng;

/// Bisection tolerance for the flow solver: tight enough that its
/// truncation error is far below the agreement threshold.
const FLOW_TOL: f64 = 1e-12;

/// Agreement demanded between the two solvers. The flow solver's
/// feasibility check carries an internal ~1e-9 *relative* slack, so the
/// instances keep objectives at O(10⁻²) — the slack is then ~1e-11 and
/// 1e-9 is a strict absolute bound.
const AGREE: f64 = 1e-9;

fn ring_adjacency(appranks: usize, nodes: usize, degree: usize) -> Vec<Vec<usize>> {
    let per = appranks / nodes;
    (0..appranks)
        .map(|a| {
            let home = a / per;
            let mut adj = vec![home];
            let mut extra: Vec<usize> = (1..degree).map(|s| (home + s) % nodes).collect();
            extra.sort_unstable();
            extra.dedup();
            adj.extend(extra.into_iter().filter(|&n| n != home));
            adj
        })
        .collect()
}

/// A floors-slack instance: 32 cores per node dwarf the ≤ 8 floor cores,
/// and work within a ±10 % band keeps every worker's continuous optimum
/// well above one core (the continuous allocation is scale-invariant in
/// the work, so the small magnitudes only shrink the objective, not the
/// shape).
fn slack_instance(rng: &mut Rng) -> AllocationProblem {
    let nodes = rng.range_usize(2, 7);
    let per = rng.range_usize(1, 3);
    let degree = rng.range_usize(2, 5).min(nodes);
    let appranks = nodes * per;
    let work: Vec<f64> = (0..appranks).map(|_| rng.range_f64(0.5, 0.6)).collect();
    let mut p = AllocationProblem::new(work, ring_adjacency(appranks, nodes, degree), 32, nodes);
    for s in p.node_speed.iter_mut() {
        *s = rng.range_f64(0.8, 1.2);
    }
    p.keep_local_incentive = 0.0;
    p
}

/// Both solvers' objectives on `p`, or `None` if either errors (the
/// shrinker can produce degenerate instances; those are not mismatches).
fn objectives(p: &AllocationProblem) -> Option<(f64, f64)> {
    let lp = solve_lp(p).ok()?;
    let fl = solve_flow(p, FLOW_TOL).ok()?;
    Some((lp.objective, fl.objective))
}

fn disagrees(p: &AllocationProblem) -> bool {
    match objectives(p) {
        Some((lp, fl)) => (lp - fl).abs() > AGREE,
        None => false,
    }
}

/// Shrink a failing instance: repeatedly zero one work entry or drop one
/// helper edge, keeping any reduction that preserves the disagreement,
/// until no single reduction does.
fn shrink(mut p: AllocationProblem) -> AllocationProblem {
    loop {
        let mut reduced = false;
        for a in 0..p.work.len() {
            if p.work[a] == 0.0 {
                continue;
            }
            let mut cand = p.clone();
            cand.work[a] = 0.0;
            if disagrees(&cand) {
                p = cand;
                reduced = true;
            }
        }
        for a in 0..p.adjacency.len() {
            if p.adjacency[a].len() <= 1 {
                continue;
            }
            let mut cand = p.clone();
            cand.adjacency[a].pop();
            if disagrees(&cand) {
                p = cand;
                reduced = true;
            }
        }
        if !reduced {
            return p;
        }
    }
}

#[test]
fn simplex_and_maxflow_agree_on_floors_slack_instances() {
    let root = Rng::seed_from_u64(0x11b_d1ff);
    for case in 0..128 {
        let mut rng = root.split_u64(case as u64);
        let p = slack_instance(&mut rng);
        let (lp, fl) = objectives(&p).expect("slack instances are solvable");
        if (lp - fl).abs() > AGREE {
            let min = shrink(p);
            let (mlp, mfl) = objectives(&min).unwrap();
            panic!(
                "case {case}: simplex {lp} vs max-flow {fl} \
                 (|Δ| = {:.3e} > {AGREE:.0e})\n\
                 minimal failing instance: {min:#?}\n\
                 minimal objectives: simplex {mlp} vs max-flow {mfl}",
                (lp - fl).abs()
            );
        }
    }
}

#[test]
fn agreement_holds_with_zero_and_single_hot_work() {
    // Edge shapes the random band misses: all-zero work (both solvers
    // define the optimum as 0) and one hot apprank on a fully connected
    // graph (bottleneck is the whole machine).
    let mut zero = AllocationProblem::new(vec![0.0; 4], ring_adjacency(4, 2, 2), 16, 2);
    zero.keep_local_incentive = 0.0;
    let (lp, fl) = objectives(&zero).unwrap();
    assert_eq!(lp, 0.0);
    assert_eq!(fl, 0.0);

    // One hot apprank carrying 10× its neighbour on a fully connected
    // graph: the bottleneck is the whole machine. The light rank keeps
    // enough work that its floor cores are useful, not binding (a truly
    // idle rank's forced floor cores consume capacity the relaxation
    // would hand to the hot rank — there the solvers legitimately
    // diverge).
    let mut hot = AllocationProblem::new(vec![2.0, 0.2], ring_adjacency(2, 2, 2), 32, 2);
    hot.keep_local_incentive = 0.0;
    let (lp, fl) = objectives(&hot).unwrap();
    assert!(
        (lp - fl).abs() <= AGREE,
        "hot instance: simplex {lp} vs max-flow {fl}"
    );
}
