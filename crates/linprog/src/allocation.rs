//! The global core-allocation program (paper §5.4.2) and its two solvers.
//!
//! Minimise `max_a (total work on apprank a) / (total cores on a)` subject
//! to per-node capacity, the expander adjacency, and ≥ 1 core per worker.
//! The paper formulates this for CVXOPT; we use the equivalent *work-split*
//! LP: variables `w[a][k]` give the work of apprank `a` executed on its
//! `k`-th adjacent node, and `t` bounds every node's load-per-core:
//!
//! ```text
//!   min  t + δ · Σ offloaded w            (δ tiny: prefer-local tiebreak)
//!   s.t. Σ_k w[a][k] = work_a                       (all work placed)
//!        Σ_a pen(a,n) · w[a][n] ≤ t · cores_n · speed_n    (node load)
//!        w ≥ 0
//! ```
//!
//! `pen(a,n) = 1 + 1e-6` for offloaded work — the paper's keep-local
//! incentive; the explicit δ term additionally selects, among the many
//! optimal bases, the one that *minimises task offloading* (paper Fig. 5b).
//!
//! The same program is solved by parametric bisection on `t`, where each
//! feasibility test is a max-flow problem. Both solvers agree to within the
//! bisection tolerance; `benches/solver_scaling` compares their cost.

#![allow(clippy::needless_range_loop)] // index loops touch several arrays at once
use crate::maxflow::FlowNetwork;
use crate::simplex::{LinearProgram, LpError, Relation};

/// An instance of the core allocation program.
#[derive(Clone, Debug)]
pub struct AllocationProblem {
    /// Estimated work per apprank (busy-core·seconds over the measurement
    /// window). Non-negative.
    pub work: Vec<f64>,
    /// `adjacency[a]` = nodes where apprank `a` has a worker; element 0 is
    /// the home node (the expander graph rows).
    pub adjacency: Vec<Vec<usize>>,
    /// Physical cores per node.
    pub node_cores: Vec<usize>,
    /// Relative speed per node (1.0 = nominal; 0.6 models the 1.8 GHz
    /// Nord3 nodes against 3.0 GHz peers).
    pub node_speed: Vec<f64>,
    /// The keep-local work penalty; the paper uses `1e-6`.
    pub keep_local_incentive: f64,
}

impl AllocationProblem {
    /// A problem over homogeneous nodes at speed 1.0.
    pub fn new(
        work: Vec<f64>,
        adjacency: Vec<Vec<usize>>,
        cores_per_node: usize,
        nodes: usize,
    ) -> Self {
        AllocationProblem {
            work,
            adjacency,
            node_cores: vec![cores_per_node; nodes],
            node_speed: vec![1.0; nodes],
            keep_local_incentive: 1e-6,
        }
    }

    /// Number of appranks.
    pub fn appranks(&self) -> usize {
        self.work.len()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.node_cores.len()
    }

    /// Workers (apprank, adjacency slot) hosted on each node.
    fn workers_per_node(&self) -> Vec<usize> {
        let mut count = vec![0usize; self.nodes()];
        for adj in &self.adjacency {
            for &n in adj {
                count[n] += 1;
            }
        }
        count
    }

    /// Validate shape and feasibility of the ≥1-core-per-worker rule.
    pub fn validate(&self) -> Result<(), LpError> {
        assert_eq!(
            self.work.len(),
            self.adjacency.len(),
            "work/adjacency length mismatch"
        );
        assert_eq!(
            self.node_cores.len(),
            self.node_speed.len(),
            "cores/speed length mismatch"
        );
        for (a, adj) in self.adjacency.iter().enumerate() {
            assert!(!adj.is_empty(), "apprank {a} has no nodes");
            for &n in adj {
                assert!(n < self.nodes(), "apprank {a} adjacent to bogus node {n}");
            }
        }
        assert!(self.work.iter().all(|w| *w >= 0.0), "negative work");
        for (n, &workers) in self.workers_per_node().iter().enumerate() {
            if workers > self.node_cores[n] {
                // More worker processes than cores: the DLB minimum of one
                // owned core each cannot be honoured.
                return Err(LpError::Infeasible);
            }
        }
        Ok(())
    }
}

/// One worker's integer core ownership.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerAllocation {
    /// The apprank the worker belongs to.
    pub apprank: usize,
    /// The node it runs on.
    pub node: usize,
    /// Cores it owns after rounding.
    pub cores: usize,
}

/// Solution of the allocation program.
#[derive(Clone, Debug)]
pub struct AllocationSolution {
    /// Optimal `max_a work_a / cores_a` bound (continuous relaxation).
    pub objective: f64,
    /// `work_share[a][k]` = work of apprank `a` placed on `adjacency[a][k]`.
    pub work_share: Vec<Vec<f64>>,
    /// `cores[a][k]` = integer cores owned by apprank `a`'s worker on
    /// `adjacency[a][k]`; every worker owns ≥ 1 and node sums equal the
    /// node capacities.
    pub cores: Vec<Vec<usize>>,
    /// Simplex pivot count that produced this solution (0 for the flow
    /// solver and the degenerate no-work paths) — surfaced in traces to
    /// ground the §5.4.2 solver-cost model in observed effort.
    pub iterations: usize,
}

impl AllocationSolution {
    /// Total work each node would execute under the continuous split.
    pub fn node_load(&self, problem: &AllocationProblem) -> Vec<f64> {
        let mut load = vec![0.0; problem.nodes()];
        for (a, shares) in self.work_share.iter().enumerate() {
            for (k, &w) in shares.iter().enumerate() {
                load[problem.adjacency[a][k]] += w;
            }
        }
        load
    }

    /// Total offloaded (non-home) work in the continuous split.
    pub fn offloaded_work(&self) -> f64 {
        self.work_share
            .iter()
            .map(|s| s[1..].iter().sum::<f64>())
            .sum()
    }

    /// Flatten to per-worker allocations.
    pub fn workers(&self, problem: &AllocationProblem) -> Vec<WorkerAllocation> {
        let mut out = Vec::new();
        for (a, cores) in self.cores.iter().enumerate() {
            for (k, &c) in cores.iter().enumerate() {
                out.push(WorkerAllocation {
                    apprank: a,
                    node: problem.adjacency[a][k],
                    cores: c,
                });
            }
        }
        out
    }
}

/// Solve via the paper's LP (simplex): core counts are the variables.
///
/// Formulation (§5.4.2): with measured work `W_a` constant, minimising
/// `max_a W_a / cores_a` equals maximising `z = 1/t` in
///
/// ```text
///   max  z + δ·Σ home x                     (δ tiny: prefer-local)
///   s.t. Σ_k speed(n(a,k)) · x[a][k] ≥ z · W_a          (per apprank)
///        Σ_{workers on n} x = cores_n                     (per node)
///        x[a][k] ≥ 1                                  (DLB minimum)
/// ```
///
/// The `x ≥ 1` floor is part of the LP (substituted as `x = 1 + x'`,
/// `x' ≥ 0`), so the optimum already accounts for every helper's reserved
/// core — the property that keeps hot appranks from being skimmed by
/// post-hoc rounding. The keep-local incentive counts home cores as
/// marginally more valuable, which minimises task offloading among the
/// many optimal allocations (paper Fig. 5b).
pub fn solve_lp(problem: &AllocationProblem) -> Result<AllocationSolution, LpError> {
    problem.validate()?;
    if problem.work.iter().sum::<f64>() <= 0.0 {
        // No work anywhere: z would be unbounded. Split capacity evenly.
        let x_cont: Vec<Vec<f64>> = problem
            .adjacency
            .iter()
            .map(|adj| vec![1.0; adj.len()])
            .collect();
        let work_share = problem
            .adjacency
            .iter()
            .map(|adj| vec![0.0; adj.len()])
            .collect();
        let mut even = x_cont.clone();
        let workers = problem.workers_per_node();
        for (a, adj) in problem.adjacency.iter().enumerate() {
            for (k, &n) in adj.iter().enumerate() {
                even[a][k] = problem.node_cores[n] as f64 / workers[n] as f64;
            }
        }
        let cores = integerize_cores(problem, &even);
        return Ok(AllocationSolution {
            objective: 0.0,
            work_share,
            cores,
            iterations: 0,
        });
    }
    let appranks = problem.appranks();
    // Variable layout: x' edges first (in adjacency order), then z.
    let mut edge_of = Vec::with_capacity(appranks); // edge_of[a][k] = var index
    let mut next = 0usize;
    for adj in &problem.adjacency {
        let row: Vec<usize> = (next..next + adj.len()).collect();
        next += adj.len();
        edge_of.push(row);
    }
    let z_var = next;
    let mut lp = LinearProgram::new(next + 1);

    let total_cores: f64 = problem.node_cores.iter().sum::<usize>() as f64;
    // Maximise z; among optima prefer home cores (minimise offloading).
    let delta = problem.keep_local_incentive / (total_cores + 1.0);
    lp.set_objective(z_var, -1.0);
    for (a, adj) in problem.adjacency.iter().enumerate() {
        for k in 1..adj.len() {
            lp.set_objective(edge_of[a][k], delta);
        }
    }
    // Per apprank: effective cores ≥ z · W_a, i.e.
    //   Σ_k speed·(1 + x'[a][k]) - z·W_a ≥ 0.
    for (a, adj) in problem.adjacency.iter().enumerate() {
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(adj.len() + 1);
        let mut base = 0.0;
        for (k, &n) in adj.iter().enumerate() {
            let speed = problem.node_speed[n];
            coeffs.push((edge_of[a][k], speed));
            base += speed; // the floor core of each worker
        }
        coeffs.push((z_var, -problem.work[a]));
        lp.add_constraint(coeffs, Relation::Ge, -base);
    }
    // Per node: Σ x' = cores_n - workers_n (full ownership).
    let workers = problem.workers_per_node();
    for n in 0..problem.nodes() {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for (a, adj) in problem.adjacency.iter().enumerate() {
            for (k, &node) in adj.iter().enumerate() {
                if node == n {
                    coeffs.push((edge_of[a][k], 1.0));
                }
            }
        }
        if coeffs.is_empty() {
            continue;
        }
        lp.add_constraint(
            coeffs,
            Relation::Eq,
            (problem.node_cores[n] - workers[n]) as f64,
        );
    }
    let sol = lp.solve()?;
    let z = sol.x[z_var];
    // Continuous core targets (floor added back).
    let x_cont: Vec<Vec<f64>> = edge_of
        .iter()
        .map(|row| row.iter().map(|&v| 1.0 + sol.x[v].max(0.0)).collect())
        .collect();
    // Implied work split for reporting: W_a spread over workers in
    // proportion to their effective (speed-scaled) cores.
    let work_share: Vec<Vec<f64>> = problem
        .adjacency
        .iter()
        .enumerate()
        .map(|(a, adj)| {
            let eff: Vec<f64> = adj
                .iter()
                .zip(&x_cont[a])
                .map(|(&n, &x)| x * problem.node_speed[n])
                .collect();
            let total: f64 = eff.iter().sum();
            eff.iter()
                .map(|e| {
                    if total > 0.0 {
                        problem.work[a] * e / total
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let cores = integerize_cores(problem, &x_cont);
    let objective = if z > 1e-12 {
        1.0 / z
    } else {
        // No work anywhere: the load bound is zero.
        0.0
    };
    Ok(AllocationSolution {
        objective,
        work_share,
        cores,
        iterations: sol.iterations,
    })
}

/// Largest-remainder integerisation of continuous per-worker core targets,
/// preserving the ≥ 1 floor and exact node sums.
pub fn integerize_cores(problem: &AllocationProblem, x_cont: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let nodes = problem.nodes();
    let mut cores: Vec<Vec<usize>> = problem
        .adjacency
        .iter()
        .map(|adj| vec![0usize; adj.len()])
        .collect();
    let mut by_node: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes];
    for (a, adj) in problem.adjacency.iter().enumerate() {
        for (k, &n) in adj.iter().enumerate() {
            by_node[n].push((a, k));
        }
    }
    for n in 0..nodes {
        let workers = &by_node[n];
        if workers.is_empty() {
            continue;
        }
        let cap = problem.node_cores[n];
        let mut assigned = 0usize;
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(workers.len());
        for (i, &(a, k)) in workers.iter().enumerate() {
            let want = x_cont[a][k].max(1.0);
            let whole = (want.floor() as usize).max(1).min(cap);
            cores[a][k] = whole;
            assigned += whole;
            remainders.push((want - whole as f64, i));
        }
        remainders.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap().then(x.1.cmp(&y.1)));
        // Hand out any deficit; reclaim any excess from the smallest
        // remainders (never below the one-core floor).
        let mut idx = 0;
        while assigned < cap {
            let (a, k) = workers[remainders[idx % remainders.len()].1];
            cores[a][k] += 1;
            assigned += 1;
            idx += 1;
        }
        let mut idx = remainders.len();
        while assigned > cap {
            idx = if idx == 0 {
                remainders.len() - 1
            } else {
                idx - 1
            };
            let (a, k) = workers[remainders[idx].1];
            if cores[a][k] > 1 {
                cores[a][k] -= 1;
                assigned -= 1;
            }
        }
        debug_assert_eq!(
            workers.iter().map(|&(a, k)| cores[a][k]).sum::<usize>(),
            cap,
            "node {n} core sum mismatch"
        );
    }
    cores
}

/// Solve via bisection on `t` with a max-flow feasibility oracle.
///
/// `tol` is the relative bisection tolerance on `t` (e.g. `1e-6`).
pub fn solve_flow(problem: &AllocationProblem, tol: f64) -> Result<AllocationSolution, LpError> {
    problem.validate()?;
    let appranks = problem.appranks();
    let nodes = problem.nodes();
    let total_work: f64 = problem.work.iter().sum();

    if total_work <= 0.0 {
        // No work: keep everything home with an even trivial split.
        let work_share: Vec<Vec<f64>> = problem
            .adjacency
            .iter()
            .map(|adj| vec![0.0; adj.len()])
            .collect();
        let cores = round_cores(problem, &work_share);
        return Ok(AllocationSolution {
            objective: 0.0,
            work_share,
            cores,
            iterations: 0,
        });
    }

    // Vertices: 0 = source, 1..=A appranks, A+1..=A+N nodes, last = sink.
    let source = 0;
    let sink = 1 + appranks + nodes;
    let apprank_v = |a: usize| 1 + a;
    let node_v = |n: usize| 1 + appranks + n;

    let min_eff_cap = (0..nodes)
        .map(|n| problem.node_cores[n] as f64 * problem.node_speed[n])
        .fold(f64::INFINITY, f64::min);
    let mut lo = 0.0f64;
    let mut hi = total_work / min_eff_cap.max(1e-12) + 1.0;

    let feasible = |t: f64| -> Option<FlowNetwork> {
        let mut net = FlowNetwork::new(sink + 1);
        for a in 0..appranks {
            net.add_edge(source, apprank_v(a), problem.work[a]);
        }
        for (a, adj) in problem.adjacency.iter().enumerate() {
            for &n in adj {
                net.add_edge(apprank_v(a), node_v(n), f64::INFINITY);
            }
        }
        for n in 0..nodes {
            let cap = t * problem.node_cores[n] as f64 * problem.node_speed[n];
            net.add_edge(node_v(n), sink, cap);
        }
        let flow = net.max_flow(source, sink);
        (flow >= total_work * (1.0 - 1e-9) - 1e-9).then_some(net)
    };

    if feasible(hi).is_none() {
        return Err(LpError::Infeasible);
    }
    let mut best_net = None;
    for _ in 0..100 {
        if (hi - lo) <= tol * hi {
            break;
        }
        let mid = 0.5 * (lo + hi);
        match feasible(mid) {
            Some(net) => {
                hi = mid;
                best_net = Some(net);
            }
            None => lo = mid,
        }
    }
    let net = match best_net {
        Some(n) => n,
        None => feasible(hi).ok_or(LpError::Infeasible)?,
    };

    // Recover work shares from edge flows. Edge handles were added in
    // order: A source edges, then the adjacency edges in order.
    let mut work_share: Vec<Vec<f64>> = Vec::with_capacity(appranks);
    let mut handle = appranks; // skip source edges
    for adj in &problem.adjacency {
        let mut row = Vec::with_capacity(adj.len());
        for _ in adj {
            row.push(net.flow_on(handle));
            handle += 1;
        }
        work_share.push(row);
    }
    // Flow does not know the keep-local preference; fold offloaded work
    // back home wherever home has slack at the achieved bound `hi`.
    let mut node_load = vec![0.0; nodes];
    for (a, adj) in problem.adjacency.iter().enumerate() {
        for (k, &n) in adj.iter().enumerate() {
            node_load[n] += work_share[a][k];
        }
    }
    for (a, adj) in problem.adjacency.iter().enumerate() {
        let home = adj[0];
        let cap = hi * problem.node_cores[home] as f64 * problem.node_speed[home];
        for k in 1..adj.len() {
            let slack = (cap - node_load[home]).max(0.0);
            if slack <= 0.0 {
                break;
            }
            let pull = work_share[a][k].min(slack);
            if pull > 0.0 {
                work_share[a][k] -= pull;
                work_share[a][0] += pull;
                node_load[home] += pull;
                node_load[adj[k]] -= pull;
            }
        }
    }

    let cores = round_cores(problem, &work_share);
    Ok(AllocationSolution {
        objective: hi,
        work_share,
        cores,
        iterations: 0,
    })
}

/// Round a continuous work split to integer core ownership.
///
/// Per node: every hosted worker gets 1 core (the DLB minimum), and the
/// remaining cores are distributed proportionally to the workers' work
/// shares by the largest-remainder method. Deterministic: remainder ties
/// break towards the lower (apprank, slot) pair.
pub fn round_cores(problem: &AllocationProblem, work_share: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let nodes = problem.nodes();
    let mut cores: Vec<Vec<usize>> = problem
        .adjacency
        .iter()
        .map(|adj| vec![0usize; adj.len()])
        .collect();

    // Index workers by node.
    let mut by_node: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes]; // (apprank, slot)
    for (a, adj) in problem.adjacency.iter().enumerate() {
        for (k, &n) in adj.iter().enumerate() {
            by_node[n].push((a, k));
        }
    }

    for n in 0..nodes {
        let workers = &by_node[n];
        if workers.is_empty() {
            continue;
        }
        let cap = problem.node_cores[n];
        assert!(
            cap >= workers.len(),
            "node {n}: {} workers exceed {cap} cores",
            workers.len()
        );
        let total: f64 = workers.iter().map(|&(a, k)| work_share[a][k]).sum();
        // Continuous targets proportional to work over the FULL capacity,
        // then lift every worker to the one-core DLB minimum by
        // waterfilling: fix the sub-minimum workers at exactly 1 core and
        // re-share the remaining capacity among the rest. (A naive
        // "1 + proportional-over-spare" scheme would skim
        // `workers/capacity` off the busiest worker — with 8 workers on a
        // 48-core node that is a 17% under-allocation of the hot rank.)
        let mut want: Vec<f64> = if total > 0.0 {
            workers
                .iter()
                .map(|&(a, k)| work_share[a][k] / total * cap as f64)
                .collect()
        } else {
            vec![cap as f64 / workers.len() as f64; workers.len()]
        };
        let mut fixed = vec![false; workers.len()];
        loop {
            let mut changed = false;
            for (i, w) in want.iter_mut().enumerate() {
                if !fixed[i] && *w < 1.0 {
                    *w = 1.0;
                    fixed[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            let reserved: f64 = fixed.iter().filter(|&&f| f).count() as f64;
            let free_cap = cap as f64 - reserved;
            let free_share: f64 = workers
                .iter()
                .enumerate()
                .filter(|(i, _)| !fixed[*i])
                .map(|(_, &(a, k))| work_share[a][k])
                .sum();
            if free_share <= 0.0 {
                break;
            }
            for (i, &(a, k)) in workers.iter().enumerate() {
                if !fixed[i] {
                    want[i] = work_share[a][k] / free_share * free_cap;
                }
            }
        }
        // Largest-remainder rounding of the continuous targets, keeping
        // every worker at ≥ 1 core and the node sum exact.
        let mut assigned = 0usize;
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(workers.len());
        for (i, &(a, k)) in workers.iter().enumerate() {
            let whole = (want[i].floor() as usize).max(1);
            cores[a][k] = whole;
            assigned += whole;
            remainders.push((want[i] - whole as f64, i));
        }
        remainders.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap().then(x.1.cmp(&y.1)));
        let mut left = cap - assigned;
        for &(_, i) in &remainders {
            if left == 0 {
                break;
            }
            let (a, k) = workers[i];
            cores[a][k] += 1;
            left -= 1;
        }
        debug_assert_eq!(
            workers.iter().map(|&(a, k)| cores[a][k]).sum::<usize>(),
            cap,
            "node {n} core sum mismatch"
        );
    }
    cores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_adjacency(appranks: usize, nodes: usize, degree: usize) -> Vec<Vec<usize>> {
        let per = appranks / nodes;
        (0..appranks)
            .map(|a| {
                let home = a / per;
                let mut adj = vec![home];
                let mut extra: Vec<usize> = (1..degree).map(|s| (home + s) % nodes).collect();
                extra.sort_unstable();
                adj.extend(extra);
                adj
            })
            .collect()
    }

    #[test]
    fn degenerate_zero_work_and_single_node_adjacency() {
        // Regression: appranks with zero measured work and an apprank
        // confined to a single node (adjacency of length 1) must still
        // yield a valid allocation — every worker keeps its one-core
        // floor and every node's cores are fully assigned.
        let p = AllocationProblem {
            work: vec![0.0, 0.0, 4.0],
            adjacency: vec![vec![0, 1], vec![1], vec![2, 0]],
            node_cores: vec![4, 4, 4],
            node_speed: vec![1.0; 3],
            keep_local_incentive: 1e-6,
        };
        for s in [solve_lp(&p).unwrap(), solve_flow(&p, 1e-6).unwrap()] {
            let mut node_total = vec![0usize; 3];
            for (a, row) in s.cores.iter().enumerate() {
                assert_eq!(row.len(), p.adjacency[a].len());
                for (k, &c) in row.iter().enumerate() {
                    assert!(c >= 1, "apprank {a} slot {k} below the DLB floor");
                    node_total[p.adjacency[a][k]] += c;
                }
            }
            assert_eq!(node_total, vec![4, 4, 4]);
        }
    }

    #[test]
    fn balanced_load_stays_home() {
        let p = AllocationProblem::new(vec![10.0, 10.0], ring_adjacency(2, 2, 2), 4, 2);
        let s = solve_lp(&p).unwrap();
        // Helpers stay at the one-core DLB floor; homes take the rest.
        assert_eq!(s.cores, vec![vec![3, 1], vec![3, 1]]);
        assert!((s.objective - 10.0 / 4.0).abs() < 1e-4);
        // The only "offloaded" work is what the mandatory floor cores
        // would execute (one of each rank's four effective cores).
        assert!(s.offloaded_work() <= 2.0 * 2.5 + 1e-6);
    }

    #[test]
    fn imbalanced_load_spreads() {
        // Apprank 0 has 3x the work; with full connectivity the optimum is
        // an even node load: t = 16 / 8 = 2.
        let p = AllocationProblem::new(vec![12.0, 4.0], ring_adjacency(2, 2, 2), 4, 2);
        let s = solve_lp(&p).unwrap();
        assert!(
            (s.objective - 2.0).abs() < 1e-4,
            "objective {}",
            s.objective
        );
        let load = s.node_load(&p);
        assert!((load[0] - 8.0).abs() < 1e-3 && (load[1] - 8.0).abs() < 1e-3);
        // The hot apprank owns three times the cores of the light one.
        let c0: usize = s.cores[0].iter().sum();
        let c1: usize = s.cores[1].iter().sum();
        assert_eq!((c0, c1), (6, 2), "cores {:?}", s.cores);
    }

    #[test]
    fn adjacency_constrains_spreading() {
        // 4 nodes, degree 1 (no offloading): apprank 0's hot node cannot
        // shed work, t = its own ratio.
        let adj = vec![vec![0], vec![1], vec![2], vec![3]];
        let p = AllocationProblem::new(vec![40.0, 1.0, 1.0, 1.0], adj, 4, 4);
        let s = solve_lp(&p).unwrap();
        assert!((s.objective - 10.0).abs() < 1e-3);
    }

    #[test]
    fn slow_node_gets_less_work() {
        let mut p = AllocationProblem::new(vec![6.0, 6.0], ring_adjacency(2, 2, 2), 4, 2);
        p.node_speed = vec![1.0, 0.5]; // node 1 half speed
        let s = solve_lp(&p).unwrap();
        let load = s.node_load(&p);
        // Effective capacities 4 and 2 → loads 8 and 4, t = 2.
        assert!(
            (s.objective - 2.0).abs() < 1e-3,
            "objective {}",
            s.objective
        );
        assert!((load[0] - 8.0).abs() < 1e-2, "load {load:?}");
    }

    #[test]
    fn infeasible_when_workers_exceed_cores() {
        // 4 workers per node but only 2 cores.
        let p = AllocationProblem::new(vec![1.0; 4], ring_adjacency(4, 2, 2), 2, 2);
        assert_eq!(solve_lp(&p).unwrap_err(), LpError::Infeasible);
        assert_eq!(solve_flow(&p, 1e-6).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn flow_matches_lp_objective_when_floors_slack() {
        // With plenty of cores per node and a moderate imbalance the
        // one-core floors do not bind, and the floor-aware LP equals the
        // flow relaxation. (The hot rank must need fewer cores than its
        // adjacent nodes can give after reserving the floors.)
        let p =
            AllocationProblem::new(vec![20.0, 12.0, 12.0, 16.0], ring_adjacency(4, 4, 2), 16, 4);
        let lp = solve_lp(&p).unwrap();
        let fl = solve_flow(&p, 1e-7).unwrap();
        assert!(
            (lp.objective - fl.objective).abs() < 1e-4 * lp.objective.max(1.0),
            "lp {} vs flow {}",
            lp.objective,
            fl.objective
        );
    }

    #[test]
    fn lp_exceeds_flow_when_floors_bind() {
        // Small nodes: the helper floors steal capacity the hot rank
        // needs, so the floor-aware optimum is strictly worse than the
        // flow relaxation (which ignores ownership floors).
        let p = AllocationProblem::new(vec![30.0, 10.0, 5.0, 15.0], ring_adjacency(4, 4, 2), 8, 4);
        let lp = solve_lp(&p).unwrap();
        let fl = solve_flow(&p, 1e-7).unwrap();
        assert!(
            fl.objective < lp.objective,
            "flow {} vs lp {}",
            fl.objective,
            lp.objective
        );
        // Hot rank capped at 14 cores (7 + 7 after floors): t = 30/14.
        assert!(
            (lp.objective - 30.0 / 14.0).abs() < 1e-3,
            "lp {}",
            lp.objective
        );
    }

    #[test]
    fn flow_zero_work_is_graceful() {
        let p = AllocationProblem::new(vec![0.0, 0.0], ring_adjacency(2, 2, 2), 4, 2);
        let s = solve_flow(&p, 1e-6).unwrap();
        assert_eq!(s.objective, 0.0);
        // Cores still fully owned: 4 per node.
        let mut per_node = vec![0usize; 2];
        for w in s.workers(&p) {
            per_node[w.node] += w.cores;
            assert!(w.cores >= 1);
        }
        assert_eq!(per_node, vec![4, 4]);
    }

    #[test]
    fn rounding_conserves_cores_and_minimum() {
        let p = AllocationProblem::new(vec![100.0, 1.0, 1.0, 1.0], ring_adjacency(4, 4, 3), 48, 4);
        let s = solve_lp(&p).unwrap();
        let mut per_node = vec![0usize; 4];
        for w in s.workers(&p) {
            assert!(w.cores >= 1, "worker below DLB minimum");
            per_node[w.node] += w.cores;
        }
        assert_eq!(per_node, vec![48; 4]);
    }

    #[test]
    fn hot_apprank_gets_most_cores() {
        let p = AllocationProblem::new(vec![100.0, 1.0], ring_adjacency(2, 2, 2), 48, 2);
        let s = solve_lp(&p).unwrap();
        // Apprank 0's home worker should own nearly all of node 0.
        assert!(s.cores[0][0] > 40, "home cores {:?}", s.cores[0]);
        // And its helper on node 1 should own most of node 1 too.
        assert!(s.cores[0][1] > 40, "helper cores {:?}", s.cores[0]);
    }

    #[test]
    fn keep_local_tiebreak_prefers_home() {
        // Perfectly balanced 4-apprank case with degree 3: unlimited
        // optimal splits exist; the tiebreak must keep every helper at
        // the mandatory one-core floor and give homes the rest.
        let p = AllocationProblem::new(vec![8.0; 4], ring_adjacency(4, 4, 3), 8, 4);
        let s = solve_lp(&p).unwrap();
        for (a, cores) in s.cores.iter().enumerate() {
            for (k, &c) in cores.iter().enumerate().skip(1) {
                assert_eq!(c, 1, "apprank {a} helper {k} above floor: {:?}", s.cores);
            }
            assert_eq!(cores[0], 6, "apprank {a} home cores: {:?}", s.cores);
        }
    }

    #[test]
    fn random_instances_lp_flow_agree() {
        let mut rng = tlb_rng::Rng::seed_from_u64(1234);
        for case in 0..40 {
            let nodes = rng.range_usize(2, 7);
            let per = rng.range_usize(1, 3);
            let appranks = nodes * per;
            let degree = rng.range_usize(1, nodes.min(3) + 1);
            let cores = rng.range_usize((per * degree).max(2), 16);
            let work: Vec<f64> = (0..appranks).map(|_| rng.range_f64(0.0, 50.0)).collect();
            let p =
                AllocationProblem::new(work, ring_adjacency(appranks, nodes, degree), cores, nodes);
            let lp = solve_lp(&p).unwrap();
            let fl = solve_flow(&p, 1e-7).unwrap();
            // Flow ignores the ownership floors, so it is a relaxation:
            // never worse than the floor-aware LP.
            assert!(
                fl.objective <= lp.objective + 1e-3 * lp.objective.max(1e-6),
                "case {case}: flow {} above lp {}",
                fl.objective,
                lp.objective
            );
            // And the LP's integer cores are always a valid ownership.
            let mut per_node = vec![0usize; p.nodes()];
            for w in lp.workers(&p) {
                assert!(w.cores >= 1, "case {case}: worker below floor");
                per_node[w.node] += w.cores;
            }
            assert_eq!(per_node, p.node_cores, "case {case}: node sums");
        }
    }
}
