//! Dinic's maximum-flow algorithm on floating-point capacities.
//!
//! Used by the parametric solver for the core allocation program: for a
//! candidate objective value `t`, feasibility is a transportation problem —
//! `source → apprank (cap work_a) → adjacent nodes (cap ∞) → sink
//! (cap t · node_capacity)` — which is feasible iff the max flow saturates
//! all source edges.

const EPS: f64 = 1e-9;

#[derive(Clone, Debug)]
struct Edge {
    to: usize,
    cap: f64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A flow network over vertices `0..n`.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
    /// (from, index) handles for querying flow on added edges.
    handles: Vec<(usize, usize)>,
}

impl FlowNetwork {
    /// A network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
            handles: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.graph.len()
    }

    /// Add a directed edge with the given capacity; returns a handle usable
    /// with [`FlowNetwork::flow_on`] after `max_flow`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or negative capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) -> usize {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "edge endpoint out of range"
        );
        assert!(cap >= 0.0, "negative capacity");
        let rev_from = self.graph[to].len() + usize::from(from == to);
        let idx = self.graph[from].len();
        self.graph[from].push(Edge {
            to,
            cap,
            rev: rev_from,
        });
        self.graph[to].push(Edge {
            to: from,
            cap: 0.0,
            rev: idx,
        });
        self.handles.push((from, idx));
        self.handles.len() - 1
    }

    /// Flow routed through edge `handle` after a `max_flow` run.
    pub fn flow_on(&self, handle: usize) -> f64 {
        let (from, idx) = self.handles[handle];
        let e = &self.graph[from][idx];
        // Residual on the reverse edge equals the flow pushed forward.
        self.graph[e.to][e.rev].cap
    }

    /// Compute the maximum flow from `source` to `sink` (Dinic).
    pub fn max_flow(&mut self, source: usize, sink: usize) -> f64 {
        assert_ne!(source, sink, "source equals sink");
        let n = self.graph.len();
        let mut total = 0.0;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        loop {
            // BFS level graph.
            level.iter_mut().for_each(|l| *l = -1);
            level[source] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            while let Some(v) = queue.pop_front() {
                for e in &self.graph[v] {
                    if e.cap > EPS && level[e.to] < 0 {
                        level[e.to] = level[v] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[sink] < 0 {
                return total;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(source, sink, f64::INFINITY, &level, &mut iter);
                if f <= EPS {
                    break;
                }
                total += f;
            }
        }
    }

    fn dfs(&mut self, v: usize, sink: usize, f: f64, level: &[i32], iter: &mut [usize]) -> f64 {
        if v == sink {
            return f;
        }
        while iter[v] < self.graph[v].len() {
            let i = iter[v];
            let (to, cap, rev) = {
                let e = &self.graph[v][i];
                (e.to, e.cap, e.rev)
            };
            if cap > EPS && level[v] < level[to] {
                let d = self.dfs(to, sink, f.min(cap), level, iter);
                if d > EPS {
                    self.graph[v][i].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut f = FlowNetwork::new(2);
        let h = f.add_edge(0, 1, 5.0);
        assert_eq!(f.max_flow(0, 1), 5.0);
        assert_eq!(f.flow_on(h), 5.0);
    }

    #[test]
    fn series_bottleneck() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 10.0);
        let h = f.add_edge(1, 2, 3.0);
        assert_eq!(f.max_flow(0, 2), 3.0);
        assert_eq!(f.flow_on(h), 3.0);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 4.0);
        f.add_edge(1, 3, 4.0);
        f.add_edge(0, 2, 2.5);
        f.add_edge(2, 3, 2.5);
        assert!((f.max_flow(0, 3) - 6.5).abs() < 1e-9);
    }

    #[test]
    fn classic_diamond_with_cross_edge() {
        // The standard example requiring flow cancellation.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 10.0);
        f.add_edge(0, 2, 10.0);
        f.add_edge(1, 2, 1.0);
        f.add_edge(1, 3, 10.0);
        f.add_edge(2, 3, 10.0);
        assert!((f.max_flow(0, 3) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink_zero_flow() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 7.0);
        assert_eq!(f.max_flow(0, 2), 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 0.3);
        f.add_edge(0, 2, 0.2);
        f.add_edge(1, 2, 1.0);
        assert!((f.max_flow(0, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn transportation_feasibility_shape() {
        // 2 appranks (work 9, 3), 2 nodes (capacity-rate 6t each, t=1):
        // apprank 0 adj {0,1}, apprank 1 adj {1}. Max flow should be 12
        // when t*cap = 6 per node (exactly feasible).
        let (s, a0, a1, n0, n1, t_) = (0, 1, 2, 3, 4, 5);
        let mut f = FlowNetwork::new(6);
        f.add_edge(s, a0, 9.0);
        f.add_edge(s, a1, 3.0);
        f.add_edge(a0, n0, f64::INFINITY);
        f.add_edge(a0, n1, f64::INFINITY);
        f.add_edge(a1, n1, f64::INFINITY);
        f.add_edge(n0, t_, 6.0);
        f.add_edge(n1, t_, 6.0);
        assert!((f.max_flow(s, t_) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn self_loop_is_harmless() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 0, 5.0);
        f.add_edge(0, 1, 2.0);
        assert!((f.max_flow(0, 1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn random_networks_satisfy_cut_bound() {
        let mut rng = tlb_rng::Rng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.range_usize(4, 10);
            let mut f = FlowNetwork::new(n);
            let mut out_cap0 = 0.0;
            let mut in_capn = 0.0;
            for _ in 0..rng.range_usize(5, 25) {
                let u = rng.range_usize(0, n);
                let v = rng.range_usize(0, n);
                if u == v {
                    continue;
                }
                let c = rng.range_f64(0.0, 5.0);
                f.add_edge(u, v, c);
                if u == 0 {
                    out_cap0 += c;
                }
                if v == n - 1 {
                    in_capn += c;
                }
            }
            let flow = f.max_flow(0, n - 1);
            assert!(flow <= out_cap0 + 1e-9, "flow exceeds source cut");
            assert!(flow <= in_capn + 1e-9, "flow exceeds sink cut");
            assert!(flow >= -1e-12);
        }
    }
}
