//! Dense two-phase simplex with Bland's anti-cycling rule.
//!
//! Solves `min c·x` subject to `A x {≤,=,≥} b` and `x ≥ 0`. Designed for
//! the small, dense allocation programs this project generates (hundreds of
//! rows/columns); no sparsity or revised-simplex machinery is needed at
//! that scale, and a tableau implementation is easy to audit.

use std::fmt;

/// Relation of one constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `a·x <= b`
    Le,
    /// `a·x == b`
    Eq,
    /// `a·x >= b`
    Ge,
}

/// One linear constraint `coeffs · x  rel  rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Sparse coefficient list: `(variable index, coefficient)`.
    pub coeffs: Vec<(usize, f64)>,
    /// The relation.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// Errors from LP construction or solving.
#[derive(Clone, Debug, PartialEq)]
pub enum LpError {
    /// No feasible point satisfies the constraints.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// A constraint references a variable outside `0..num_vars`.
    BadVariable { var: usize, num_vars: usize },
    /// Iteration limit hit (should not occur with Bland's rule; indicates
    /// numerical trouble).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::BadVariable { var, num_vars } => {
                write!(f, "variable {var} out of range (num_vars = {num_vars})")
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal variable values (length `num_vars`).
    pub x: Vec<f64>,
    /// Optimal objective value `c·x`.
    pub objective: f64,
    /// Simplex pivots performed across both phases.
    pub iterations: usize,
}

/// A linear program under construction: `min c·x, A x {≤,=,≥} b, x ≥ 0`.
#[derive(Clone, Debug, Default)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// A program over `num_vars` non-negative variables with zero objective.
    pub fn new(num_vars: usize) -> Self {
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Set the objective coefficient of variable `var` (minimisation).
    pub fn set_objective(&mut self, var: usize, coeff: f64) -> &mut Self {
        assert!(var < self.num_vars, "objective variable out of range");
        self.objective[var] = coeff;
        self
    }

    /// Add a constraint; sparse coefficients, later duplicates summed.
    pub fn add_constraint(
        &mut self,
        coeffs: impl IntoIterator<Item = (usize, f64)>,
        rel: Relation,
        rhs: f64,
    ) -> &mut Self {
        self.constraints.push(Constraint {
            coeffs: coeffs.into_iter().collect(),
            rel,
            rhs,
        });
        self
    }

    /// Solve by two-phase dense simplex.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        for c in &self.constraints {
            for &(v, _) in &c.coeffs {
                if v >= self.num_vars {
                    return Err(LpError::BadVariable {
                        var: v,
                        num_vars: self.num_vars,
                    });
                }
            }
        }
        Tableau::build(self).solve(&self.objective)
    }
}

const EPS: f64 = 1e-9;

/// Dense simplex tableau in equality standard form with slack/artificial
/// columns appended after the structural variables.
struct Tableau {
    /// rows × cols coefficient matrix (cols = structural + slack + artificial).
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    /// Basis variable per row.
    basis: Vec<usize>,
    structural: usize,
    cols: usize,
    artificial_start: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let rows = lp.constraints.len();
        let structural = lp.num_vars;
        // Count slack/surplus and artificial columns.
        let mut n_slack = 0;
        let mut n_artificial = 0;
        for c in &lp.constraints {
            // Rows are normalised to b >= 0 first; the effective relation
            // after normalisation decides the columns.
            let rel = if c.rhs < 0.0 { flip(c.rel) } else { c.rel };
            match rel {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_artificial += 1;
                }
                Relation::Eq => n_artificial += 1,
            }
        }
        let cols = structural + n_slack + n_artificial;
        let artificial_start = structural + n_slack;

        let mut a = vec![vec![0.0; cols]; rows];
        let mut b = vec![0.0; rows];
        let mut basis = vec![usize::MAX; rows];
        let mut slack_idx = structural;
        let mut art_idx = artificial_start;

        for (i, c) in lp.constraints.iter().enumerate() {
            let sign = if c.rhs < 0.0 { -1.0 } else { 1.0 };
            let rel = if c.rhs < 0.0 { flip(c.rel) } else { c.rel };
            for &(v, coeff) in &c.coeffs {
                a[i][v] += sign * coeff;
            }
            b[i] = sign * c.rhs;
            match rel {
                Relation::Le => {
                    a[i][slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    a[i][slack_idx] = -1.0; // surplus
                    slack_idx += 1;
                    a[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    a[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
            }
        }
        Tableau {
            a,
            b,
            basis,
            structural,
            cols,
            artificial_start,
        }
    }

    fn solve(mut self, objective: &[f64]) -> Result<LpSolution, LpError> {
        let mut iterations = 0;
        // Phase 1: minimise the sum of artificial variables.
        if self.artificial_start < self.cols {
            let mut phase1 = vec![0.0; self.cols];
            for c in phase1.iter_mut().skip(self.artificial_start) {
                *c = 1.0;
            }
            let obj1 = self.run_phase(&phase1, self.cols, &mut iterations)?;
            if obj1 > 1e-7 {
                return Err(LpError::Infeasible);
            }
            self.drive_out_artificials(&mut iterations);
        }
        // Phase 2: minimise the real objective over structural + slack only.
        let mut phase2 = vec![0.0; self.cols];
        phase2[..self.structural].copy_from_slice(&objective[..self.structural]);
        let obj = self.run_phase(&phase2, self.artificial_start, &mut iterations)?;
        let mut x = vec![0.0; self.structural];
        for (row, &bv) in self.basis.iter().enumerate() {
            if bv < self.structural {
                x[bv] = self.b[row];
            }
        }
        Ok(LpSolution {
            x,
            objective: obj,
            iterations,
        })
    }

    /// Run primal simplex minimising `cost`, allowing entering columns only
    /// in `0..col_limit`. Returns the optimal objective value.
    fn run_phase(
        &mut self,
        cost: &[f64],
        col_limit: usize,
        iterations: &mut usize,
    ) -> Result<f64, LpError> {
        let rows = self.a.len();
        // Reduced costs require the objective row in terms of the current
        // basis: z_j - c_j. Maintain implicitly: compute y = c_B B^-1 via
        // the tableau (the tableau is kept in B^-1 A form).
        let max_iters = 50 * (rows + self.cols).max(100);
        // Dantzig's rule is fast on these allocation programs but can cycle
        // forever on degenerate vertices (Beale's example). Watch the
        // objective: after STALL_LIMIT pivots without strict improvement,
        // switch to Bland's rule — which provably terminates — and stay on
        // it until the objective moves again.
        const STALL_LIMIT: usize = 16;
        let mut stalled = 0usize;
        let mut bland = false;
        let mut last_obj = f64::INFINITY;
        loop {
            *iterations += 1;
            if *iterations > max_iters {
                return Err(LpError::IterationLimit);
            }
            let current: f64 = (0..rows).map(|i| cost[self.basis[i]] * self.b[i]).sum();
            if current < last_obj - EPS {
                last_obj = current;
                stalled = 0;
                bland = false;
            } else {
                stalled += 1;
                if stalled >= STALL_LIMIT {
                    bland = true;
                }
            }
            // Reduced cost of column j: c_j - sum_i c_basis[i] * a[i][j].
            // Entering column: Dantzig (most negative) normally, lowest
            // index under Bland.
            let mut entering = None;
            let mut best_rc = -EPS;
            for j in 0..col_limit {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut rc = cost[j];
                for i in 0..rows {
                    let cb = cost[self.basis[i]];
                    if cb != 0.0 {
                        rc -= cb * self.a[i][j];
                    }
                }
                if rc < best_rc {
                    if bland {
                        entering = Some(j);
                        break;
                    }
                    best_rc = rc;
                    entering = Some(j);
                }
            }
            let Some(enter) = entering else {
                // Optimal: compute objective.
                let mut obj = 0.0;
                for i in 0..rows {
                    obj += cost[self.basis[i]] * self.b[i];
                }
                return Ok(obj);
            };
            // Ratio test (Bland ties: lowest basis index).
            let mut leave = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..rows {
                let aij = self.a[i][enter];
                if aij > EPS {
                    let ratio = self.b[i] / aij;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l: usize| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(leave, enter);
        }
    }

    /// After phase 1, replace any artificial variable still (degenerately)
    /// in the basis with a structural/slack column, or drop the row if it
    /// is redundant.
    fn drive_out_artificials(&mut self, iterations: &mut usize) {
        let rows = self.a.len();
        for i in 0..rows {
            if self.basis[i] >= self.artificial_start {
                debug_assert!(self.b[i].abs() <= 1e-7, "artificial basic at nonzero value");
                if let Some(j) = (0..self.artificial_start).find(|&j| self.a[i][j].abs() > EPS) {
                    *iterations += 1;
                    self.pivot(i, j);
                }
                // else: the row is all-zero over real columns → redundant
                // constraint; leaving the artificial basic at value 0 is
                // harmless for phase 2 since its cost coefficient is 0.
            }
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let rows = self.a.len();
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS, "pivot on (near-)zero element");
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        self.b[row] *= inv;
        for i in 0..rows {
            if i == row {
                continue;
            }
            let factor = self.a[i][col];
            if factor.abs() <= EPS {
                self.a[i][col] = 0.0;
                continue;
            }
            let (head, tail) = self.a.split_at_mut(row.max(i));
            let (src, dst) = if i < row {
                (&tail[0], &mut head[i])
            } else {
                (&head[row], &mut tail[0])
            };
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d -= factor * s;
            }
            self.b[i] -= factor * self.b[row];
            self.a[i][col] = 0.0; // exact zero to stop drift
        }
        self.basis[row] = col;
    }
}

fn flip(rel: Relation) -> Relation {
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximisation() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  → x=2, y=6, obj=36.
        // As minimisation of -(3x+5y).
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -3.0).set_objective(1, -5.0);
        lp.add_constraint([(0, 1.0)], Relation::Le, 4.0);
        lp.add_constraint([(1, 2.0)], Relation::Le, 12.0);
        lp.add_constraint([(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 10, x <= 4 → x=4, y=6, obj=16.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0).set_objective(1, 2.0);
        lp.add_constraint([(0, 1.0), (1, 1.0)], Relation::Eq, 10.0);
        lp.add_constraint([(0, 1.0)], Relation::Le, 4.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 16.0);
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn ge_constraints_phase1() {
        // min 2x + 3y s.t. x + y >= 5, x >= 1 → x=5? No: cost of x is
        // lower, so x=5,y=0 gives 10; check x>=1 satisfied.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 2.0).set_objective(1, 3.0);
        lp.add_constraint([(0, 1.0), (1, 1.0)], Relation::Ge, 5.0);
        lp.add_constraint([(0, 1.0)], Relation::Ge, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 10.0);
        assert_close(s.x[0], 5.0);
    }

    #[test]
    fn negative_rhs_normalised() {
        // min x s.t. -x <= -3  (i.e. x >= 3) → x=3.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint([(0, -1.0)], Relation::Le, -3.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint([(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint([(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with only x >= 0.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint([(0, 1.0)], Relation::Ge, 0.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bad_variable_reported() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint([(3, 1.0)], Relation::Le, 1.0);
        assert!(matches!(
            lp.solve().unwrap_err(),
            LpError::BadVariable {
                var: 3,
                num_vars: 1
            }
        ));
    }

    #[test]
    fn degenerate_program_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -1.0).set_objective(1, -1.0);
        lp.add_constraint([(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        lp.add_constraint([(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint([(1, 1.0)], Relation::Le, 1.0);
        lp.add_constraint([(0, 2.0), (1, 1.0)], Relation::Le, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn min_max_work_split() {
        // The allocation pattern in miniature: spread work 9 (apprank 0,
        // nodes {0,1}) and 3 (apprank 1, node {1}) over two 1-core nodes.
        // Variables: w00, w01, w11, t. min t s.t.
        //   w00 + w01 = 9; w11 = 3; w00 <= t; w01 + w11 <= t.
        let (w00, w01, w11, t) = (0, 1, 2, 3);
        let mut lp = LinearProgram::new(4);
        lp.set_objective(t, 1.0);
        lp.add_constraint([(w00, 1.0), (w01, 1.0)], Relation::Eq, 9.0);
        lp.add_constraint([(w11, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint([(w00, 1.0), (t, -1.0)], Relation::Le, 0.0);
        lp.add_constraint([(w01, 1.0), (w11, 1.0), (t, -1.0)], Relation::Le, 0.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 6.0); // perfect split: 6 / 6
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 twice (redundant) plus objective.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint([(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint([(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn beale_cycling_instance_terminates_at_optimum() {
        // Beale's classic example cycles forever under pure Dantzig
        // pivoting; the stall-triggered switch to Bland's rule must break
        // the cycle and land on the optimum −0.05 at x = (0.04, 0, 1, 0).
        let mut lp = LinearProgram::new(4);
        lp.set_objective(0, -0.75)
            .set_objective(1, 150.0)
            .set_objective(2, -0.02)
            .set_objective(3, 6.0);
        lp.add_constraint(
            [(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            [(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint([(2, 1.0)], Relation::Le, 1.0);
        let s = lp.solve().expect("Beale's example is bounded and feasible");
        assert_close(s.objective, -0.05);
        assert_close(s.x[0], 0.04);
        assert_close(s.x[2], 1.0);
    }

    #[test]
    fn heavily_degenerate_vertex_terminates() {
        // Every constraint is active at the optimum (1,1,1)/redundant —
        // maximal opportunity for zero-progress pivots. Must return the
        // optimum, never IterationLimit.
        let mut lp = LinearProgram::new(3);
        for v in 0..3 {
            lp.set_objective(v, -1.0);
            lp.add_constraint([(v, 1.0)], Relation::Le, 1.0);
            lp.add_constraint([(v, 2.0)], Relation::Le, 2.0);
        }
        lp.add_constraint([(0, 1.0), (1, 1.0)], Relation::Le, 2.0);
        lp.add_constraint([(1, 1.0), (2, 1.0)], Relation::Le, 2.0);
        lp.add_constraint([(0, 1.0), (2, 1.0)], Relation::Le, 2.0);
        lp.add_constraint([(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -3.0);
    }

    #[test]
    fn unbounded_after_nontrivial_phase1() {
        // Phase 1 must pivot to reach feasibility (x + y >= 2), then
        // phase 2 discovers the objective −x − y has no floor. The
        // structured error must come back, not a panic or a spin.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -1.0).set_objective(1, -1.0);
        lp.add_constraint([(0, 1.0), (1, 1.0)], Relation::Ge, 2.0);
        lp.add_constraint([(0, 1.0), (1, -1.0)], Relation::Le, 5.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn random_lps_match_bruteforce_vertices() {
        // 2-variable random LPs: compare against brute-force over
        // constraint-intersection vertices.
        let mut rng = tlb_rng::Rng::seed_from_u64(99);
        for _case in 0..200 {
            let n_cons = rng.range_usize(2, 6);
            let mut lp = LinearProgram::new(2);
            let c = [rng.range_f64(0.1, 2.0), rng.range_f64(0.1, 2.0)];
            lp.set_objective(0, c[0]).set_objective(1, c[1]);
            let mut cons: Vec<(f64, f64, f64)> = Vec::new();
            for _ in 0..n_cons {
                // a x + b y >= r with a,b >= 0 keeps the LP feasible+bounded.
                let (a, b, r) = (
                    rng.range_f64(0.0, 2.0),
                    rng.range_f64(0.0, 2.0),
                    rng.range_f64(0.5, 4.0),
                );
                if a + b < 0.1 {
                    continue;
                }
                lp.add_constraint([(0, a), (1, b)], Relation::Ge, r);
                cons.push((a, b, r));
            }
            if cons.is_empty() {
                continue;
            }
            let s = lp.solve().unwrap();
            // Brute force: candidate vertices are pairwise intersections
            // plus axis intercepts.
            let mut best = f64::INFINITY;
            let mut candidates: Vec<(f64, f64)> = Vec::new();
            for &(a, b, r) in &cons {
                if a > 1e-12 {
                    candidates.push((r / a, 0.0));
                }
                if b > 1e-12 {
                    candidates.push((0.0, r / b));
                }
            }
            for i in 0..cons.len() {
                for j in i + 1..cons.len() {
                    let (a1, b1, r1) = cons[i];
                    let (a2, b2, r2) = cons[j];
                    let det = a1 * b2 - a2 * b1;
                    if det.abs() > 1e-9 {
                        let x = (r1 * b2 - r2 * b1) / det;
                        let y = (a1 * r2 - a2 * r1) / det;
                        candidates.push((x, y));
                    }
                }
            }
            for (x, y) in candidates {
                if x < -1e-9 || y < -1e-9 {
                    continue;
                }
                if cons.iter().all(|&(a, b, r)| a * x + b * y >= r - 1e-6) {
                    best = best.min(c[0] * x + c[1] * y);
                }
            }
            assert!(
                (s.objective - best).abs() < 1e-4,
                "simplex {} vs brute force {best}",
                s.objective
            );
        }
    }
}
