//! Linear programming and network-flow machinery for the global core
//! allocation policy (paper §5.4.2).
//!
//! The paper's global policy minimises, every two seconds,
//!
//! ```text
//!   max over appranks a of   (total work on a) / (total cores on a)
//! ```
//!
//! subject to: each worker owns ≥ 1 core, per-node core capacity, and
//! apprank–node adjacency from the expander graph. The authors solve it
//! with CVXOPT; we implement the substrate ourselves:
//!
//! * [`simplex`] — a dense two-phase simplex solver with Bland's rule,
//!   general enough for any small LP (`min c·x, Ax {≤,=,≥} b, x ≥ 0`).
//! * [`maxflow`] — Dinic's algorithm, used by an alternative *parametric*
//!   solver: bisection on the objective value `t`, with each feasibility
//!   check a transportation problem (source → appranks → nodes → sink).
//! * [`allocation`] — the min-max core allocation program itself, with both
//!   solvers (they agree to within bisection tolerance — an ablation bench
//!   compares their speed), the paper's `1 + 1e-6` keep-local incentive,
//!   and largest-remainder rounding to integer core ownership respecting
//!   the ≥ 1 core per worker rule.

pub mod allocation;
pub mod maxflow;
pub mod simplex;

pub use allocation::{
    round_cores, solve_flow, solve_lp, AllocationProblem, AllocationSolution, WorkerAllocation,
};
pub use maxflow::FlowNetwork;
pub use simplex::{Constraint, LinearProgram, LpError, LpSolution, Relation};
