//! TALP: Tracking Application Live Performance (paper §3.3).
//!
//! TALP measures each process's useful compute time; the quantity the
//! paper's allocation policies consume is the *time-averaged number of
//! busy cores* per worker process (§5.4.1: "each worker measures its
//! average number of busy cores, i.e., the average number of cores
//! executing tasks or runtime code except the idle loop").

use tlb_des::{BusyIntegral, SimTime};

/// Per-process busy-core accounting for the workers of one node.
#[derive(Clone, Debug)]
pub struct Talp {
    per_proc: Vec<BusyIntegral>,
}

impl Talp {
    /// Accounting for `procs` worker processes, all idle at time zero.
    pub fn new(procs: usize) -> Self {
        Talp {
            per_proc: (0..procs).map(|_| BusyIntegral::new()).collect(),
        }
    }

    /// Number of tracked processes.
    pub fn procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Track one more process (spawned helper rank), idle from `now`.
    pub fn add_proc(&mut self, now: SimTime) -> usize {
        let mut b = BusyIntegral::new();
        b.set(now, 0.0);
        self.per_proc.push(b);
        self.per_proc.len() - 1
    }

    /// Record that process `proc` is busy on `cores` cores from `at`.
    pub fn set_busy(&mut self, proc: usize, at: SimTime, cores: usize) {
        self.per_proc[proc].set(at, cores as f64);
    }

    /// Current busy-core count of `proc`.
    pub fn current(&self, proc: usize) -> f64 {
        self.per_proc[proc].current()
    }

    /// Average busy cores of `proc` over its window, restarting the window.
    pub fn take_window(&mut self, proc: usize, now: SimTime) -> f64 {
        self.per_proc[proc].take_window(now)
    }

    /// Average busy cores of every process, restarting all windows.
    pub fn take_all_windows(&mut self, now: SimTime) -> Vec<f64> {
        self.per_proc
            .iter_mut()
            .map(|b| b.take_window(now))
            .collect()
    }

    /// Average busy cores without restarting the window.
    pub fn peek_window(&self, proc: usize, now: SimTime) -> f64 {
        self.per_proc[proc].peek_window(now)
    }

    /// Total busy core·seconds of `proc` since the start.
    pub fn total(&self, proc: usize, now: SimTime) -> f64 {
        self.per_proc[proc].total(now)
    }

    /// Parallel efficiency over `[0, now)` given `cores` available:
    /// the TALP end-of-run report.
    pub fn parallel_efficiency(&self, now: SimTime, cores: usize) -> f64 {
        let span = now.as_secs_f64();
        if span <= 0.0 || cores == 0 {
            return 0.0;
        }
        let useful: f64 = (0..self.per_proc.len()).map(|p| self.total(p, now)).sum();
        useful / (span * cores as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_average_busy_cores() {
        let mut t = Talp::new(2);
        t.set_busy(0, SimTime::ZERO, 4);
        t.set_busy(1, SimTime::ZERO, 0);
        t.set_busy(0, SimTime::from_secs(1), 2);
        let w = t.take_all_windows(SimTime::from_secs(2));
        assert!((w[0] - 3.0).abs() < 1e-12);
        assert_eq!(w[1], 0.0);
        // Next window starts fresh.
        t.set_busy(0, SimTime::from_secs(3), 0);
        let w0 = t.take_window(0, SimTime::from_secs(4));
        assert!((w0 - 1.0).abs() < 1e-12); // 1s at 2 cores, 1s at 0
    }

    #[test]
    fn efficiency_full_and_half() {
        let mut t = Talp::new(1);
        t.set_busy(0, SimTime::ZERO, 4);
        assert!((t.parallel_efficiency(SimTime::from_secs(2), 4) - 1.0).abs() < 1e-12);
        t.set_busy(0, SimTime::from_secs(2), 0);
        assert!((t.parallel_efficiency(SimTime::from_secs(4), 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_degenerate_inputs() {
        let t = Talp::new(1);
        assert_eq!(t.parallel_efficiency(SimTime::ZERO, 4), 0.0);
        assert_eq!(t.parallel_efficiency(SimTime::from_secs(1), 0), 0.0);
    }

    #[test]
    fn added_proc_accounts_from_its_spawn_time() {
        let mut t = Talp::new(1);
        t.set_busy(0, SimTime::ZERO, 2);
        let p = t.add_proc(SimTime::from_secs(1));
        assert_eq!(p, 1);
        t.set_busy(p, SimTime::from_secs(1), 3);
        assert!((t.total(p, SimTime::from_secs(2)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn peek_does_not_reset() {
        let mut t = Talp::new(1);
        t.set_busy(0, SimTime::ZERO, 2);
        assert!((t.peek_window(0, SimTime::from_secs(1)) - 2.0).abs() < 1e-12);
        assert!((t.peek_window(0, SimTime::from_secs(2)) - 2.0).abs() < 1e-12);
        assert!((t.take_window(0, SimTime::from_secs(2)) - 2.0).abs() < 1e-12);
    }
}
