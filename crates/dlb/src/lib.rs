//! Reimplementation of the Dynamic Load Balancing (DLB) library semantics
//! (paper §3.3): per-node core sharing among worker processes.
//!
//! DLB's observable behaviour, as the paper uses it:
//!
//! * **LeWI** (*Lend When Idle*, §5.3) — a process's idle cores may be
//!   *borrowed* by another process on the same node; the owner *reclaims*
//!   them the moment it has work again, and the borrower must give each
//!   core back as soon as its current task finishes (no preemption).
//! * **DROM** (*Dynamic Resource Ownership Management*, §5.4) — the
//!   semi-permanent *ownership* of cores is re-divided among the node's
//!   processes; every process always owns at least one core. Ownership
//!   changes for busy cores are deferred until the running task releases
//!   the core.
//! * **TALP** — lightweight measurement of per-process busy time, exposed
//!   as the time-averaged number of busy cores: exactly the load estimate
//!   both of the paper's allocation policies consume.
//!
//! The implementation is a deterministic state machine driven by the
//! simulation (or by the real shared-memory runtime in `tlb-smprt`): all
//! timing is supplied by the caller, so the same code serves virtual-time
//! and wall-clock executions.
//!
//! # Example
//!
//! ```
//! use tlb_dlb::{NodeDlb, ProcId};
//!
//! // 4 cores, two processes owning two cores each, LeWI enabled.
//! let mut node = NodeDlb::new(4, &[ProcId(0), ProcId(0), ProcId(1), ProcId(1)], true);
//! let a = node.acquire(ProcId(0)).unwrap();
//! let b = node.acquire(ProcId(0)).unwrap();
//! // Process 1 is idle, so process 0 can borrow its cores (LeWI)...
//! let c = node.acquire(ProcId(0)).unwrap();
//! assert!(node.is_borrowed(c));
//! // ...until process 1 wants one back: the reclaim flags the core and
//! // process 0 must release it after the current task.
//! assert!(node.acquire(ProcId(1)).is_some()); // its other own core
//! assert!(node.acquire(ProcId(1)).is_none()); // none free; reclaim posted
//! assert!(node.reclaim_pending(c));
//! node.release(ProcId(0), c);
//! assert_eq!(node.acquire(ProcId(1)), Some(c));
//! # let _ = (a, b);
//! ```

mod node;
mod talp;

pub use node::{CoreState, DlbError, DlbEvent, NodeDlb, ProcId};
pub use talp::Talp;
