//! Per-node core ownership/lending state machine (LeWI + DROM).

use std::fmt;

/// A worker process on the node (apprank main process or helper rank).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub usize);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Errors from DLB operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DlbError {
    /// Ownership counts do not sum to the node's core count.
    BadOwnershipSum { got: usize, cores: usize },
    /// A process would own zero cores (below the DLB minimum).
    BelowMinimum(ProcId),
    /// Release of a core the process is not using.
    NotUser { proc: ProcId, core: usize },
    /// Operation targeted a retired (dead) process.
    Retired(ProcId),
    /// Retiring a process would leave its cores without a living owner.
    NoSurvivor,
}

impl fmt::Display for DlbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlbError::BadOwnershipSum { got, cores } => {
                write!(f, "ownership counts sum to {got}, node has {cores} cores")
            }
            DlbError::BelowMinimum(p) => write!(f, "process {p:?} would own zero cores"),
            DlbError::NotUser { proc, core } => {
                write!(f, "process {proc:?} does not hold core {core}")
            }
            DlbError::Retired(p) => write!(f, "process {p:?} is retired"),
            DlbError::NoSurvivor => {
                write!(f, "no living process remains to take over the cores")
            }
        }
    }
}

impl std::error::Error for DlbError {}

/// Externally visible state of one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreState {
    /// Current owner.
    pub owner: ProcId,
    /// Process running a task on the core, if any.
    pub user: Option<ProcId>,
    /// Owner has requested the core back from a borrower.
    pub reclaim: bool,
    /// DROM ownership transfer deferred until the core is released.
    pub transfer_to: Option<ProcId>,
}

#[derive(Clone, Debug)]
struct Core {
    owner: ProcId,
    user: Option<ProcId>,
    reclaim: bool,
    transfer_to: Option<ProcId>,
}

/// One observable DLB state transition, buffered for tracing.
///
/// `NodeDlb` knows nothing about virtual time or trace streams; it just
/// appends transitions (when recording is on) and the simulation drains
/// them with [`NodeDlb::drain_events`], attaching timestamps itself.
/// This keeps `tlb-dlb` dependency-free so `tlb-smprt` can keep using it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DlbEvent {
    /// LeWI: `proc` borrowed idle `core` lent by `owner`.
    Borrowed {
        proc: ProcId,
        core: usize,
        owner: ProcId,
    },
    /// LeWI: `owner` posted a reclaim on `core`, used by `borrower`.
    ReclaimPosted {
        core: usize,
        owner: ProcId,
        borrower: ProcId,
    },
    /// DROM: deferred transfer of `core` from `from` to `to` applied at
    /// release.
    TransferApplied {
        core: usize,
        from: ProcId,
        to: ProcId,
    },
    /// DROM: ownership transaction targeting `counts[p]` cores per proc.
    OwnershipSet { counts: Vec<usize> },
}

/// DLB state for the cores of one node.
///
/// All methods are O(cores); nodes have at most a few dozen cores so no
/// index structures are warranted.
#[derive(Clone, Debug)]
pub struct NodeDlb {
    cores: Vec<Core>,
    lewi: bool,
    num_procs: usize,
    /// `retired[p]`: process `p` is dead. Retired processes own no cores
    /// (once pending transfers drain), cannot acquire, and are the only
    /// processes allowed a zero count in [`NodeDlb::set_ownership`].
    retired: Vec<bool>,
    record: bool,
    events: Vec<DlbEvent>,
}

impl NodeDlb {
    /// A node whose `i`-th core is initially owned by `initial_owner[i]`.
    /// `lewi` enables lending of idle cores between processes.
    pub fn new(cores: usize, initial_owner: &[ProcId], lewi: bool) -> Self {
        assert_eq!(cores, initial_owner.len(), "owner per core required");
        assert!(cores > 0, "node must have cores");
        let num_procs = initial_owner.iter().map(|p| p.0).max().unwrap_or(0) + 1;
        NodeDlb {
            cores: initial_owner
                .iter()
                .map(|&owner| Core {
                    owner,
                    user: None,
                    reclaim: false,
                    transfer_to: None,
                })
                .collect(),
            lewi,
            num_procs,
            retired: vec![false; num_procs],
            record: false,
            events: Vec::new(),
        }
    }

    /// Enable/disable transition recording (off by default; enabling it
    /// is the only way [`NodeDlb::drain_events`] ever returns anything).
    pub fn set_recording(&mut self, on: bool) {
        self.record = on;
        if !on {
            self.events.clear();
        }
    }

    /// Take all buffered transitions, in the order they occurred.
    pub fn drain_events(&mut self) -> Vec<DlbEvent> {
        std::mem::take(&mut self.events)
    }

    fn log(&mut self, ev: DlbEvent) {
        if self.record {
            self.events.push(ev);
        }
    }

    /// Convenience: build the paper's initial layout — each process owns
    /// `counts[p]` cores, contiguously.
    pub fn with_counts(counts: &[usize], lewi: bool) -> Self {
        let total: usize = counts.iter().sum();
        let mut owner = Vec::with_capacity(total);
        for (p, &c) in counts.iter().enumerate() {
            owner.extend(std::iter::repeat_n(ProcId(p), c));
        }
        NodeDlb::new(total, &owner, lewi)
    }

    /// Number of cores on the node.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Whether LeWI lending is enabled.
    pub fn lewi_enabled(&self) -> bool {
        self.lewi
    }

    /// Enable/disable LeWI.
    pub fn set_lewi(&mut self, on: bool) {
        self.lewi = on;
    }

    /// Snapshot of one core's state.
    pub fn core_state(&self, core: usize) -> CoreState {
        let c = &self.cores[core];
        CoreState {
            owner: c.owner,
            user: c.user,
            reclaim: c.reclaim,
            transfer_to: c.transfer_to,
        }
    }

    /// Cores owned by `proc` (DROM ownership, regardless of current user).
    pub fn owned_count(&self, proc: ProcId) -> usize {
        self.cores.iter().filter(|c| c.owner == proc).count()
    }

    /// Cores currently being used by `proc` (own or borrowed).
    pub fn used_count(&self, proc: ProcId) -> usize {
        self.cores.iter().filter(|c| c.user == Some(proc)).count()
    }

    /// Cores in use by any process.
    pub fn busy_count(&self) -> usize {
        self.cores.iter().filter(|c| c.user.is_some()).count()
    }

    /// Whether `core` is in use by a process other than its owner.
    pub fn is_borrowed(&self, core: usize) -> bool {
        let c = &self.cores[core];
        c.user.is_some_and(|u| u != c.owner)
    }

    /// Whether the owner has posted a reclaim for `core`.
    pub fn reclaim_pending(&self, core: usize) -> bool {
        self.cores[core].reclaim
    }

    /// Try to obtain a core for `proc` to run a task on.
    ///
    /// Search order: (1) an idle core owned by `proc`; (2) with LeWI, an
    /// idle core owned by someone else (a *borrow*). If nothing is free,
    /// posts a reclaim on every core `proc` owns that is currently
    /// borrowed, so they come home as soon as their tasks finish, and
    /// returns `None`.
    pub fn acquire(&mut self, proc: ProcId) -> Option<usize> {
        // A retired process never starts anything new (fail-stop).
        if self.is_retired(proc) {
            return None;
        }
        // (1) idle own core.
        if let Some(i) = self
            .cores
            .iter()
            .position(|c| c.owner == proc && c.user.is_none())
        {
            self.cores[i].user = Some(proc);
            self.cores[i].reclaim = false;
            return Some(i);
        }
        // (2) borrow an idle foreign core, but never one whose owner has
        // posted a reclaim (it is on its way home).
        if self.lewi {
            if let Some(i) = self
                .cores
                .iter()
                .position(|c| c.user.is_none() && !c.reclaim && c.transfer_to.is_none())
            {
                self.cores[i].user = Some(proc);
                let owner = self.cores[i].owner;
                self.log(DlbEvent::Borrowed {
                    proc,
                    core: i,
                    owner,
                });
                return Some(i);
            }
        }
        // Nothing free: reclaim our lent-out cores.
        let mut posted = Vec::new();
        for (i, c) in self.cores.iter_mut().enumerate() {
            if c.owner == proc && c.user.is_some_and(|u| u != proc) && !c.reclaim {
                c.reclaim = true;
                posted.push((i, c.user.expect("borrowed core has a user")));
            }
        }
        for (core, borrower) in posted {
            self.log(DlbEvent::ReclaimPosted {
                core,
                owner: proc,
                borrower,
            });
        }
        None
    }

    /// Release a core after a task finishes. Applies any deferred DROM
    /// ownership transfer; clears reclaim if the core returned home.
    pub fn release(&mut self, proc: ProcId, core: usize) -> Result<(), DlbError> {
        let c = &mut self.cores[core];
        if c.user != Some(proc) {
            return Err(DlbError::NotUser { proc, core });
        }
        c.user = None;
        if let Some(to) = c.transfer_to.take() {
            let from = c.owner;
            c.owner = to;
            c.reclaim = false;
            self.log(DlbEvent::TransferApplied { core, from, to });
        } else if c.reclaim {
            // The borrower returned it; it is now an idle owned core.
            c.reclaim = false;
        }
        Ok(())
    }

    /// DROM: reassign ownership so that process `p` owns `counts[p]` cores.
    ///
    /// Counts must sum to the core total and be ≥ 1 for every process that
    /// appears on the node (the DLB minimum). Transfers prefer idle cores
    /// (ownership moves immediately); busy cores transfer when released;
    /// a busy core already used by its future owner transfers immediately.
    pub fn set_ownership(&mut self, counts: &[usize]) -> Result<(), DlbError> {
        let total: usize = counts.iter().sum();
        if total != self.cores.len() {
            return Err(DlbError::BadOwnershipSum {
                got: total,
                cores: self.cores.len(),
            });
        }
        // The DLB minimum of one core applies only to living processes;
        // retired processes must be at zero (they own nothing).
        for (p, &c) in counts.iter().enumerate() {
            let retired = self.retired.get(p).copied().unwrap_or(false);
            if c == 0 && !retired {
                return Err(DlbError::BelowMinimum(ProcId(p)));
            }
            if c > 0 && retired {
                return Err(DlbError::Retired(ProcId(p)));
            }
        }
        self.num_procs = self.num_procs.max(counts.len());
        self.retired.resize(self.num_procs, false);

        // Effective current ownership counting pending transfers as done.
        let eff_owner = |c: &Core| c.transfer_to.unwrap_or(c.owner);
        let mut have = vec![0usize; counts.len()];
        for c in &self.cores {
            let p = eff_owner(c).0;
            if p < have.len() {
                have[p] += 1;
            }
        }
        // Donors give, receivers take, one core at a time (deterministic:
        // lowest core index first, idle cores preferred).
        let mut need: Vec<isize> = counts
            .iter()
            .zip(&have)
            .map(|(&want, &h)| want as isize - h as isize)
            .collect();

        for recv in 0..counts.len() {
            while need[recv] > 0 {
                // Find a donor with surplus.
                let Some(donor) = need.iter().position(|&n| n < 0) else {
                    break;
                };
                // Pick a core effectively owned by the donor: idle first.
                let pick = self
                    .cores
                    .iter()
                    .position(|c| eff_owner(c).0 == donor && c.user.is_none())
                    .or_else(|| self.cores.iter().position(|c| eff_owner(c).0 == donor));
                let Some(i) = pick else { break };
                let c = &mut self.cores[i];
                match c.user {
                    None => {
                        c.owner = ProcId(recv);
                        c.transfer_to = None;
                        c.reclaim = false;
                    }
                    Some(u) if u == ProcId(recv) => {
                        // Future owner already runs here: immediate.
                        c.owner = ProcId(recv);
                        c.transfer_to = None;
                        c.reclaim = false;
                    }
                    Some(_) => {
                        // A second DROM pass may route a still-pending
                        // transfer back to the core's original owner; that
                        // cancels the transfer rather than recording a
                        // self-transfer.
                        c.transfer_to = (ProcId(recv) != c.owner).then_some(ProcId(recv));
                    }
                }
                need[donor] -= -1; // donor gave one (need moves toward 0)
                need[recv] -= 1;
            }
        }
        self.log(DlbEvent::OwnershipSet {
            counts: counts.to_vec(),
        });
        Ok(())
    }

    /// Register a new worker process on the node (dynamic helper-rank
    /// spawning, the paper's §5.2 future-work extension). The process
    /// immediately owns one core — the DLB minimum — taken from the
    /// current largest owner (an idle core if possible, otherwise a
    /// deferred transfer). Returns the new process id.
    ///
    /// # Panics
    /// Panics if every core already belongs to a distinct process (no
    /// donor can spare a core without dropping below its own floor).
    pub fn add_process(&mut self) -> ProcId {
        let new = ProcId(self.num_procs);
        self.num_procs += 1;
        self.retired.resize(self.num_procs, false);
        // Donor: the process owning the most cores (ties → lowest id).
        let mut counts = vec![0usize; self.num_procs];
        for c in &self.cores {
            let p = c.transfer_to.unwrap_or(c.owner).0;
            counts[p] += 1;
        }
        let donor = ProcId(
            (0..self.num_procs)
                .max_by_key(|&p| counts[p])
                .expect("at least one process"),
        );
        assert!(
            counts[donor.0] >= 2,
            "no process can spare a core for a new worker"
        );
        let eff_owner = |c: &Core| c.transfer_to.unwrap_or(c.owner);
        let pick = self
            .cores
            .iter()
            .position(|c| eff_owner(c) == donor && c.user.is_none())
            .or_else(|| self.cores.iter().position(|c| eff_owner(c) == donor))
            .expect("donor owns a core");
        let c = &mut self.cores[pick];
        match c.user {
            None => {
                c.owner = new;
                c.transfer_to = None;
                c.reclaim = false;
            }
            Some(u) if u == new => unreachable!("new process cannot be running"),
            Some(_) => {
                c.transfer_to = Some(new);
            }
        }
        new
    }

    /// Whether `proc` has been retired via [`NodeDlb::retire_process`].
    pub fn is_retired(&self, proc: ProcId) -> bool {
        self.retired.get(proc.0).copied().unwrap_or(false)
    }

    /// Retire a dead worker process: every core it (effectively) owns is
    /// handed to the living process with the fewest cores (ties → lowest
    /// id). Idle cores move immediately; cores still running the dead
    /// process's final task transfer when released (fail-stop after the
    /// current task). Returns the number of cores reassigned.
    ///
    /// Cores the process merely *borrowed* stay with their owners; its
    /// posted reclaims become moot once the transfer lands.
    pub fn retire_process(&mut self, proc: ProcId) -> Result<usize, DlbError> {
        if proc.0 >= self.num_procs {
            return Err(DlbError::Retired(proc)); // unknown proc: treat as gone
        }
        if self.is_retired(proc) {
            return Err(DlbError::Retired(proc));
        }
        self.retired.resize(self.num_procs, false);
        if !(0..self.num_procs).any(|p| p != proc.0 && !self.retired[p]) {
            return Err(DlbError::NoSurvivor);
        }
        self.retired[proc.0] = true;
        let eff_owner = |c: &Core| c.transfer_to.unwrap_or(c.owner);
        // Effective ownership of every living process, for receiver choice.
        let mut have = vec![0usize; self.num_procs];
        for c in &self.cores {
            have[eff_owner(c).0] += 1;
        }
        let mut moved = 0usize;
        for i in 0..self.cores.len() {
            if eff_owner(&self.cores[i]) != proc {
                continue;
            }
            let recv = (0..self.num_procs)
                .filter(|&p| !self.retired[p])
                .min_by_key(|&p| (have[p], p))
                .ok_or(DlbError::NoSurvivor)?;
            have[recv] += 1;
            moved += 1;
            let recv = ProcId(recv);
            let c = &mut self.cores[i];
            match c.user {
                // Idle, or already used by the receiver: move immediately.
                None => {
                    c.owner = recv;
                    c.transfer_to = None;
                    c.reclaim = false;
                }
                Some(u) if u == recv => {
                    c.owner = recv;
                    c.transfer_to = None;
                    c.reclaim = false;
                }
                // Busy (the dead process's final task, or a borrower):
                // defer until release, like any DROM transfer.
                Some(_) => {
                    c.transfer_to = (recv != c.owner).then_some(recv);
                }
            }
        }
        self.log(DlbEvent::OwnershipSet {
            counts: self.target_ownership(),
        });
        Ok(moved)
    }

    /// Ownership per process, counting deferred transfers as complete
    /// (i.e. the DROM target state).
    pub fn target_ownership(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_procs];
        for c in &self.cores {
            let p = c.transfer_to.unwrap_or(c.owner).0;
            if p >= counts.len() {
                counts.resize(p + 1, 0);
            }
            counts[p] += 1;
        }
        counts
    }

    /// Check internal invariants; used by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, c) in self.cores.iter().enumerate() {
            if c.reclaim && c.user.is_none() {
                return Err(format!("core {i}: reclaim pending on idle core"));
            }
            if c.reclaim && c.user == Some(c.owner) {
                return Err(format!("core {i}: reclaim pending while owner runs"));
            }
            if let Some(to) = c.transfer_to {
                if to == c.owner {
                    return Err(format!("core {i}: self-transfer"));
                }
                if c.user.is_none() {
                    return Err(format!("core {i}: deferred transfer on idle core"));
                }
            }
            let eff = c.transfer_to.unwrap_or(c.owner);
            if self.is_retired(eff) {
                return Err(format!("core {i}: effectively owned by retired {eff:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_proc_node(lewi: bool) -> NodeDlb {
        NodeDlb::with_counts(&[2, 2], lewi)
    }

    #[test]
    fn acquire_own_cores_first() {
        let mut n = two_proc_node(true);
        let a = n.acquire(ProcId(0)).unwrap();
        let b = n.acquire(ProcId(0)).unwrap();
        assert_eq!(n.core_state(a).owner, ProcId(0));
        assert_eq!(n.core_state(b).owner, ProcId(0));
        assert_eq!(n.used_count(ProcId(0)), 2);
    }

    #[test]
    fn lewi_borrows_idle_foreign_cores() {
        let mut n = two_proc_node(true);
        n.acquire(ProcId(0)).unwrap();
        n.acquire(ProcId(0)).unwrap();
        let c = n.acquire(ProcId(0)).unwrap();
        assert!(n.is_borrowed(c));
        assert_eq!(n.used_count(ProcId(0)), 3);
    }

    #[test]
    fn without_lewi_no_borrowing() {
        let mut n = two_proc_node(false);
        n.acquire(ProcId(0)).unwrap();
        n.acquire(ProcId(0)).unwrap();
        assert_eq!(n.acquire(ProcId(0)), None);
    }

    #[test]
    fn reclaim_cycle_returns_core_to_owner() {
        let mut n = two_proc_node(true);
        n.acquire(ProcId(0)).unwrap();
        n.acquire(ProcId(0)).unwrap();
        let borrowed = n.acquire(ProcId(0)).unwrap();
        let borrowed2 = n.acquire(ProcId(0)).unwrap();
        assert_eq!(n.used_count(ProcId(0)), 4);
        // Owner wants cores: nothing idle, so reclaims are posted.
        assert_eq!(n.acquire(ProcId(1)), None);
        assert!(n.reclaim_pending(borrowed));
        assert!(n.reclaim_pending(borrowed2));
        // Borrower finishes one task; the core goes home idle.
        n.release(ProcId(0), borrowed).unwrap();
        assert!(!n.reclaim_pending(borrowed));
        let got = n.acquire(ProcId(1)).unwrap();
        assert_eq!(got, borrowed);
        assert!(!n.is_borrowed(got));
    }

    #[test]
    fn reclaimed_core_not_reborrowed() {
        let mut n = two_proc_node(true);
        n.acquire(ProcId(0)).unwrap();
        n.acquire(ProcId(0)).unwrap();
        let b = n.acquire(ProcId(0)).unwrap();
        let _b2 = n.acquire(ProcId(0)).unwrap();
        assert_eq!(n.acquire(ProcId(1)), None); // posts reclaim
        n.release(ProcId(0), b).unwrap();
        // Even though the core is idle, it belongs to P1; P0 may borrow
        // it again only because P1 has not taken it yet — LeWI would
        // allow that, but then P1's acquire must still eventually win.
        let again = n.acquire(ProcId(0)).unwrap();
        assert_eq!(again, b); // borrowed once more (idle, no reclaim flag)
        assert_eq!(n.acquire(ProcId(1)), None); // reclaim posted again
        n.release(ProcId(0), again).unwrap();
        assert_eq!(n.acquire(ProcId(1)), Some(b));
    }

    #[test]
    fn release_requires_user() {
        let mut n = two_proc_node(true);
        let a = n.acquire(ProcId(0)).unwrap();
        assert!(matches!(
            n.release(ProcId(1), a),
            Err(DlbError::NotUser { .. })
        ));
        n.release(ProcId(0), a).unwrap();
        assert!(n.release(ProcId(0), a).is_err()); // double release
    }

    #[test]
    fn drom_moves_idle_cores_immediately() {
        let mut n = two_proc_node(true);
        n.set_ownership(&[3, 1]).unwrap();
        assert_eq!(n.owned_count(ProcId(0)), 3);
        assert_eq!(n.owned_count(ProcId(1)), 1);
    }

    #[test]
    fn drom_defers_busy_core_transfer() {
        let mut n = two_proc_node(true);
        let c0 = n.acquire(ProcId(1)).unwrap();
        let c1 = n.acquire(ProcId(1)).unwrap();
        // Give both of P1's cores to P0 — but P1 is running on them.
        n.set_ownership(&[3, 1]).unwrap();
        // One busy core is marked for transfer; ownership unchanged yet.
        let deferred = [c0, c1]
            .iter()
            .filter(|&&c| n.core_state(c).transfer_to == Some(ProcId(0)))
            .count();
        assert_eq!(deferred, 1);
        assert_eq!(n.owned_count(ProcId(0)), 2);
        assert_eq!(n.target_ownership(), vec![3, 1]);
        // Release applies the transfer.
        let moving = if n.core_state(c0).transfer_to.is_some() {
            c0
        } else {
            c1
        };
        n.release(ProcId(1), moving).unwrap();
        assert_eq!(n.owned_count(ProcId(0)), 3);
        n.check_invariants().unwrap();
    }

    #[test]
    fn drom_prefers_moving_idle_cores() {
        let mut n = two_proc_node(true);
        n.acquire(ProcId(0)).unwrap();
        n.acquire(ProcId(0)).unwrap();
        let borrowed = n.acquire(ProcId(0)).unwrap(); // P0 borrows one P1 core
        assert!(n.is_borrowed(borrowed));
        // P1 still has one idle core; DROM should move that one, leaving
        // the borrowed core alone (no needless deferred transfer).
        n.set_ownership(&[3, 1]).unwrap();
        assert_eq!(n.owned_count(ProcId(0)), 3);
        assert!(n.is_borrowed(borrowed)); // still P1's core, lent out
        assert!(n.core_state(borrowed).transfer_to.is_none());
        n.check_invariants().unwrap();
    }

    #[test]
    fn drom_transfer_to_current_user_is_immediate() {
        let mut n = two_proc_node(true);
        n.acquire(ProcId(0)).unwrap();
        n.acquire(ProcId(0)).unwrap();
        // P0 borrows *both* of P1's cores: no idle donor core remains.
        let b1 = n.acquire(ProcId(0)).unwrap();
        let b2 = n.acquire(ProcId(0)).unwrap();
        assert!(n.is_borrowed(b1) && n.is_borrowed(b2));
        // DROM gives one P1 core to P0: the chosen core is already being
        // used by its future owner, so the transfer applies immediately.
        n.set_ownership(&[3, 1]).unwrap();
        assert_eq!(n.owned_count(ProcId(0)), 3);
        assert_eq!([b1, b2].iter().filter(|&&c| n.is_borrowed(c)).count(), 1);
        n.check_invariants().unwrap();
    }

    #[test]
    fn drom_rejects_bad_counts() {
        let mut n = two_proc_node(true);
        assert!(matches!(
            n.set_ownership(&[4, 1]),
            Err(DlbError::BadOwnershipSum { .. })
        ));
        assert_eq!(
            n.set_ownership(&[4, 0]),
            Err(DlbError::BelowMinimum(ProcId(1)))
        );
    }

    #[test]
    fn ownership_total_is_conserved() {
        let mut n = NodeDlb::with_counts(&[10, 1, 1], true);
        n.set_ownership(&[4, 4, 4]).unwrap();
        assert_eq!(n.target_ownership().iter().sum::<usize>(), 12);
        n.set_ownership(&[1, 1, 10]).unwrap();
        assert_eq!(n.target_ownership(), vec![1, 1, 10]);
    }

    #[test]
    fn add_process_takes_a_core_from_the_largest_owner() {
        let mut n = NodeDlb::with_counts(&[5, 3], true);
        let p = n.add_process();
        assert_eq!(p, ProcId(2));
        assert_eq!(n.owned_count(ProcId(0)), 4);
        assert_eq!(n.owned_count(ProcId(1)), 3);
        assert_eq!(n.owned_count(p), 1);
        // The new process can acquire its core.
        assert!(n.acquire(p).is_some());
        n.check_invariants().unwrap();
    }

    #[test]
    fn add_process_defers_when_donor_is_busy() {
        let mut n = NodeDlb::with_counts(&[2, 1], true);
        let c0 = n.acquire(ProcId(0)).unwrap();
        let c1 = n.acquire(ProcId(0)).unwrap();
        let p = n.add_process();
        // Both of P0's cores are busy: the transfer waits for a release.
        assert_eq!(n.owned_count(p), 0);
        assert_eq!(n.target_ownership(), vec![1, 1, 1]);
        n.release(ProcId(0), c0).unwrap();
        n.release(ProcId(0), c1).unwrap();
        assert_eq!(n.owned_count(p), 1, "exactly one core moved");
        assert_eq!(n.owned_count(ProcId(0)), 1);
        n.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "spare")]
    fn add_process_panics_when_full() {
        let mut n = NodeDlb::with_counts(&[1, 1], true);
        n.add_process();
    }

    #[test]
    fn events_record_borrow_reclaim_transfer_and_ownership() {
        let mut n = two_proc_node(true);
        n.set_recording(true);
        n.acquire(ProcId(0)).unwrap();
        n.acquire(ProcId(0)).unwrap();
        let b1 = n.acquire(ProcId(0)).unwrap(); // borrow from P1
        let b2 = n.acquire(ProcId(0)).unwrap(); // borrow P1's other core
        let evs = n.drain_events();
        assert_eq!(
            evs.iter()
                .filter(|e| matches!(
                    e,
                    DlbEvent::Borrowed {
                        proc: ProcId(0),
                        owner: ProcId(1),
                        ..
                    }
                ))
                .count(),
            2
        );
        // Nothing free for P1: reclaims are posted on both borrowed cores.
        assert_eq!(n.acquire(ProcId(1)), None);
        let evs = n.drain_events();
        for core in [b1, b2] {
            assert!(evs.iter().any(
                |e| matches!(e, DlbEvent::ReclaimPosted { owner: ProcId(1), borrower: ProcId(0), core: c } if *c == core)
            ));
        }
        // DROM ownership transaction; the busy donor core transfers on
        // release.
        n.set_ownership(&[1, 3]).unwrap();
        let evs = n.drain_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, DlbEvent::OwnershipSet { counts } if counts == &vec![1, 3])));
        n.release(ProcId(0), 0).unwrap();
        let evs = n.drain_events();
        assert!(evs.iter().any(|e| matches!(
            e,
            DlbEvent::TransferApplied {
                from: ProcId(0),
                to: ProcId(1),
                ..
            }
        )));
        n.check_invariants().unwrap();
    }

    #[test]
    fn recording_off_buffers_nothing() {
        let mut n = two_proc_node(true);
        n.acquire(ProcId(0)).unwrap();
        n.acquire(ProcId(0)).unwrap();
        n.acquire(ProcId(0)).unwrap();
        n.set_ownership(&[3, 1]).unwrap();
        assert!(n.drain_events().is_empty());
    }

    #[test]
    fn retire_moves_idle_cores_to_smallest_survivor() {
        let mut n = NodeDlb::with_counts(&[3, 2, 1], true);
        let moved = n.retire_process(ProcId(1)).unwrap();
        assert_eq!(moved, 2);
        assert!(n.is_retired(ProcId(1)));
        assert_eq!(n.owned_count(ProcId(1)), 0);
        // Both cores went to P2 (fewest cores: 1 vs P0's 3).
        assert_eq!(n.owned_count(ProcId(2)), 3);
        assert_eq!(n.owned_count(ProcId(0)), 3);
        assert_eq!(n.acquire(ProcId(1)), None, "retired proc cannot acquire");
        n.check_invariants().unwrap();
    }

    #[test]
    fn retire_defers_transfer_of_busy_core_until_release() {
        let mut n = two_proc_node(true);
        let c0 = n.acquire(ProcId(1)).unwrap();
        let c1 = n.acquire(ProcId(1)).unwrap();
        n.retire_process(ProcId(1)).unwrap();
        // P1's final tasks still run; ownership transfers on release.
        assert_eq!(n.owned_count(ProcId(0)), 2);
        assert_eq!(n.target_ownership(), vec![4, 0]);
        n.release(ProcId(1), c0).unwrap();
        n.release(ProcId(1), c1).unwrap();
        assert_eq!(n.owned_count(ProcId(0)), 4);
        n.check_invariants().unwrap();
    }

    #[test]
    fn set_ownership_allows_zero_only_for_retired() {
        let mut n = NodeDlb::with_counts(&[2, 1, 1], true);
        n.retire_process(ProcId(2)).unwrap();
        n.set_ownership(&[3, 1, 0]).unwrap();
        assert_eq!(n.target_ownership(), vec![3, 1, 0]);
        // Zero for a living proc is still rejected...
        assert_eq!(
            n.set_ownership(&[4, 0, 0]),
            Err(DlbError::BelowMinimum(ProcId(1)))
        );
        // ...and a retired proc cannot be given cores back.
        assert_eq!(
            n.set_ownership(&[2, 1, 1]),
            Err(DlbError::Retired(ProcId(2)))
        );
    }

    #[test]
    fn retire_errors() {
        let mut n = two_proc_node(true);
        n.retire_process(ProcId(1)).unwrap();
        assert_eq!(
            n.retire_process(ProcId(1)),
            Err(DlbError::Retired(ProcId(1)))
        );
        assert_eq!(n.retire_process(ProcId(0)), Err(DlbError::NoSurvivor));
    }

    #[test]
    fn helper_rank_minimum_one_core() {
        // Paper: each helper rank starts with one owned core; appranks
        // split the rest. MareNostrum node: 48 cores, 2 appranks + 4
        // helpers → 22 cores per apprank.
        let n = NodeDlb::with_counts(&[22, 22, 1, 1, 1, 1], true);
        assert_eq!(n.num_cores(), 48);
        assert_eq!(n.owned_count(ProcId(2)), 1);
    }
}
