//! Property tests: under arbitrary interleavings of acquire / release /
//! set_ownership, the node never loses or duplicates a core, never lets
//! two processes use one core, and always converges when drained.

use proptest::prelude::*;
use tlb_dlb::{NodeDlb, ProcId};

fn check_global_invariants(node: &NodeDlb, procs: usize, holding: &[Vec<usize>]) {
    node.check_invariants().unwrap();
    // Each core owned by exactly one process; totals conserved.
    let total_owned: usize = (0..procs).map(|p| node.owned_count(ProcId(p))).sum();
    assert_eq!(total_owned, node.num_cores(), "ownership not conserved");
    // Users match our book-keeping.
    for (p, held) in holding.iter().enumerate() {
        assert_eq!(
            node.used_count(ProcId(p)),
            held.len(),
            "used_count mismatch for P{p}"
        );
        for &c in held {
            assert_eq!(node.core_state(c).user, Some(ProcId(p)));
        }
    }
    // No core used by two processes (holding lists are disjoint).
    let mut seen = vec![false; node.num_cores()];
    for held in holding {
        for &c in held {
            assert!(!seen[c], "core {c} held twice");
            seen[c] = true;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_ops_preserve_invariants(
        procs in 2usize..5,
        ops_seed in any::<u64>(),
    ) {
        let cores = 8usize;
        // Derive an op sequence deterministically from the seed via the
        // strategy's own value tree is awkward; instead generate ops inline.
        let mut rng_state = ops_seed;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) as usize
        };
        let mut counts = vec![1usize; procs];
        let mut left = cores - procs;
        let mut i = 0;
        while left > 0 {
            counts[i % procs] += 1;
            left -= 1;
            i += 1;
        }
        let mut node = NodeDlb::with_counts(&counts, true);
        let mut holding: Vec<Vec<usize>> = vec![Vec::new(); procs];

        for _ in 0..200 {
            match next() % 4 {
                0 => {
                    let p = next() % procs;
                    if let Some(c) = node.acquire(ProcId(p)) {
                        holding[p].push(c);
                    }
                }
                1 => {
                    let p = next() % procs;
                    if !holding[p].is_empty() {
                        let idx = next() % holding[p].len();
                        let c = holding[p].swap_remove(idx);
                        node.release(ProcId(p), c).unwrap();
                    }
                }
                2 => {
                    // Random valid ownership vector.
                    let mut v = vec![1usize; procs];
                    let mut left = cores - procs;
                    while left > 0 {
                        v[next() % procs] += 1;
                        left -= 1;
                    }
                    node.set_ownership(&v).unwrap();
                    prop_assert_eq!(node.target_ownership()[..procs].iter().sum::<usize>(), cores);
                }
                _ => {
                    let on = node.lewi_enabled();
                    node.set_lewi(!on);
                }
            }
            check_global_invariants(&node, procs, &holding);
        }

        // Drain: release everything, then the last ownership target must be
        // reachable (all transfers applied) and every core idle.
        for p in 0..procs {
            for c in std::mem::take(&mut holding[p]) {
                node.release(ProcId(p), c).unwrap();
            }
        }
        check_global_invariants(&node, procs, &holding);
        let target = node.target_ownership();
        let actual: Vec<usize> = (0..procs).map(|p| node.owned_count(ProcId(p))).collect();
        prop_assert_eq!(&actual[..], &target[..procs], "deferred transfers not applied after drain");
        prop_assert_eq!(node.busy_count(), 0);
    }

    /// With LeWI on and a single active process, it can always use every
    /// core of the node (full-node utilisation of an imbalanced load).
    #[test]
    fn single_active_process_gets_whole_node(procs in 2usize..5) {
        let cores = 8usize;
        let mut counts = vec![1usize; procs];
        counts[0] = cores - (procs - 1);
        let mut node = NodeDlb::with_counts(&counts, true);
        let active = procs - 1; // the *smallest* owner borrows everything
        let mut got = 0;
        while node.acquire(ProcId(active)).is_some() {
            got += 1;
        }
        prop_assert_eq!(got, cores);
        prop_assert_eq!(node.used_count(ProcId(active)), cores);
    }
}
