//! Randomized tests: under arbitrary interleavings of acquire / release /
//! set_ownership, the node never loses or duplicates a core, never lets
//! two processes use one core, and always converges when drained.
//! Seeded `tlb-rng` loops stand in for proptest (no registry deps).

use tlb_dlb::{NodeDlb, ProcId};
use tlb_rng::Rng;

fn check_global_invariants(node: &NodeDlb, procs: usize, holding: &[Vec<usize>]) {
    node.check_invariants().unwrap();
    // Each core owned by exactly one process; totals conserved.
    let total_owned: usize = (0..procs).map(|p| node.owned_count(ProcId(p))).sum();
    assert_eq!(total_owned, node.num_cores(), "ownership not conserved");
    // Users match our book-keeping.
    for (p, held) in holding.iter().enumerate() {
        assert_eq!(
            node.used_count(ProcId(p)),
            held.len(),
            "used_count mismatch for P{p}"
        );
        for &c in held {
            assert_eq!(node.core_state(c).user, Some(ProcId(p)));
        }
    }
    // No core used by two processes (holding lists are disjoint).
    let mut seen = vec![false; node.num_cores()];
    for held in holding {
        for &c in held {
            assert!(!seen[c], "core {c} held twice");
            seen[c] = true;
        }
    }
}

#[test]
fn random_ops_preserve_invariants() {
    let root = Rng::seed_from_u64(0xD1B_0001);
    for case in 0..64 {
        let mut rng = root.split_u64(case as u64);
        let procs = rng.range_usize(2, 5);
        let cores = 8usize;
        let mut counts = vec![1usize; procs];
        let mut left = cores - procs;
        let mut i = 0;
        while left > 0 {
            counts[i % procs] += 1;
            left -= 1;
            i += 1;
        }
        let mut node = NodeDlb::with_counts(&counts, true);
        let mut holding: Vec<Vec<usize>> = vec![Vec::new(); procs];

        for _ in 0..200 {
            match rng.range_u64(0, 4) {
                0 => {
                    let p = rng.range_usize(0, procs);
                    if let Some(c) = node.acquire(ProcId(p)) {
                        holding[p].push(c);
                    }
                }
                1 => {
                    let p = rng.range_usize(0, procs);
                    if !holding[p].is_empty() {
                        let idx = rng.range_usize(0, holding[p].len());
                        let c = holding[p].swap_remove(idx);
                        node.release(ProcId(p), c).unwrap();
                    }
                }
                2 => {
                    // Random valid ownership vector.
                    let mut v = vec![1usize; procs];
                    let mut left = cores - procs;
                    while left > 0 {
                        v[rng.range_usize(0, procs)] += 1;
                        left -= 1;
                    }
                    node.set_ownership(&v).unwrap();
                    assert_eq!(
                        node.target_ownership()[..procs].iter().sum::<usize>(),
                        cores,
                        "case {case}"
                    );
                }
                _ => {
                    let on = node.lewi_enabled();
                    node.set_lewi(!on);
                }
            }
            check_global_invariants(&node, procs, &holding);
        }

        // Drain: release everything, then the last ownership target must be
        // reachable (all transfers applied) and every core idle.
        for (p, held) in holding.iter_mut().enumerate() {
            for c in std::mem::take(held) {
                node.release(ProcId(p), c).unwrap();
            }
        }
        check_global_invariants(&node, procs, &holding);
        let target = node.target_ownership();
        let actual: Vec<usize> = (0..procs).map(|p| node.owned_count(ProcId(p))).collect();
        assert_eq!(
            &actual[..],
            &target[..procs],
            "case {case}: deferred transfers not applied after drain"
        );
        assert_eq!(node.busy_count(), 0, "case {case}");
    }
}

/// With LeWI on and a single active process, it can always use every
/// core of the node (full-node utilisation of an imbalanced load).
#[test]
fn single_active_process_gets_whole_node() {
    for procs in 2usize..5 {
        let cores = 8usize;
        let mut counts = vec![1usize; procs];
        counts[0] = cores - (procs - 1);
        let mut node = NodeDlb::with_counts(&counts, true);
        let active = procs - 1; // the *smallest* owner borrows everything
        let mut got = 0;
        while node.acquire(ProcId(active)).is_some() {
            got += 1;
        }
        assert_eq!(got, cores);
        assert_eq!(node.used_count(ProcId(active)), cores);
    }
}
