//! `tlb-trace`: structured, deterministic, low-overhead event tracing
//! and runtime counters for the whole runtime stack.
//!
//! The paper reads every headline result (Figs. 5, 9, 11; the §5.4.2
//! solver-cost table) off Paraver traces. This crate is our equivalent
//! telemetry layer: per-task lifecycle events with causal edges, DLB
//! events (LeWI lend/borrow/reclaim, DROM ownership transactions, TALP
//! window snapshots), global-solver records, and a counters registry.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Events carry *virtual* timestamps ([`SimTime`])
//!    and are buffered per stream with sequence numbers; [`TraceLog::merged`]
//!    orders them by `(time, stream, seq)`, so the merged event list — and
//!    therefore every export — is bitwise-identical across smprt thread
//!    counts and host machines. Anything wall-clock (solver wall time,
//!    pool region profiles) lives in the [`Counters`] gauges or in bench
//!    JSON, never in the event stream.
//! 2. **Near-zero cost when disabled.** Recording is gated behind
//!    [`TraceConfig`]; a disabled trace takes one branch per would-be
//!    event and allocates nothing.
//! 3. **Two export formats**, both via `tlb-json` / plain strings:
//!    Chrome trace-event JSON ([`chrome::chrome_trace`], loadable in
//!    Perfetto / `chrome://tracing`) and long-format CSV rows compatible
//!    with the existing `trace_to_csv` schema ([`Event::csv_fields`]).

mod chrome;
mod counters;
mod event;

pub use chrome::{chrome_trace, chrome_trace_string};
pub use counters::Counters;
pub use event::{
    DecisionReason, Event, EventKind, FallbackReason, PortfolioCandidate, PortfolioRecord,
    SolverRecord, TaskKey, TraceLog, GLOBAL_STREAM,
};

/// Which event families a trace records. The sim derives this from its
/// single `trace: bool` switch today, but the gates are kept separate so
/// sweeps can, e.g., keep counters while dropping per-task events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Per-task lifecycle events (created/ready/decision/offloaded/
    /// started/completed).
    pub lifecycle: bool,
    /// DLB events: LeWI borrows/reclaims, DROM transactions, TALP windows.
    pub dlb: bool,
    /// Global-solver invocation records.
    pub solver: bool,
    /// Counters registry updates.
    pub counters: bool,
    /// Fault-injection events: straggler bursts, worker kills, message
    /// drops/failovers, solver outages and fallbacks.
    pub fault: bool,
    /// Solver-portfolio events: per-tick race records and winner picks.
    pub portfolio: bool,
}

impl TraceConfig {
    /// Everything on.
    pub fn all() -> Self {
        TraceConfig {
            lifecycle: true,
            dlb: true,
            solver: true,
            counters: true,
            fault: true,
            portfolio: true,
        }
    }

    /// Everything off (the near-zero-cost path for large sweeps).
    pub fn off() -> Self {
        TraceConfig {
            lifecycle: false,
            dlb: false,
            solver: false,
            counters: false,
            fault: false,
            portfolio: false,
        }
    }

    /// True if any event family records.
    pub fn any(&self) -> bool {
        self.lifecycle || self.dlb || self.solver || self.counters || self.fault || self.portfolio
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_gates() {
        assert!(TraceConfig::all().any());
        assert!(!TraceConfig::off().any());
        assert_eq!(TraceConfig::default(), TraceConfig::off());
        let portfolio_only = TraceConfig {
            portfolio: true,
            ..TraceConfig::off()
        };
        assert!(portfolio_only.any());
    }
}
