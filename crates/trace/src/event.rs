//! Event schema and the per-stream buffered log with deterministic merge.

use tlb_des::SimTime;

/// Identity of a task across the whole run. `TaskGraph`s are rebuilt per
/// iteration, so the raw task id alone is ambiguous — the triple is not.
///
/// Fields are `u32`: hot paths copy millions of events into the stream
/// buffers, so the schema keeps every id narrow (4 G iterations, appranks
/// or tasks per iteration is far beyond any simulated run).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskKey {
    /// Iteration the task belongs to (0-based).
    pub iteration: u32,
    /// Apprank that created the task.
    pub apprank: u32,
    /// Task id inside that iteration's graph.
    pub task: u32,
}

/// Why the offload scheduler placed a task where it did (Fig. 5's
/// decision taxonomy: locality-hit / adjacent-spill / queued / stolen).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionReason {
    /// The home node was under its queue-depth threshold.
    LocalityHit,
    /// Home was saturated; spilled to the least-pressured adjacent node.
    AdjacentSpill,
    /// Every candidate was saturated; the task went to the hold queue.
    Queued,
    /// A previously held task was taken by an idle worker.
    Stolen,
}

impl DecisionReason {
    /// Stable lowercase name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            DecisionReason::LocalityHit => "locality_hit",
            DecisionReason::AdjacentSpill => "adjacent_spill",
            DecisionReason::Queued => "queued",
            DecisionReason::Stolen => "stolen",
        }
    }
}

/// Why a global-solver invocation was answered by the degradation ladder
/// instead of a fresh LP solution (the fault family's `solver_fallback`
/// event payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// Simplex hit its pivot budget (also used for injected timeouts).
    IterationLimit,
    /// The allocation program was reported infeasible mid-run.
    Infeasible,
    /// The allocation program was reported unbounded mid-run.
    Unbounded,
    /// Any other solver error.
    Other,
}

impl FallbackReason {
    /// Stable lowercase name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            FallbackReason::IterationLimit => "iteration_limit",
            FallbackReason::Infeasible => "infeasible",
            FallbackReason::Unbounded => "unbounded",
            FallbackReason::Other => "other",
        }
    }

    /// Small stable code used in the CSV `value` column.
    pub fn code(&self) -> u32 {
        match self {
            FallbackReason::IterationLimit => 0,
            FallbackReason::Infeasible => 1,
            FallbackReason::Unbounded => 2,
            FallbackReason::Other => 3,
        }
    }
}

/// Payload of one global-solver invocation: demand vector in, per-apprank
/// core allocation out, with simplex iteration count and the modelled
/// (virtual) solve cost charged to the simulation. Boxed inside
/// [`EventKind`] — solver events are rare and their vectors would
/// otherwise inflate every buffered event.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverRecord {
    /// Per-apprank demand (core·seconds of pending work).
    pub demand: Vec<f64>,
    /// Cores allocated to each apprank, summed over its nodes.
    pub cores: Vec<usize>,
    /// Simplex pivots the allocation took.
    pub simplex_iterations: usize,
    /// Objective value of the returned allocation.
    pub objective: f64,
    /// Virtual solve cost charged to the hosting node.
    pub modelled_cost: SimTime,
}

/// One raced strategy's outcome inside a [`PortfolioRecord`].
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioCandidate {
    /// Stable strategy code (`tlb_portfolio::Strategy::code`).
    pub strategy: u32,
    /// Strategy name (static, from the portfolio crate).
    pub name: &'static str,
    /// Shared portfolio score; `-1.0` when the strategy failed or timed
    /// out (scores are non-negative up to the tiny keep-local tiebreak,
    /// so the sentinel is unambiguous).
    pub score: f64,
    /// Modelled virtual solve cost in seconds (uncapped).
    pub cost_s: f64,
    /// True when the modelled cost exceeded the race budget.
    pub timed_out: bool,
}

/// Payload of one portfolio race: every raced strategy in priority order
/// with its score and modelled cost. Boxed inside [`EventKind`] like
/// [`SolverRecord`].
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioRecord {
    /// Raced candidates in priority order.
    pub candidates: Vec<PortfolioCandidate>,
    /// Race budget in seconds.
    pub budget_s: f64,
}

/// One structured trace event. All payloads are derived from virtual
/// simulation state only — never wall clocks — so the event stream is
/// reproducible bit-for-bit. Ids are `u32`/`i32` to keep the enum small:
/// fine-grained runs buffer hundreds of thousands of these, and the copy
/// into the stream buffers is the dominant cost of tracing.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Task submitted to its iteration graph (`cost` = nominal seconds).
    TaskCreated { key: TaskKey, cost: f64 },
    /// All dependencies satisfied; the task entered a ready queue.
    TaskReady { key: TaskKey },
    /// Offload-scheduler decision, with the core counts that justified
    /// it. `chosen_node < 0` means the task was held (queued).
    SchedDecision {
        key: TaskKey,
        reason: DecisionReason,
        chosen_node: i32,
        home_node: u32,
        home_queued: u32,
        home_owned: u32,
        chosen_queued: i32,
        chosen_owned: i32,
    },
    /// Task sent to a non-home node (eagerly, or late via stealing).
    TaskOffloaded {
        key: TaskKey,
        from_node: u32,
        to_node: u32,
        stolen: bool,
    },
    /// Task began executing on a core.
    TaskStarted {
        key: TaskKey,
        node: u32,
        proc: u32,
        stolen: bool,
    },
    /// Task finished executing.
    TaskCompleted { key: TaskKey, node: u32, proc: u32 },
    /// LeWI: `proc` borrowed an idle core lent by `owner`.
    LewiBorrow {
        node: u32,
        proc: u32,
        core: u32,
        owner: u32,
    },
    /// LeWI: `owner` posted a reclaim on a core `borrower` is using.
    LewiReclaim {
        node: u32,
        core: u32,
        owner: u32,
        borrower: u32,
    },
    /// DROM: a deferred ownership transfer was applied at core release.
    DromTransfer {
        node: u32,
        core: u32,
        from: u32,
        to: u32,
    },
    /// DROM: an ownership transaction set per-proc core counts on a node.
    DromOwnership { node: u32, counts: Vec<usize> },
    /// TALP: per-proc busy-core·second deltas collected on a local tick.
    TalpWindow { node: u32, busy: Vec<f64> },
    /// Global solver invocation (boxed payload — see [`SolverRecord`]).
    SolverInvoked(Box<SolverRecord>),
    /// A helper process was spawned for `apprank` on `node`.
    HelperSpawned { apprank: u32, node: u32 },
    /// All appranks finished iteration `iteration`.
    IterationEnd { iteration: u32 },
    /// Fault injection: `node` entered a straggler burst; its speed is
    /// multiplied by `factor` (< 1) until the matching [`EventKind::StragglerEnd`].
    StragglerStart { node: u32, factor: f64 },
    /// Fault recovery: a straggler burst on `node` ended.
    StragglerEnd { node: u32 },
    /// Fault injection: worker `proc` on `node` (a helper of `apprank`)
    /// died; `requeued` queued/in-flight tasks were re-enqueued at home.
    WorkerKilled {
        apprank: u32,
        node: u32,
        proc: u32,
        requeued: u32,
    },
    /// Fault injection: offload message for `key` towards `to_node` was
    /// dropped on send attempt `attempt` (0-based) and will be retried.
    MessageDropped {
        key: TaskKey,
        to_node: u32,
        attempt: u32,
    },
    /// Fault absorption: retries for `key` towards `to_node` were
    /// exhausted after `attempts` sends; the task runs at home instead.
    MessageFailover {
        key: TaskKey,
        to_node: u32,
        attempts: u32,
    },
    /// Fault injection/recovery: a global-solver outage window opened
    /// (`active`) or closed (`!active`).
    SolverOutage { active: bool },
    /// Fault absorption: a solver invocation failed and the runtime fell
    /// back to the local-convergence / last-good allocation.
    SolverFallback { reason: FallbackReason },
    /// Portfolio: one race of the solver portfolio completed (boxed
    /// payload — see [`PortfolioRecord`]).
    PortfolioSolve(Box<PortfolioRecord>),
    /// Portfolio: the deterministic `(score, priority)` pick. `raced` is
    /// the number of strategies that took part.
    PortfolioPick {
        strategy: u32,
        name: &'static str,
        score: f64,
        raced: u32,
    },
}

impl EventKind {
    /// Stable snake_case name used as the CSV `kind` and Chrome event name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TaskCreated { .. } => "task_created",
            EventKind::TaskReady { .. } => "task_ready",
            EventKind::SchedDecision { .. } => "sched_decision",
            EventKind::TaskOffloaded { .. } => "task_offloaded",
            EventKind::TaskStarted { .. } => "task_started",
            EventKind::TaskCompleted { .. } => "task_completed",
            EventKind::LewiBorrow { .. } => "lewi_borrow",
            EventKind::LewiReclaim { .. } => "lewi_reclaim",
            EventKind::DromTransfer { .. } => "drom_transfer",
            EventKind::DromOwnership { .. } => "drom_ownership",
            EventKind::TalpWindow { .. } => "talp_window",
            EventKind::SolverInvoked(..) => "solver_invoked",
            EventKind::HelperSpawned { .. } => "helper_spawned",
            EventKind::IterationEnd { .. } => "iteration_end_ev",
            EventKind::StragglerStart { .. } => "straggler_start",
            EventKind::StragglerEnd { .. } => "straggler_end",
            EventKind::WorkerKilled { .. } => "worker_killed",
            EventKind::MessageDropped { .. } => "message_dropped",
            EventKind::MessageFailover { .. } => "message_failover",
            EventKind::SolverOutage { .. } => "solver_outage",
            EventKind::SolverFallback { .. } => "solver_fallback",
            EventKind::PortfolioSolve(..) => "portfolio_solve",
            EventKind::PortfolioPick { .. } => "portfolio_pick",
        }
    }
}

/// A recorded event with its virtual timestamp and merge key.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Virtual time the event occurred.
    pub at: SimTime,
    /// Stream the event was buffered on (0 = global, `1 + node` = node).
    pub stream: u32,
    /// Per-stream sequence number (records intra-stream causal order).
    pub seq: u32,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Project the event onto the long-format CSV schema
    /// `(kind, node, proc, apprank, value)` with `-1` sentinels for
    /// fields that do not apply (time is added by the caller).
    pub fn csv_fields(&self) -> (&'static str, i64, i64, i64, f64) {
        let name = self.kind.name();
        match &self.kind {
            EventKind::TaskCreated { key, cost } => (name, -1, -1, key.apprank as i64, *cost),
            EventKind::TaskReady { key } => (name, -1, -1, key.apprank as i64, key.task as f64),
            EventKind::SchedDecision {
                key,
                chosen_node,
                home_node,
                ..
            } => {
                let node = if *chosen_node >= 0 {
                    *chosen_node as i64
                } else {
                    *home_node as i64
                };
                (name, node, -1, key.apprank as i64, key.task as f64)
            }
            EventKind::TaskOffloaded { key, to_node, .. } => (
                name,
                *to_node as i64,
                -1,
                key.apprank as i64,
                key.task as f64,
            ),
            EventKind::TaskStarted {
                key, node, proc, ..
            } => (
                name,
                *node as i64,
                *proc as i64,
                key.apprank as i64,
                key.task as f64,
            ),
            EventKind::TaskCompleted { key, node, proc } => (
                name,
                *node as i64,
                *proc as i64,
                key.apprank as i64,
                key.task as f64,
            ),
            EventKind::LewiBorrow {
                node, proc, core, ..
            } => (name, *node as i64, *proc as i64, -1, *core as f64),
            EventKind::LewiReclaim {
                node, core, owner, ..
            } => (name, *node as i64, *owner as i64, -1, *core as f64),
            EventKind::DromTransfer { node, core, to, .. } => {
                (name, *node as i64, *to as i64, -1, *core as f64)
            }
            EventKind::DromOwnership { node, counts } => (
                name,
                *node as i64,
                -1,
                -1,
                counts.iter().sum::<usize>() as f64,
            ),
            EventKind::TalpWindow { node, busy } => {
                (name, *node as i64, -1, -1, busy.iter().sum::<f64>())
            }
            EventKind::SolverInvoked(rec) => (name, -1, -1, -1, rec.objective),
            EventKind::HelperSpawned { apprank, node } => {
                (name, *node as i64, -1, *apprank as i64, 1.0)
            }
            EventKind::IterationEnd { iteration } => (name, -1, -1, -1, *iteration as f64),
            EventKind::StragglerStart { node, factor } => (name, *node as i64, -1, -1, *factor),
            EventKind::StragglerEnd { node } => (name, *node as i64, -1, -1, 1.0),
            EventKind::WorkerKilled {
                apprank,
                node,
                proc,
                requeued,
            } => (
                name,
                *node as i64,
                *proc as i64,
                *apprank as i64,
                *requeued as f64,
            ),
            EventKind::MessageDropped {
                key,
                to_node,
                attempt,
            } => (
                name,
                *to_node as i64,
                -1,
                key.apprank as i64,
                *attempt as f64,
            ),
            EventKind::MessageFailover {
                key,
                to_node,
                attempts,
            } => (
                name,
                *to_node as i64,
                -1,
                key.apprank as i64,
                *attempts as f64,
            ),
            EventKind::SolverOutage { active } => {
                (name, -1, -1, -1, if *active { 1.0 } else { 0.0 })
            }
            EventKind::SolverFallback { reason } => (name, -1, -1, -1, reason.code() as f64),
            EventKind::PortfolioSolve(rec) => (name, -1, -1, -1, rec.candidates.len() as f64),
            EventKind::PortfolioPick { strategy, .. } => (name, -1, -1, -1, *strategy as f64),
        }
    }
}

/// Per-stream buffered event log.
///
/// Each producer (the global scheduler, each node) appends to its own
/// stream in O(1); [`TraceLog::merged`] produces the canonical total
/// order `(at, stream, seq)`. Because both the virtual timestamps and
/// the per-stream append order come from the deterministic simulation,
/// the merged list is identical across runs and thread counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLog {
    streams: Vec<Vec<Event>>,
}

/// Stream id for global events (solver, iteration boundaries).
pub const GLOBAL_STREAM: usize = 0;

impl TraceLog {
    /// Empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Stream id for events originating on `node`.
    pub fn node_stream(node: usize) -> usize {
        1 + node
    }

    /// Append an event to `stream` at virtual time `at`.
    pub fn push(&mut self, stream: usize, at: SimTime, kind: EventKind) {
        if self.streams.len() <= stream {
            self.streams.resize_with(stream + 1, Vec::new);
        }
        let seq = self.streams[stream].len() as u32;
        self.streams[stream].push(Event {
            at,
            stream: stream as u32,
            seq,
            kind,
        });
    }

    /// Total recorded events across all streams.
    pub fn len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events in the canonical deterministic order
    /// `(at, stream, seq)`.
    pub fn merged(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self.streams.iter().flatten().cloned().collect();
        all.sort_by_key(|a| (a.at, a.stream, a.seq));
        all
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.streams
            .iter()
            .flatten()
            .filter(|e| pred(&e.kind))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(task: u32) -> TaskKey {
        TaskKey {
            iteration: 0,
            apprank: 0,
            task,
        }
    }

    #[test]
    fn merge_orders_by_time_then_stream_then_seq() {
        let mut log = TraceLog::new();
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_millis(1);
        // Push out of time order across streams.
        log.push(2, t1, EventKind::TaskReady { key: key(3) });
        log.push(1, t0, EventKind::TaskReady { key: key(1) });
        log.push(1, t1, EventKind::TaskReady { key: key(2) });
        log.push(0, t0, EventKind::IterationEnd { iteration: 0 });
        let merged = log.merged();
        let order: Vec<(u64, u32, u32)> = merged
            .iter()
            .map(|e| (e.at.as_nanos(), e.stream, e.seq))
            .collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged[0].stream, 0); // t0 stream0 before t0 stream1
        assert_eq!(merged[1].stream, 1);
    }

    #[test]
    fn seq_preserves_intra_stream_order_at_same_instant() {
        let mut log = TraceLog::new();
        for task in 0..10 {
            log.push(1, SimTime::ZERO, EventKind::TaskReady { key: key(task) });
        }
        let merged = log.merged();
        for (i, e) in merged.iter().enumerate() {
            match &e.kind {
                EventKind::TaskReady { key } => assert_eq!(key.task as usize, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn csv_fields_use_sentinels() {
        let ev = Event {
            at: SimTime::ZERO,
            stream: 0,
            seq: 0,
            kind: EventKind::IterationEnd { iteration: 2 },
        };
        let (name, node, proc, apprank, value) = ev.csv_fields();
        assert_eq!(name, "iteration_end_ev");
        assert_eq!((node, proc, apprank), (-1, -1, -1));
        assert_eq!(value, 2.0);
    }

    #[test]
    fn count_and_len_agree() {
        let mut log = TraceLog::new();
        log.push(0, SimTime::ZERO, EventKind::IterationEnd { iteration: 0 });
        log.push(3, SimTime::ZERO, EventKind::TaskReady { key: key(0) });
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert_eq!(
            log.count(|k| matches!(k, EventKind::IterationEnd { .. })),
            1
        );
    }
}
