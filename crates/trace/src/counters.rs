//! Ordered registry of monotonic counters and gauges.

use tlb_json::Value;

/// Runtime counters: monotonic `u64` counts plus `f64` gauges.
///
/// Counts record deterministic facts (tasks offloaded, LeWI lends,
/// solver invocations); gauges hold measurements that may be wall-clock
/// derived (solver wall milliseconds) and are therefore kept out of the
/// deterministic event stream. Lookup is linear — the registry holds a
/// few dozen names, and the hot path is a bump of an existing entry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    counts: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
}

impl Counters {
    /// Empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Add `delta` to counter `name`, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(entry) = self.counts.iter_mut().find(|(n, _)| n == name) {
            entry.1 += delta;
        } else {
            self.counts.push((name.to_string(), delta));
        }
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn count(&self, name: &str) -> u64 {
        self.counts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(entry) = self.gauges.iter_mut().find(|(n, _)| n == name) {
            entry.1 = value;
        } else {
            self.gauges.push((name.to_string(), value));
        }
    }

    /// Add `delta` to gauge `name` (accumulating measurement).
    pub fn add_gauge(&mut self, name: &str, delta: f64) {
        let current = self.gauge(name);
        self.set_gauge(name, current + delta);
    }

    /// Current value of gauge `name` (0.0 if never touched).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.gauges.is_empty()
    }

    /// Counters sorted by name (stable dump order).
    pub fn sorted_counts(&self) -> Vec<(String, u64)> {
        let mut out = self.counts.clone();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Gauges sorted by name (stable dump order).
    pub fn sorted_gauges(&self) -> Vec<(String, f64)> {
        let mut out = self.gauges.clone();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// JSON object `{ "counters": {...}, "gauges": {...} }` with keys
    /// sorted by name, so the dump is independent of touch order.
    pub fn to_json(&self) -> Value {
        let counts: Vec<(String, Value)> = self
            .sorted_counts()
            .into_iter()
            .map(|(n, v)| (n, Value::from(v)))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .sorted_gauges()
            .into_iter()
            .map(|(n, v)| (n, Value::from(v)))
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counts)),
            ("gauges".to_string(), Value::Object(gauges)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_default_to_zero() {
        let mut c = Counters::new();
        assert_eq!(c.count("tasks_offloaded"), 0);
        c.inc("tasks_offloaded");
        c.add("tasks_offloaded", 4);
        assert_eq!(c.count("tasks_offloaded"), 5);
        assert!(!c.is_empty());
    }

    #[test]
    fn gauges_set_and_accumulate() {
        let mut c = Counters::new();
        c.set_gauge("solver_wall_ms", 1.5);
        c.add_gauge("solver_wall_ms", 0.5);
        assert!((c.gauge("solver_wall_ms") - 2.0).abs() < 1e-12);
        assert_eq!(c.gauge("missing"), 0.0);
    }

    #[test]
    fn json_dump_is_sorted_regardless_of_touch_order() {
        let mut a = Counters::new();
        a.inc("zeta");
        a.inc("alpha");
        let mut b = Counters::new();
        b.inc("alpha");
        b.inc("zeta");
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact()
        );
        let json = a.to_json().to_string_compact();
        assert!(json.contains("\"alpha\":1"));
        assert!(json.contains("\"zeta\":1"));
    }
}
