//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Mapping: `pid` = node, `tid` = worker proc on that node (instants
//! without a worker use tid 0). Task executions become "X" complete
//! events paired from started/completed; everything else becomes an "i"
//! instant carrying its payload in `args`. Timestamps are virtual
//! nanoseconds converted to the format's microseconds, so the output is
//! bitwise-identical across runs, hosts, and thread counts.

use crate::event::{Event, EventKind, TaskKey};
use std::collections::HashMap;
use tlb_des::SimTime;
use tlb_json::Value;

/// Global-track pid used for solver / iteration instants.
const GLOBAL_PID: i64 = -1;

fn micros(t: SimTime) -> Value {
    Value::Float(t.as_nanos() as f64 / 1000.0)
}

fn key_args(key: &TaskKey) -> Vec<(String, Value)> {
    vec![
        ("iteration".to_string(), Value::Int(key.iteration as i64)),
        ("apprank".to_string(), Value::Int(key.apprank as i64)),
        ("task".to_string(), Value::Int(key.task as i64)),
    ]
}

fn instant(name: String, at: SimTime, pid: i64, tid: i64, args: Vec<(String, Value)>) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str(name)),
        ("ph".to_string(), Value::from("i")),
        ("ts".to_string(), micros(at)),
        ("pid".to_string(), Value::Int(pid)),
        ("tid".to_string(), Value::Int(tid)),
        ("s".to_string(), Value::from("t")),
        ("args".to_string(), Value::Object(args)),
    ])
}

fn metadata(name: &str, pid: i64, tid: Option<i64>, label: String) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::from(name)),
        ("ph".to_string(), Value::from("M")),
        ("pid".to_string(), Value::Int(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Value::Int(tid)));
    }
    fields.push((
        "args".to_string(),
        Value::Object(vec![("name".to_string(), Value::Str(label))]),
    ));
    Value::Object(fields)
}

/// Build the Chrome trace-event JSON document for `events` (which must
/// already be in the canonical merged order). `worker_apprank[node][proc]`
/// labels the per-worker tracks; it may be empty, in which case only the
/// events themselves are emitted.
pub fn chrome_trace(events: &[Event], worker_apprank: &[Vec<usize>]) -> Value {
    let mut out: Vec<Value> = Vec::new();
    // Track metadata first: one process per node plus the global track.
    if !worker_apprank.is_empty() {
        out.push(metadata(
            "process_name",
            GLOBAL_PID,
            None,
            "global".to_string(),
        ));
        for (node, workers) in worker_apprank.iter().enumerate() {
            out.push(metadata(
                "process_name",
                node as i64,
                None,
                format!("node {node}"),
            ));
            for (proc, apprank) in workers.iter().enumerate() {
                out.push(metadata(
                    "thread_name",
                    node as i64,
                    Some(proc as i64),
                    format!("proc {proc} (apprank {apprank})"),
                ));
            }
        }
    }
    // Pair started/completed into "X" complete events; everything else
    // becomes an instant. The map is only ever looked up by key, never
    // iterated, so it cannot leak nondeterminism into the output.
    let mut open: HashMap<TaskKey, (SimTime, u32, u32, bool)> = HashMap::new();
    for ev in events {
        match &ev.kind {
            EventKind::TaskStarted {
                key,
                node,
                proc,
                stolen,
            } => {
                open.insert(*key, (ev.at, *node, *proc, *stolen));
            }
            EventKind::TaskCompleted { key, node, proc } => {
                let (start, snode, sproc, stolen) =
                    open.remove(key).unwrap_or((ev.at, *node, *proc, false));
                let mut args = key_args(key);
                args.push(("stolen".to_string(), Value::Bool(stolen)));
                debug_assert_eq!((snode, sproc), (*node, *proc));
                out.push(Value::Object(vec![
                    (
                        "name".to_string(),
                        Value::Str(format!("a{}.i{}.t{}", key.apprank, key.iteration, key.task)),
                    ),
                    ("ph".to_string(), Value::from("X")),
                    ("ts".to_string(), micros(start)),
                    (
                        "dur".to_string(),
                        Value::Float(ev.at.saturating_sub(start).as_nanos() as f64 / 1000.0),
                    ),
                    ("pid".to_string(), Value::Int(*node as i64)),
                    ("tid".to_string(), Value::Int(*proc as i64)),
                    ("args".to_string(), Value::Object(args)),
                ]));
            }
            EventKind::TaskCreated { key, cost } => {
                let mut args = key_args(key);
                args.push(("cost_s".to_string(), Value::Float(*cost)));
                out.push(instant(
                    "task_created".to_string(),
                    ev.at,
                    GLOBAL_PID,
                    0,
                    args,
                ));
            }
            EventKind::TaskReady { key } => {
                out.push(instant(
                    "task_ready".to_string(),
                    ev.at,
                    GLOBAL_PID,
                    0,
                    key_args(key),
                ));
            }
            EventKind::SchedDecision {
                key,
                reason,
                chosen_node,
                home_node,
                home_queued,
                home_owned,
                chosen_queued,
                chosen_owned,
            } => {
                let mut args = key_args(key);
                args.push(("reason".to_string(), Value::from(reason.name())));
                args.push(("chosen_node".to_string(), Value::Int(*chosen_node as i64)));
                args.push(("home_queued".to_string(), Value::from(*home_queued)));
                args.push(("home_owned".to_string(), Value::from(*home_owned)));
                args.push((
                    "chosen_queued".to_string(),
                    Value::Int(*chosen_queued as i64),
                ));
                args.push(("chosen_owned".to_string(), Value::Int(*chosen_owned as i64)));
                out.push(instant(
                    format!("decision:{}", reason.name()),
                    ev.at,
                    *home_node as i64,
                    0,
                    args,
                ));
            }
            EventKind::TaskOffloaded {
                key,
                from_node,
                to_node,
                stolen,
            } => {
                let mut args = key_args(key);
                args.push(("from_node".to_string(), Value::from(*from_node)));
                args.push(("to_node".to_string(), Value::from(*to_node)));
                args.push(("stolen".to_string(), Value::Bool(*stolen)));
                out.push(instant(
                    "task_offloaded".to_string(),
                    ev.at,
                    *to_node as i64,
                    0,
                    args,
                ));
            }
            EventKind::LewiBorrow {
                node,
                proc,
                core,
                owner,
            } => {
                out.push(instant(
                    "lewi_borrow".to_string(),
                    ev.at,
                    *node as i64,
                    *proc as i64,
                    vec![
                        ("core".to_string(), Value::from(*core)),
                        ("owner".to_string(), Value::from(*owner)),
                    ],
                ));
            }
            EventKind::LewiReclaim {
                node,
                core,
                owner,
                borrower,
            } => {
                out.push(instant(
                    "lewi_reclaim".to_string(),
                    ev.at,
                    *node as i64,
                    *owner as i64,
                    vec![
                        ("core".to_string(), Value::from(*core)),
                        ("borrower".to_string(), Value::from(*borrower)),
                    ],
                ));
            }
            EventKind::DromTransfer {
                node,
                core,
                from,
                to,
            } => {
                out.push(instant(
                    "drom_transfer".to_string(),
                    ev.at,
                    *node as i64,
                    *to as i64,
                    vec![
                        ("core".to_string(), Value::from(*core)),
                        ("from".to_string(), Value::from(*from)),
                    ],
                ));
            }
            EventKind::DromOwnership { node, counts } => {
                let counts_json: Vec<Value> = counts.iter().map(|&c| Value::from(c)).collect();
                out.push(instant(
                    "drom_ownership".to_string(),
                    ev.at,
                    *node as i64,
                    0,
                    vec![("counts".to_string(), Value::Array(counts_json))],
                ));
            }
            EventKind::TalpWindow { node, busy } => {
                let busy_json: Vec<Value> = busy.iter().map(|&b| Value::Float(b)).collect();
                out.push(instant(
                    "talp_window".to_string(),
                    ev.at,
                    *node as i64,
                    0,
                    vec![("busy_core_s".to_string(), Value::Array(busy_json))],
                ));
            }
            EventKind::SolverInvoked(rec) => {
                let demand_json: Vec<Value> = rec.demand.iter().map(|&d| Value::Float(d)).collect();
                let cores_json: Vec<Value> = rec.cores.iter().map(|&c| Value::from(c)).collect();
                out.push(instant(
                    "solver_invoked".to_string(),
                    ev.at,
                    GLOBAL_PID,
                    0,
                    vec![
                        ("demand".to_string(), Value::Array(demand_json)),
                        ("cores".to_string(), Value::Array(cores_json)),
                        (
                            "simplex_iterations".to_string(),
                            Value::from(rec.simplex_iterations),
                        ),
                        ("objective".to_string(), Value::Float(rec.objective)),
                        ("modelled_cost_us".to_string(), micros(rec.modelled_cost)),
                    ],
                ));
            }
            EventKind::HelperSpawned { apprank, node } => {
                out.push(instant(
                    "helper_spawned".to_string(),
                    ev.at,
                    *node as i64,
                    0,
                    vec![("apprank".to_string(), Value::from(*apprank))],
                ));
            }
            EventKind::IterationEnd { iteration } => {
                out.push(instant(
                    "iteration_end".to_string(),
                    ev.at,
                    GLOBAL_PID,
                    0,
                    vec![("iteration".to_string(), Value::from(*iteration))],
                ));
            }
            EventKind::StragglerStart { node, factor } => {
                out.push(instant(
                    "straggler_start".to_string(),
                    ev.at,
                    *node as i64,
                    0,
                    vec![("factor".to_string(), Value::Float(*factor))],
                ));
            }
            EventKind::StragglerEnd { node } => {
                out.push(instant(
                    "straggler_end".to_string(),
                    ev.at,
                    *node as i64,
                    0,
                    vec![],
                ));
            }
            EventKind::WorkerKilled {
                apprank,
                node,
                proc,
                requeued,
            } => {
                out.push(instant(
                    "worker_killed".to_string(),
                    ev.at,
                    *node as i64,
                    *proc as i64,
                    vec![
                        ("apprank".to_string(), Value::from(*apprank)),
                        ("requeued".to_string(), Value::from(*requeued)),
                    ],
                ));
            }
            EventKind::MessageDropped {
                key,
                to_node,
                attempt,
            } => {
                let mut args = key_args(key);
                args.push(("attempt".to_string(), Value::from(*attempt)));
                out.push(instant(
                    "message_dropped".to_string(),
                    ev.at,
                    *to_node as i64,
                    0,
                    args,
                ));
            }
            EventKind::MessageFailover {
                key,
                to_node,
                attempts,
            } => {
                let mut args = key_args(key);
                args.push(("attempts".to_string(), Value::from(*attempts)));
                out.push(instant(
                    "message_failover".to_string(),
                    ev.at,
                    *to_node as i64,
                    0,
                    args,
                ));
            }
            EventKind::SolverOutage { active } => {
                out.push(instant(
                    "solver_outage".to_string(),
                    ev.at,
                    GLOBAL_PID,
                    0,
                    vec![("active".to_string(), Value::Bool(*active))],
                ));
            }
            EventKind::SolverFallback { reason } => {
                out.push(instant(
                    "solver_fallback".to_string(),
                    ev.at,
                    GLOBAL_PID,
                    0,
                    vec![("reason".to_string(), Value::from(reason.name()))],
                ));
            }
            EventKind::PortfolioSolve(rec) => {
                let candidates: Vec<Value> = rec
                    .candidates
                    .iter()
                    .map(|c| {
                        Value::Object(vec![
                            ("strategy".to_string(), Value::from(c.name)),
                            ("score".to_string(), Value::Float(c.score)),
                            ("cost_s".to_string(), Value::Float(c.cost_s)),
                            ("timed_out".to_string(), Value::Bool(c.timed_out)),
                        ])
                    })
                    .collect();
                out.push(instant(
                    "portfolio_solve".to_string(),
                    ev.at,
                    GLOBAL_PID,
                    0,
                    vec![
                        ("candidates".to_string(), Value::Array(candidates)),
                        ("budget_s".to_string(), Value::Float(rec.budget_s)),
                    ],
                ));
            }
            EventKind::PortfolioPick {
                name, score, raced, ..
            } => {
                out.push(instant(
                    "portfolio_pick".to_string(),
                    ev.at,
                    GLOBAL_PID,
                    0,
                    vec![
                        ("strategy".to_string(), Value::from(*name)),
                        ("score".to_string(), Value::Float(*score)),
                        ("raced".to_string(), Value::Int(*raced as i64)),
                    ],
                ));
            }
        }
    }
    Value::Object(vec![("traceEvents".to_string(), Value::Array(out))])
}

/// [`chrome_trace`] serialised compactly — the canonical on-disk form
/// used by the bitwise-identity checks.
pub fn chrome_trace_string(events: &[Event], worker_apprank: &[Vec<usize>]) -> String {
    chrome_trace(events, worker_apprank).to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceLog;

    fn key(task: u32) -> TaskKey {
        TaskKey {
            iteration: 0,
            apprank: 1,
            task,
        }
    }

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(
            1,
            SimTime::ZERO,
            EventKind::TaskStarted {
                key: key(0),
                node: 0,
                proc: 1,
                stolen: false,
            },
        );
        log.push(
            1,
            SimTime::from_millis(5),
            EventKind::TaskCompleted {
                key: key(0),
                node: 0,
                proc: 1,
            },
        );
        log.push(
            0,
            SimTime::from_millis(5),
            EventKind::IterationEnd { iteration: 0 },
        );
        log
    }

    #[test]
    fn pairs_start_complete_into_x_events() {
        let log = sample_log();
        let doc = chrome_trace(&log.merged(), &[vec![0, 1]]);
        let events = doc.get("traceEvents").as_array().unwrap();
        let x: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").as_str() == Some("X"))
            .collect();
        assert_eq!(x.len(), 1);
        assert_eq!(x[0].get("ts").as_f64(), Some(0.0));
        assert_eq!(x[0].get("dur").as_f64(), Some(5000.0));
        assert_eq!(x[0].get("pid").as_i64(), Some(0));
        assert_eq!(x[0].get("tid").as_i64(), Some(1));
    }

    #[test]
    fn metadata_labels_every_track() {
        let log = TraceLog::new();
        let doc = chrome_trace(&log.merged(), &[vec![0, 1], vec![1]]);
        let events = doc.get("traceEvents").as_array().unwrap();
        let meta = events
            .iter()
            .filter(|e| e.get("ph").as_str() == Some("M"))
            .count();
        // 1 global + 2 process_name + 3 thread_name.
        assert_eq!(meta, 6);
        assert_eq!(events.len(), meta, "empty log emits metadata only");
    }

    #[test]
    fn output_parses_and_is_stable() {
        let log = sample_log();
        let a = chrome_trace_string(&log.merged(), &[vec![0, 1]]);
        let b = chrome_trace_string(&log.merged(), &[vec![0, 1]]);
        assert_eq!(a, b);
        let parsed = tlb_json::parse(&a).expect("chrome trace must be valid JSON");
        assert!(parsed.get("traceEvents").as_array().is_some());
    }
}
