//! Regions of the common virtual address space.

use std::fmt;

/// A half-open byte range `[base, base + len)` in the cluster-wide common
/// virtual address space.
///
/// OmpSs-2@Cluster keeps the same virtual memory layout on every node of an
/// apprank's worker set, so a region identifies the same logical data
/// everywhere — no address translation (paper §3.2). Zero-length regions
/// are permitted and overlap nothing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataRegion {
    base: usize,
    len: usize,
}

impl DataRegion {
    /// Region starting at `base` covering `len` bytes.
    pub const fn new(base: usize, len: usize) -> Self {
        DataRegion { base, len }
    }

    /// The region occupied by a slice in this process (for shared-memory
    /// executions where regions come from real data).
    pub fn of_slice<T>(slice: &[T]) -> Self {
        DataRegion {
            base: slice.as_ptr() as usize,
            len: std::mem::size_of_val(slice),
        }
    }

    /// Start address.
    pub const fn base(&self) -> usize {
        self.base
    }

    /// Length in bytes.
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the region covers no bytes.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One-past-the-end address.
    pub const fn end(&self) -> usize {
        self.base + self.len
    }

    /// Whether two regions share at least one byte. Empty regions overlap
    /// nothing (and so never create dependencies).
    pub const fn overlaps(&self, other: &DataRegion) -> bool {
        self.len > 0 && other.len > 0 && self.base < other.end() && other.base < self.end()
    }

    /// Whether `other` lies fully inside `self`.
    pub const fn contains(&self, other: &DataRegion) -> bool {
        other.base >= self.base && other.end() <= self.end()
    }

    /// The overlapping byte range, if any.
    pub fn intersection(&self, other: &DataRegion) -> Option<DataRegion> {
        let base = self.base.max(other.base);
        let end = self.end().min(other.end());
        (end > base).then(|| DataRegion::new(base, end - base))
    }

    /// Smallest region covering both.
    pub fn hull(&self, other: &DataRegion) -> DataRegion {
        let base = self.base.min(other.base);
        let end = self.end().max(other.end());
        DataRegion::new(base, end - base)
    }

    /// Split into `parts` contiguous chunks (last chunk takes the
    /// remainder); used by workloads to block their arrays into task
    /// accesses.
    pub fn chunks(&self, parts: usize) -> Vec<DataRegion> {
        assert!(parts > 0, "cannot split into zero chunks");
        let per = self.len / parts;
        (0..parts)
            .map(|i| {
                let base = self.base + i * per;
                let len = if i == parts - 1 {
                    self.end() - base
                } else {
                    per
                };
                DataRegion::new(base, len)
            })
            .collect()
    }
}

impl fmt::Debug for DataRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.base, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_basic() {
        let a = DataRegion::new(0, 10);
        let b = DataRegion::new(5, 10);
        let c = DataRegion::new(10, 5);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c)); // half-open: [0,10) and [10,15) disjoint
        assert!(b.overlaps(&c));
    }

    #[test]
    fn zero_length_overlaps_nothing() {
        let z = DataRegion::new(5, 0);
        let a = DataRegion::new(0, 10);
        assert!(!z.overlaps(&a));
        assert!(!a.overlaps(&z));
        assert!(z.is_empty());
    }

    #[test]
    fn containment_and_intersection() {
        let a = DataRegion::new(0, 100);
        let b = DataRegion::new(10, 20);
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert_eq!(a.intersection(&b), Some(b));
        let c = DataRegion::new(90, 20);
        assert_eq!(a.intersection(&c), Some(DataRegion::new(90, 10)));
        assert_eq!(
            DataRegion::new(0, 5).intersection(&DataRegion::new(5, 5)),
            None
        );
    }

    #[test]
    fn hull_covers_both() {
        let a = DataRegion::new(0, 10);
        let b = DataRegion::new(50, 10);
        assert_eq!(a.hull(&b), DataRegion::new(0, 60));
    }

    #[test]
    fn chunks_partition_exactly() {
        let r = DataRegion::new(100, 103);
        let parts = r.chunks(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], DataRegion::new(100, 25));
        assert_eq!(parts[3], DataRegion::new(175, 28)); // remainder
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 103);
    }

    #[test]
    fn of_slice_matches_address() {
        let data = [0u64; 8];
        let r = DataRegion::of_slice(&data);
        assert_eq!(r.base(), data.as_ptr() as usize);
        assert_eq!(r.len(), 64);
    }

    // Seeded randomized properties (in-tree `tlb-rng` instead of proptest:
    // the workspace carries no registry dependencies).

    #[test]
    fn overlap_symmetric_and_iff_intersection() {
        let mut rng = tlb_rng::Rng::seed_from_u64(0x7261_6E64_0001);
        for _ in 0..2000 {
            let a = DataRegion::new(rng.range_usize(0, 1000), rng.range_usize(0, 100));
            let b = DataRegion::new(rng.range_usize(0, 1000), rng.range_usize(0, 100));
            assert_eq!(a.overlaps(&b), b.overlaps(&a), "{a:?} vs {b:?}");
            assert_eq!(
                a.overlaps(&b),
                a.intersection(&b).is_some(),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn intersection_contained_in_both() {
        let mut rng = tlb_rng::Rng::seed_from_u64(0x7261_6E64_0002);
        for _ in 0..2000 {
            let a = DataRegion::new(rng.range_usize(0, 1000), rng.range_usize(1, 100));
            let b = DataRegion::new(rng.range_usize(0, 1000), rng.range_usize(1, 100));
            if let Some(i) = a.intersection(&b) {
                assert!(a.contains(&i), "{a:?} ∩ {b:?} = {i:?}");
                assert!(b.contains(&i), "{a:?} ∩ {b:?} = {i:?}");
            }
        }
    }

    #[test]
    fn chunks_are_disjoint_and_cover() {
        let mut rng = tlb_rng::Rng::seed_from_u64(0x7261_6E64_0003);
        for _ in 0..2000 {
            let base = rng.range_usize(0, 1000);
            let len = rng.range_usize(1, 500);
            let parts = rng.range_usize(1, 10);
            let r = DataRegion::new(base, len);
            let cs = r.chunks(parts);
            assert_eq!(cs.iter().map(|c| c.len()).sum::<usize>(), len);
            for w in cs.windows(2) {
                assert_eq!(w[0].end(), w[1].base());
            }
            assert_eq!(cs[0].base(), base);
            assert_eq!(cs.last().unwrap().end(), r.end());
        }
    }
}
