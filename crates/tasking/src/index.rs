//! A dynamic interval index: the data structure behind region-dependency
//! lookup.
//!
//! [`crate::TaskGraph`] must find, for every submitted task, all *active*
//! accesses whose region overlaps one of the new task's regions. A linear
//! scan is O(active) per access; this index is an augmented randomized
//! BST (treap keyed by region start, each node carrying the maximum
//! region end in its subtree), giving `O(log n)` insert/remove and
//! `O(log n + k)` overlap enumeration — the same asymptotics as Nanos6's
//! red-black interval structures.
//!
//! The treap's priorities come from a deterministic xorshift stream, so
//! graph construction stays reproducible.

use crate::DataRegion;

/// Handle to an inserted interval (stable until removed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EntryId(usize);

struct Node<T> {
    region: DataRegion,
    value: T,
    /// Max `region.end()` within this subtree.
    max_end: usize,
    priority: u64,
    left: Option<usize>,
    right: Option<usize>,
    /// Distinguishes entries with equal starts and breaks BST ties.
    seq: u64,
}

/// A dynamic interval index over [`DataRegion`]s with attached values.
pub struct IntervalIndex<T> {
    nodes: Vec<Option<Node<T>>>,
    free: Vec<usize>,
    root: Option<usize>,
    len: usize,
    rng_state: u64,
    next_seq: u64,
}

impl<T> Default for IntervalIndex<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IntervalIndex<T> {
    /// An empty index.
    pub fn new() -> Self {
        IntervalIndex {
            nodes: Vec::new(),
            free: Vec::new(),
            root: None,
            len: 0,
            rng_state: 0x853C_49E6_748F_EA9B,
            next_seq: 0,
        }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn next_priority(&mut self) -> u64 {
        // xorshift64*: deterministic, well-mixed priorities.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn alloc(&mut self, node: Node<T>) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = Some(node);
            i
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    fn node(&self, i: usize) -> &Node<T> {
        self.nodes[i].as_ref().expect("live node")
    }

    fn node_mut(&mut self, i: usize) -> &mut Node<T> {
        self.nodes[i].as_mut().expect("live node")
    }

    fn subtree_max_end(&self, i: Option<usize>) -> usize {
        i.map_or(0, |i| self.node(i).max_end)
    }

    fn fixup(&mut self, i: usize) {
        let left = self.node(i).left;
        let right = self.node(i).right;
        let own = self.node(i).region.end();
        let m = own
            .max(self.subtree_max_end(left))
            .max(self.subtree_max_end(right));
        self.node_mut(i).max_end = m;
    }

    fn key(&self, i: usize) -> (usize, u64) {
        let n = self.node(i);
        (n.region.base(), n.seq)
    }

    /// Split subtree `t` into (< key, >= key) by (start, seq).
    fn split(&mut self, t: Option<usize>, key: (usize, u64)) -> (Option<usize>, Option<usize>) {
        let Some(i) = t else { return (None, None) };
        if self.key(i) < key {
            let right = self.node(i).right;
            let (l, r) = self.split(right, key);
            self.node_mut(i).right = l;
            self.fixup(i);
            (Some(i), r)
        } else {
            let left = self.node(i).left;
            let (l, r) = self.split(left, key);
            self.node_mut(i).left = r;
            self.fixup(i);
            (l, Some(i))
        }
    }

    fn merge(&mut self, a: Option<usize>, b: Option<usize>) -> Option<usize> {
        match (a, b) {
            (None, b) => b,
            (a, None) => a,
            (Some(x), Some(y)) => {
                if self.node(x).priority >= self.node(y).priority {
                    let right = self.node(x).right;
                    let merged = self.merge(right, Some(y));
                    self.node_mut(x).right = merged;
                    self.fixup(x);
                    Some(x)
                } else {
                    let left = self.node(y).left;
                    let merged = self.merge(Some(x), left);
                    self.node_mut(y).left = merged;
                    self.fixup(y);
                    Some(y)
                }
            }
        }
    }

    /// Insert an interval with its value; returns a removal handle.
    /// Empty regions are stored but never reported by overlap queries.
    pub fn insert(&mut self, region: DataRegion, value: T) -> EntryId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let priority = self.next_priority();
        let idx = self.alloc(Node {
            max_end: region.end(),
            region,
            value,
            priority,
            left: None,
            right: None,
            seq,
        });
        let (l, r) = self.split(self.root, (region.base(), seq));
        let lm = self.merge(l, Some(idx));
        self.root = self.merge(lm, r);
        self.len += 1;
        EntryId(idx)
    }

    /// Remove a previously inserted interval.
    ///
    /// # Panics
    /// Panics if the handle was already removed.
    pub fn remove(&mut self, id: EntryId) -> T {
        let (base, seq) = {
            let n = self.nodes[id.0].as_ref().expect("entry already removed");
            (n.region.base(), n.seq)
        };
        // Split out exactly this node: [<key] [==key] [>key].
        let (l, mr) = self.split(self.root, (base, seq));
        let (m, r) = self.split(mr, (base, seq + 1));
        debug_assert_eq!(m, Some(id.0), "split isolated the wrong node");
        self.root = self.merge(l, r);
        let node = self.nodes[id.0].take().expect("entry already removed");
        self.free.push(id.0);
        self.len -= 1;
        node.value
    }

    /// Visit every stored interval overlapping `query` (in start order).
    pub fn for_each_overlap(&self, query: DataRegion, mut f: impl FnMut(&DataRegion, &T)) {
        if query.is_empty() {
            return;
        }
        self.visit(self.root, &query, &mut f);
    }

    fn visit(&self, t: Option<usize>, query: &DataRegion, f: &mut impl FnMut(&DataRegion, &T)) {
        let Some(i) = t else { return };
        let n = self.node(i);
        // Prune: nothing in this subtree reaches the query start.
        if n.max_end <= query.base() {
            return;
        }
        self.visit(n.left, query, f);
        if n.region.overlaps(query) {
            f(&n.region, &n.value);
        }
        // Right subtree only if starts can still precede the query end.
        if n.region.base() < query.end() {
            self.visit(n.right, query, f);
        }
    }

    /// Collect clones of overlapping values (convenience for tests).
    pub fn overlaps(&self, query: DataRegion) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::new();
        self.for_each_overlap(query, |_, v| out.push(v.clone()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut ix = IntervalIndex::new();
        let a = ix.insert(DataRegion::new(0, 10), "a");
        let _b = ix.insert(DataRegion::new(20, 10), "b");
        let _c = ix.insert(DataRegion::new(5, 10), "c");
        assert_eq!(ix.len(), 3);
        let hits = ix.overlaps(DataRegion::new(8, 4));
        assert_eq!(hits, vec!["a", "c"]);
        assert_eq!(ix.remove(a), "a");
        let hits = ix.overlaps(DataRegion::new(8, 4));
        assert_eq!(hits, vec!["c"]);
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn empty_query_and_empty_entries() {
        let mut ix = IntervalIndex::new();
        ix.insert(DataRegion::new(5, 0), "empty");
        ix.insert(DataRegion::new(0, 10), "full");
        assert!(ix.overlaps(DataRegion::new(5, 0)).is_empty());
        assert_eq!(ix.overlaps(DataRegion::new(4, 2)), vec!["full"]);
    }

    #[test]
    fn duplicate_regions_coexist() {
        let mut ix = IntervalIndex::new();
        let r = DataRegion::new(100, 50);
        let ids: Vec<EntryId> = (0..10).map(|i| ix.insert(r, i)).collect();
        assert_eq!(ix.overlaps(r).len(), 10);
        for (k, id) in ids.into_iter().enumerate() {
            assert_eq!(ix.remove(id), k);
        }
        assert!(ix.is_empty());
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_panics() {
        let mut ix = IntervalIndex::new();
        let id = ix.insert(DataRegion::new(0, 4), ());
        ix.remove(id);
        ix.remove(id);
    }

    #[test]
    fn matches_linear_scan_on_random_workload() {
        // Deterministic pseudo-random insert/remove/query mix, checked
        // against a Vec-based oracle.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ix = IntervalIndex::new();
        let mut oracle: Vec<(DataRegion, u64, Option<EntryId>)> = Vec::new();
        for step in 0..3000u64 {
            match next() % 3 {
                0 | 1 => {
                    let base = (next() % 1000) as usize;
                    let len = (next() % 60) as usize;
                    let r = DataRegion::new(base, len);
                    let id = ix.insert(r, step);
                    oracle.push((r, step, Some(id)));
                }
                _ => {
                    let live: Vec<usize> = oracle
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.2.is_some())
                        .map(|(i, _)| i)
                        .collect();
                    if let Some(&pick) = live.get((next() as usize) % live.len().max(1)) {
                        let id = oracle[pick].2.take().unwrap();
                        assert_eq!(ix.remove(id), oracle[pick].1);
                    }
                }
            }
            if step % 50 == 0 {
                let q = DataRegion::new((next() % 1000) as usize, (next() % 100) as usize);
                let mut got: Vec<u64> = ix.overlaps(q);
                got.sort_unstable();
                let mut want: Vec<u64> = oracle
                    .iter()
                    .filter(|(r, _, live)| live.is_some() && r.overlaps(&q))
                    .map(|(_, v, _)| *v)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "divergence at step {step} query {q:?}");
            }
        }
    }

    #[test]
    fn visit_order_is_by_start() {
        let mut ix = IntervalIndex::new();
        for &(b, l) in &[(50usize, 10usize), (10, 100), (30, 5), (0, 200)] {
            ix.insert(DataRegion::new(b, l), b);
        }
        let mut starts = Vec::new();
        ix.for_each_overlap(DataRegion::new(0, 300), |_, &v| starts.push(v));
        assert_eq!(starts, vec![0, 10, 30, 50]);
    }
}
