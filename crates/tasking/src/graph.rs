//! The dependency graph: Nanos6's region-overlap dependency computation in
//! sequential submission order, with per-parent dependency domains.

use crate::index::{EntryId, IntervalIndex};
use crate::{AccessMode, TaskDef, TaskId, TaskState};
use std::collections::HashMap;
use std::fmt;

/// Errors from graph operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// Unknown task id.
    NoSuchTask(TaskId),
    /// Operation invalid for the task's current state.
    BadState {
        task: TaskId,
        state: TaskState,
        wanted: TaskState,
    },
    /// Parent referenced at submit time does not exist or is completed.
    BadParent(TaskId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NoSuchTask(t) => write!(f, "unknown task {t:?}"),
            GraphError::BadState {
                task,
                state,
                wanted,
            } => {
                write!(f, "task {task:?} is {state:?}, expected {wanted:?}")
            }
            GraphError::BadParent(t) => write!(f, "invalid parent {t:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

struct TaskNode {
    def: TaskDef,
    state: TaskState,
    /// Predecessors not yet completed.
    pending_deps: usize,
    /// Successor edges (dependents released on completion).
    successors: Vec<TaskId>,
    /// Predecessor edges (kept for critical-path computation and tests).
    predecessors: Vec<TaskId>,
    /// Children not yet completed (for taskwait).
    live_children: usize,
    /// Interval-index entries of this task's accesses, removed when the
    /// task completes (accesses stop generating dependencies then).
    access_entries: Vec<EntryId>,
}

/// The task dependency graph.
///
/// Tasks are submitted in sequential program order (the order the OmpSs-2
/// source would create them); a submitted task depends on every earlier
/// *sibling* (same dependency domain / parent) task, not yet completed,
/// with a conflicting access — overlap where at least one side writes.
/// Readers between two writers run concurrently; the second writer orders
/// behind all of them.
pub struct TaskGraph {
    tasks: Vec<TaskNode>,
    /// Active accesses per dependency domain (keyed by parent; `None` key
    /// encoded as u64::MAX). The interval index answers "which active
    /// accesses overlap this region" in O(log n + k).
    domains: HashMap<u64, IntervalIndex<(TaskId, AccessMode)>>,
    ready: Vec<TaskId>,
    completed_count: usize,
}

impl Default for TaskGraph {
    fn default() -> Self {
        Self::new()
    }
}

fn domain_key(parent: Option<TaskId>) -> u64 {
    parent.map_or(u64::MAX, |t| t.0)
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph {
            tasks: Vec::new(),
            domains: HashMap::new(),
            ready: Vec::new(),
            completed_count: 0,
        }
    }

    /// Submit a task; returns its id. Dependencies on earlier conflicting
    /// siblings are computed here.
    pub fn submit(&mut self, def: TaskDef) -> Result<TaskId, GraphError> {
        if let Some(p) = def.parent {
            let node = self
                .tasks
                .get(p.0 as usize)
                .ok_or(GraphError::BadParent(p))?;
            if node.state == TaskState::Completed {
                return Err(GraphError::BadParent(p));
            }
        }
        let id = TaskId(self.tasks.len() as u64);
        let key = domain_key(def.parent);
        let active = self.domains.entry(key).or_default();

        // Collect unique predecessor ids among conflicting active accesses:
        // regions overlap and at least one side writes.
        let mut preds: Vec<TaskId> = Vec::new();
        for acc in &def.accesses {
            active.for_each_overlap(acc.region, |_, &(task, mode)| {
                if (acc.mode.writes() || mode.writes()) && !preds.contains(&task) {
                    preds.push(task);
                }
            });
        }
        preds.sort_unstable();
        let access_entries: Vec<EntryId> = def
            .accesses
            .iter()
            .map(|acc| active.insert(acc.region, (id, acc.mode)))
            .collect();
        if let Some(p) = def.parent {
            self.tasks[p.0 as usize].live_children += 1;
        }
        let pending = preds.len();
        for &p in &preds {
            self.tasks[p.0 as usize].successors.push(id);
        }
        let state = if pending == 0 {
            self.ready.push(id);
            TaskState::Ready
        } else {
            TaskState::Blocked
        };
        self.tasks.push(TaskNode {
            def,
            state,
            pending_deps: pending,
            successors: Vec::new(),
            predecessors: preds,
            live_children: 0,
            access_entries,
        });
        Ok(id)
    }

    /// Tasks currently ready, in submission order. Draining is the
    /// executor's job: call [`TaskGraph::start`] to claim one.
    pub fn ready(&self) -> Vec<TaskId> {
        self.ready.clone()
    }

    /// Number of ready tasks.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Pop the first ready task (submission order), if any, marking it
    /// running.
    pub fn pop_ready(&mut self) -> Option<TaskId> {
        if self.ready.is_empty() {
            return None;
        }
        let id = self.ready.remove(0);
        self.tasks[id.0 as usize].state = TaskState::Running;
        Some(id)
    }

    /// Claim a specific ready task for execution.
    pub fn start(&mut self, id: TaskId) -> Result<(), GraphError> {
        let node = self
            .tasks
            .get_mut(id.0 as usize)
            .ok_or(GraphError::NoSuchTask(id))?;
        if node.state != TaskState::Ready {
            return Err(GraphError::BadState {
                task: id,
                state: node.state,
                wanted: TaskState::Ready,
            });
        }
        node.state = TaskState::Running;
        self.ready.retain(|&r| r != id);
        Ok(())
    }

    /// Complete a running task: releases successors and returns the tasks
    /// that became ready as a result (in submission order).
    pub fn complete(&mut self, id: TaskId) -> Result<Vec<TaskId>, GraphError> {
        let idx = id.0 as usize;
        {
            let node = self.tasks.get_mut(idx).ok_or(GraphError::NoSuchTask(id))?;
            if node.state != TaskState::Running {
                return Err(GraphError::BadState {
                    task: id,
                    state: node.state,
                    wanted: TaskState::Running,
                });
            }
            node.state = TaskState::Completed;
        }
        self.completed_count += 1;
        // Retire this task's accesses from its dependency domain.
        let key = domain_key(self.tasks[idx].def.parent);
        let entries = std::mem::take(&mut self.tasks[idx].access_entries);
        if let Some(active) = self.domains.get_mut(&key) {
            for e in entries {
                active.remove(e);
            }
        }
        if let Some(p) = self.tasks[idx].def.parent {
            self.tasks[p.0 as usize].live_children -= 1;
        }
        let successors = self.tasks[idx].successors.clone();
        let mut newly_ready = Vec::new();
        for s in successors {
            let node = &mut self.tasks[s.0 as usize];
            node.pending_deps -= 1;
            if node.pending_deps == 0 && node.state == TaskState::Blocked {
                node.state = TaskState::Ready;
                self.ready.push(s);
                newly_ready.push(s);
            }
        }
        Ok(newly_ready)
    }

    /// Definition of a task.
    pub fn def(&self, id: TaskId) -> &TaskDef {
        &self.tasks[id.0 as usize].def
    }

    /// Current state of a task.
    pub fn state(&self, id: TaskId) -> TaskState {
        self.tasks[id.0 as usize].state
    }

    /// Predecessor ids of a task (dependency edges into it).
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.tasks[id.0 as usize].predecessors
    }

    /// Number of submitted tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks were submitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of not-yet-completed children of `parent` (`None` = the main
    /// function): the quantity a `taskwait` blocks on.
    pub fn pending_children(&self, parent: Option<TaskId>) -> usize {
        match parent {
            Some(p) => self.tasks[p.0 as usize].live_children,
            None => self
                .tasks
                .iter()
                .filter(|t| t.def.parent.is_none() && t.state != TaskState::Completed)
                .count(),
        }
    }

    /// Whether every submitted task has completed.
    pub fn all_complete(&self) -> bool {
        self.completed_count == self.tasks.len()
    }

    /// Cost-weighted critical path: the longest chain of dependent task
    /// costs. With perfect load balance and no overheads, execution time
    /// cannot go below `max(critical_path, total_cost / total_cores)` —
    /// the paper's "perfect load balancing" reference line.
    pub fn critical_path(&self) -> f64 {
        let n = self.tasks.len();
        let mut finish = vec![0.0f64; n];
        // Tasks are indexed in submission order and edges go forward only,
        // so a single forward pass computes longest paths.
        for i in 0..n {
            let start = self.tasks[i]
                .predecessors
                .iter()
                .map(|p| finish[p.0 as usize])
                .fold(0.0f64, f64::max);
            finish[i] = start + self.tasks[i].def.cost;
        }
        finish.into_iter().fold(0.0, f64::max)
    }

    /// Total cost of all submitted tasks.
    pub fn total_cost(&self) -> f64 {
        self.tasks.iter().map(|t| t.def.cost).sum()
    }

    /// Summary counters.
    pub fn stats(&self) -> TaskStats {
        let mut s = TaskStats {
            submitted: self.tasks.len(),
            completed: self.completed_count,
            ready: self.ready.len(),
            ..TaskStats::default()
        };
        for t in &self.tasks {
            if t.state == TaskState::Running {
                s.running += 1;
            }
            s.edges += t.predecessors.len();
        }
        s
    }
}

/// Counters describing graph progress.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskStats {
    /// Tasks submitted.
    pub submitted: usize,
    /// Tasks completed.
    pub completed: usize,
    /// Tasks currently ready.
    pub ready: usize,
    /// Tasks currently running.
    pub running: usize,
    /// Dependency edges.
    pub edges: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataRegion;

    fn run_to_completion(g: &mut TaskGraph) -> Vec<TaskId> {
        let mut order = Vec::new();
        while let Some(t) = g.pop_ready() {
            g.complete(t).unwrap();
            order.push(t);
        }
        order
    }

    #[test]
    fn pop_ready_drains_in_submission_order() {
        let mut g = TaskGraph::new();
        let r = DataRegion::new(0, 8);
        let ids: Vec<_> = (0..5)
            .map(|i| {
                g.submit(TaskDef::new(format!("t{i}")).reads_writes(r))
                    .unwrap()
            })
            .collect();
        let order = run_to_completion(&mut g);
        assert_eq!(order, ids); // chain executes strictly in order
        assert!(g.all_complete());
    }

    #[test]
    fn raw_chain_orders() {
        let mut g = TaskGraph::new();
        let r = DataRegion::new(0, 8);
        let w = g.submit(TaskDef::new("w").writes(r)).unwrap();
        let rd = g.submit(TaskDef::new("r").reads(r)).unwrap();
        assert_eq!(g.ready(), vec![w]);
        assert_eq!(g.state(rd), TaskState::Blocked);
        g.start(w).unwrap();
        let released = g.complete(w).unwrap();
        assert_eq!(released, vec![rd]);
    }

    #[test]
    fn readers_run_concurrently() {
        let mut g = TaskGraph::new();
        let r = DataRegion::new(0, 8);
        let w = g.submit(TaskDef::new("w").writes(r)).unwrap();
        let r1 = g.submit(TaskDef::new("r1").reads(r)).unwrap();
        let r2 = g.submit(TaskDef::new("r2").reads(r)).unwrap();
        let w2 = g.submit(TaskDef::new("w2").writes(r)).unwrap();
        g.start(w).unwrap();
        let rel = g.complete(w).unwrap();
        assert_eq!(rel, vec![r1, r2]); // both readers release together
                                       // Second writer waits on both readers (WAR).
        assert_eq!(g.predecessors(w2).len(), 3); // w (WAW) + r1 + r2
        g.start(r1).unwrap();
        g.complete(r1).unwrap();
        assert_eq!(g.state(w2), TaskState::Blocked);
        g.start(r2).unwrap();
        let rel = g.complete(r2).unwrap();
        assert_eq!(rel, vec![w2]);
    }

    #[test]
    fn disjoint_regions_are_independent() {
        let mut g = TaskGraph::new();
        let a = g
            .submit(TaskDef::new("a").writes(DataRegion::new(0, 8)))
            .unwrap();
        let b = g
            .submit(TaskDef::new("b").writes(DataRegion::new(8, 8)))
            .unwrap();
        assert_eq!(g.ready(), vec![a, b]);
    }

    #[test]
    fn partial_overlap_creates_dependency() {
        let mut g = TaskGraph::new();
        let _a = g
            .submit(TaskDef::new("a").writes(DataRegion::new(0, 10)))
            .unwrap();
        let b = g
            .submit(TaskDef::new("b").reads(DataRegion::new(5, 10)))
            .unwrap();
        assert_eq!(g.state(b), TaskState::Blocked);
    }

    #[test]
    fn completed_tasks_stop_generating_deps() {
        let mut g = TaskGraph::new();
        let r = DataRegion::new(0, 8);
        let w = g.submit(TaskDef::new("w").writes(r)).unwrap();
        g.start(w).unwrap();
        g.complete(w).unwrap();
        // Submitted after completion: no dependency.
        let w2 = g.submit(TaskDef::new("w2").writes(r)).unwrap();
        assert_eq!(g.state(w2), TaskState::Ready);
        assert!(g.predecessors(w2).is_empty());
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = TaskGraph::new();
        let r1 = DataRegion::new(0, 8);
        let r2 = DataRegion::new(8, 8);
        let w = g.submit(TaskDef::new("w").writes(r1).writes(r2)).unwrap();
        // Conflicts with both of w's accesses, but only one edge.
        let rd = g.submit(TaskDef::new("r").reads(r1).reads(r2)).unwrap();
        assert_eq!(g.predecessors(rd), &[w]);
        g.start(w).unwrap();
        let rel = g.complete(w).unwrap();
        assert_eq!(rel, vec![rd]); // single decrement, single release
    }

    #[test]
    fn sibling_domains_are_independent() {
        let mut g = TaskGraph::new();
        let r = DataRegion::new(0, 8);
        let p1 = g.submit(TaskDef::new("p1")).unwrap();
        let p2 = g.submit(TaskDef::new("p2")).unwrap();
        // Same region, different parents: OmpSs-2 dependency domains are
        // per nesting level, so no cross-domain edge.
        let c1 = g.submit(TaskDef::new("c1").writes(r).child_of(p1)).unwrap();
        let c2 = g.submit(TaskDef::new("c2").writes(r).child_of(p2)).unwrap();
        assert_eq!(g.state(c1), TaskState::Ready);
        assert_eq!(g.state(c2), TaskState::Ready);
    }

    #[test]
    fn taskwait_counts_children() {
        let mut g = TaskGraph::new();
        let p = g.submit(TaskDef::new("p")).unwrap();
        let c1 = g.submit(TaskDef::new("c1").child_of(p)).unwrap();
        let c2 = g.submit(TaskDef::new("c2").child_of(p)).unwrap();
        assert_eq!(g.pending_children(Some(p)), 2);
        g.start(c1).unwrap();
        g.complete(c1).unwrap();
        assert_eq!(g.pending_children(Some(p)), 1);
        g.start(c2).unwrap();
        g.complete(c2).unwrap();
        assert_eq!(g.pending_children(Some(p)), 0);
    }

    #[test]
    fn top_level_taskwait() {
        let mut g = TaskGraph::new();
        let a = g.submit(TaskDef::new("a")).unwrap();
        let _b = g.submit(TaskDef::new("b")).unwrap();
        assert_eq!(g.pending_children(None), 2);
        g.start(a).unwrap();
        g.complete(a).unwrap();
        assert_eq!(g.pending_children(None), 1);
    }

    #[test]
    fn cannot_complete_unstarted() {
        let mut g = TaskGraph::new();
        let a = g.submit(TaskDef::new("a")).unwrap();
        assert!(matches!(
            g.complete(a),
            Err(GraphError::BadState {
                wanted: TaskState::Running,
                ..
            })
        ));
    }

    #[test]
    fn cannot_start_blocked() {
        let mut g = TaskGraph::new();
        let r = DataRegion::new(0, 8);
        let _w = g.submit(TaskDef::new("w").writes(r)).unwrap();
        let rd = g.submit(TaskDef::new("r").reads(r)).unwrap();
        assert!(g.start(rd).is_err());
    }

    #[test]
    fn bad_parent_rejected() {
        let mut g = TaskGraph::new();
        let bogus = TaskId(42);
        assert_eq!(
            g.submit(TaskDef::new("c").child_of(bogus)).unwrap_err(),
            GraphError::BadParent(bogus)
        );
    }

    #[test]
    fn critical_path_chain_vs_fan() {
        let mut g = TaskGraph::new();
        let r = DataRegion::new(0, 8);
        // Chain of 3 writers, cost 2 each → CP = 6.
        for i in 0..3 {
            g.submit(TaskDef::new(format!("w{i}")).reads_writes(r).cost(2.0))
                .unwrap();
        }
        // Plus 10 independent cost-1 tasks: CP unchanged.
        for i in 0..10 {
            g.submit(TaskDef::new(format!("x{i}")).cost(1.0)).unwrap();
        }
        assert!((g.critical_path() - 6.0).abs() < 1e-12);
        assert!((g.total_cost() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn stats_track_progress() {
        let mut g = TaskGraph::new();
        let r = DataRegion::new(0, 8);
        let w = g.submit(TaskDef::new("w").writes(r)).unwrap();
        let _r = g.submit(TaskDef::new("r").reads(r)).unwrap();
        let s = g.stats();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.edges, 1);
        assert_eq!(s.ready, 1);
        g.start(w).unwrap();
        assert_eq!(g.stats().running, 1);
        g.complete(w).unwrap();
        assert_eq!(g.stats().completed, 1);
    }

    #[test]
    fn any_completion_order_is_consistent() {
        // Property: executing ready tasks in any (here: reverse) order
        // never violates dependencies and always drains the graph.
        let mut g = TaskGraph::new();
        let r = DataRegion::new(0, 64);
        let chunks = r.chunks(4);
        for c in &chunks {
            g.submit(TaskDef::new("init").writes(*c)).unwrap();
        }
        for c in &chunks {
            g.submit(TaskDef::new("use").reads(*c)).unwrap();
        }
        g.submit(TaskDef::new("reduce").reads(r)).unwrap();
        let mut done = 0;
        loop {
            let ready = g.ready();
            if ready.is_empty() {
                break;
            }
            let t = *ready.last().unwrap();
            g.start(t).unwrap();
            g.complete(t).unwrap();
            done += 1;
        }
        assert_eq!(done, 9);
        assert!(g.all_complete());
    }
}
