//! Task definitions: the Rust equivalent of `#pragma oss task`.

use crate::DataRegion;
use std::fmt;

/// Opaque task identifier, unique within one [`crate::TaskGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

impl TaskId {
    /// Raw id value (stable within a graph; useful for trace output).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// How a task uses a data region — the `in`/`out`/`inout` of the pragma.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Read-only (`in`): concurrent with other readers.
    In,
    /// Write-only (`out`): orders against readers and writers.
    Out,
    /// Read-write (`inout`): orders against readers and writers.
    InOut,
}

impl AccessMode {
    /// Whether the access writes the region.
    pub fn writes(&self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }

    /// Whether the access reads the region (drives data transfers in the
    /// cluster runtime: only read data must be present before execution).
    pub fn reads(&self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }
}

/// One declared access of a task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// The region touched.
    pub region: DataRegion,
    /// How it is touched.
    pub mode: AccessMode,
}

impl Access {
    /// Whether two accesses conflict (overlap with at least one writer) —
    /// the condition that creates a dependency edge.
    pub fn conflicts_with(&self, other: &Access) -> bool {
        (self.mode.writes() || other.mode.writes()) && self.region.overlaps(&other.region)
    }
}

/// Lifecycle of a task inside the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskState {
    /// Submitted, predecessors outstanding.
    Blocked,
    /// All predecessors complete; eligible for scheduling.
    Ready,
    /// Claimed by an executor.
    Running,
    /// Finished; successors released.
    Completed,
}

/// Definition of a task prior to submission — the pragma annotation plus
/// the runtime hints our executors use.
#[derive(Clone, Debug)]
pub struct TaskDef {
    /// Human-readable label (kernel name); shows up in traces.
    pub label: String,
    /// Declared data accesses.
    pub accesses: Vec<Access>,
    /// Cost hint in abstract work units (virtual seconds of single-core
    /// compute for the simulation workloads; ignored by the real threaded
    /// executor, which just runs the closure).
    pub cost: f64,
    /// Whether the task may execute on a node other than its apprank's.
    /// Tasks that perform MPI calls must be non-offloadable (paper §4).
    pub offloadable: bool,
    /// Nesting parent: dependencies are computed among siblings of the
    /// same parent, as in OmpSs-2's per-level dependency domains.
    pub parent: Option<TaskId>,
    /// Bytes that must be transferred to execute remotely (over-approximated
    /// as the sum of read-access region sizes); filled in automatically.
    pub transfer_bytes: usize,
}

impl TaskDef {
    /// A task with no accesses, unit cost, offloadable, top-level.
    pub fn new(label: impl Into<String>) -> Self {
        TaskDef {
            label: label.into(),
            accesses: Vec::new(),
            cost: 1.0,
            offloadable: true,
            parent: None,
            transfer_bytes: 0,
        }
    }

    /// Declare an `in` access.
    pub fn reads(mut self, region: DataRegion) -> Self {
        self.accesses.push(Access {
            region,
            mode: AccessMode::In,
        });
        self.transfer_bytes += region.len();
        self
    }

    /// Declare an `out` access.
    pub fn writes(mut self, region: DataRegion) -> Self {
        self.accesses.push(Access {
            region,
            mode: AccessMode::Out,
        });
        self
    }

    /// Declare an `inout` access.
    pub fn reads_writes(mut self, region: DataRegion) -> Self {
        self.accesses.push(Access {
            region,
            mode: AccessMode::InOut,
        });
        self.transfer_bytes += region.len();
        self
    }

    /// Set the cost hint (abstract single-core work units).
    pub fn cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }

    /// Mark the task as non-offloadable (pinned to its apprank).
    pub fn not_offloadable(mut self) -> Self {
        self.offloadable = false;
        self
    }

    /// Set the nesting parent.
    pub fn child_of(mut self, parent: TaskId) -> Self {
        self.parent = Some(parent);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(AccessMode::Out.writes() && !AccessMode::Out.reads());
        assert!(AccessMode::In.reads() && !AccessMode::In.writes());
        assert!(AccessMode::InOut.reads() && AccessMode::InOut.writes());
    }

    #[test]
    fn conflicts_require_a_writer() {
        let r = DataRegion::new(0, 8);
        let read = Access {
            region: r,
            mode: AccessMode::In,
        };
        let write = Access {
            region: r,
            mode: AccessMode::Out,
        };
        assert!(!read.conflicts_with(&read)); // two readers commute
        assert!(read.conflicts_with(&write)); // WAR
        assert!(write.conflicts_with(&read)); // RAW
        assert!(write.conflicts_with(&write)); // WAW
    }

    #[test]
    fn conflicts_require_overlap() {
        let w1 = Access {
            region: DataRegion::new(0, 8),
            mode: AccessMode::Out,
        };
        let w2 = Access {
            region: DataRegion::new(8, 8),
            mode: AccessMode::Out,
        };
        assert!(!w1.conflicts_with(&w2));
    }

    #[test]
    fn builder_accumulates_accesses_and_transfer_bytes() {
        let t = TaskDef::new("kernel")
            .reads(DataRegion::new(0, 100))
            .writes(DataRegion::new(200, 50))
            .reads_writes(DataRegion::new(300, 25))
            .cost(2.5);
        assert_eq!(t.accesses.len(), 3);
        assert_eq!(t.cost, 2.5);
        // Only read data transfers: 100 (in) + 25 (inout).
        assert_eq!(t.transfer_bytes, 125);
        assert!(t.offloadable);
        assert!(!t.clone().not_offloadable().offloadable);
    }
}
