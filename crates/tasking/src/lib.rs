//! OmpSs-2-style task graph (paper §3.1–§3.2, §4).
//!
//! OmpSs-2 uses a *single mechanism* — the task's declared data accesses —
//! to compute dependencies for ordering, to drive data locality on a node,
//! and to drive data transfers between nodes. This crate reproduces that
//! mechanism as an explicit Rust API (Rust has no pragma compiler; the
//! `#pragma oss task in(...) out(...)` annotation becomes a [`TaskDef`]
//! built with [`TaskDef::reads`]/[`TaskDef::writes`]):
//!
//! * [`DataRegion`] — a half-open range in the program's common virtual
//!   address space (OmpSs-2@Cluster keeps the same layout on every node,
//!   so a region is cluster-wide meaningful).
//! * [`TaskDef`] — label, accesses, cost hint, offloadable flag, nesting
//!   parent. Tasks marked non-offloadable stay on their apprank, which is
//!   what makes MPI calls inside them legal (paper §4).
//! * [`TaskGraph`] — computes the dependency DAG from access overlap in
//!   sequential submission order, tracks readiness, supports `taskwait`
//!   (all children of a parent) and per-parent dependency domains as in
//!   OmpSs-2's nesting model, and computes the cost-weighted critical
//!   path (used for the paper's "perfect load balance" reference lines).
//!
//! # Example
//!
//! ```
//! use tlb_tasking::{TaskDef, TaskGraph, DataRegion};
//!
//! let mut g = TaskGraph::new();
//! let buf = DataRegion::new(0x1000, 64);
//! let producer = g.submit(TaskDef::new("produce").writes(buf).cost(1.0)).unwrap();
//! let consumer = g.submit(TaskDef::new("consume").reads(buf).cost(2.0)).unwrap();
//! assert_eq!(g.ready(), vec![producer]);      // consumer waits (RAW)
//! g.start(producer).unwrap();
//! g.complete(producer).unwrap();
//! assert_eq!(g.ready(), vec![consumer]);
//! assert!((g.critical_path() - 3.0).abs() < 1e-12);
//! ```

mod graph;
mod index;
mod region;
mod task;

pub use graph::{GraphError, TaskGraph, TaskStats};
pub use index::{EntryId, IntervalIndex};
pub use region::DataRegion;
pub use task::{Access, AccessMode, TaskDef, TaskId, TaskState};
