//! Property tests: the incremental dependency computation must match a
//! brute-force oracle, and every execution schedule must respect program
//! order semantics.

use proptest::prelude::*;
use tlb_tasking::{Access, AccessMode, DataRegion, TaskDef, TaskGraph};

/// A compact generated access: (base bucket, length bucket, mode).
#[derive(Clone, Debug)]
struct GenAccess {
    base: usize,
    len: usize,
    mode: AccessMode,
}

fn gen_access() -> impl Strategy<Value = GenAccess> {
    (0usize..20, 1usize..8, 0u8..3).prop_map(|(base, len, m)| GenAccess {
        base: base * 4,
        len: len * 4,
        mode: match m {
            0 => AccessMode::In,
            1 => AccessMode::Out,
            _ => AccessMode::InOut,
        },
    })
}

fn gen_tasks() -> impl Strategy<Value = Vec<Vec<GenAccess>>> {
    prop::collection::vec(prop::collection::vec(gen_access(), 1..4), 1..25)
}

/// Brute-force oracle: task j depends on i < j iff (no intermediate
/// completion happens during submission here) some access pair conflicts.
fn oracle_edges(tasks: &[Vec<GenAccess>]) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for j in 0..tasks.len() {
        for i in 0..j {
            let conflict = tasks[i].iter().any(|a| {
                tasks[j].iter().any(|b| {
                    let ra = DataRegion::new(a.base, a.len);
                    let rb = DataRegion::new(b.base, b.len);
                    (a.mode.writes() || b.mode.writes()) && ra.overlaps(&rb)
                })
            });
            if conflict {
                edges.push((i, j));
            }
        }
    }
    edges
}

fn build_graph(tasks: &[Vec<GenAccess>]) -> (TaskGraph, Vec<tlb_tasking::TaskId>) {
    let mut g = TaskGraph::new();
    let ids = tasks
        .iter()
        .enumerate()
        .map(|(i, accs)| {
            let mut def = TaskDef::new(format!("t{i}"));
            for a in accs {
                let r = DataRegion::new(a.base, a.len);
                def = match a.mode {
                    AccessMode::In => def.reads(r),
                    AccessMode::Out => def.writes(r),
                    AccessMode::InOut => def.reads_writes(r),
                };
            }
            g.submit(def).unwrap()
        })
        .collect();
    (g, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The graph's predecessor sets equal the brute-force conflict oracle.
    #[test]
    fn dependencies_match_oracle(tasks in gen_tasks()) {
        let (g, ids) = build_graph(&tasks);
        let expected = oracle_edges(&tasks);
        let mut actual = Vec::new();
        for (j, &id) in ids.iter().enumerate() {
            for p in g.predecessors(id) {
                actual.push((p.raw() as usize, j));
            }
        }
        actual.sort_unstable();
        let mut expected = expected;
        expected.sort_unstable();
        prop_assert_eq!(actual, expected);
    }

    /// Greedy execution always drains the graph (no deadlock), and every
    /// task runs after all its predecessors.
    #[test]
    fn greedy_execution_respects_order(tasks in gen_tasks(), pick_last in any::<bool>()) {
        let (mut g, ids) = build_graph(&tasks);
        let mut completed_at = vec![usize::MAX; ids.len()];
        let mut step = 0;
        loop {
            let ready = g.ready();
            if ready.is_empty() { break; }
            let t = if pick_last { *ready.last().unwrap() } else { ready[0] };
            g.start(t).unwrap();
            g.complete(t).unwrap();
            completed_at[t.raw() as usize] = step;
            step += 1;
        }
        prop_assert!(g.all_complete(), "graph deadlocked");
        for (j, &id) in ids.iter().enumerate() {
            for p in g.predecessors(id) {
                prop_assert!(
                    completed_at[p.raw() as usize] < completed_at[j],
                    "task {} ran before its predecessor {}", j, p.raw()
                );
            }
        }
    }

    /// Critical path is at most total cost and at least the max single cost.
    #[test]
    fn critical_path_bounds(tasks in gen_tasks()) {
        let (g, _) = build_graph(&tasks);
        let cp = g.critical_path();
        prop_assert!(cp <= g.total_cost() + 1e-9);
        prop_assert!(cp >= 1.0 - 1e-9); // all costs are 1.0 by default
    }

    /// Access conflicts are symmetric.
    #[test]
    fn conflict_symmetry(a in gen_access(), b in gen_access()) {
        let aa = Access { region: DataRegion::new(a.base, a.len), mode: a.mode };
        let bb = Access { region: DataRegion::new(b.base, b.len), mode: b.mode };
        prop_assert_eq!(aa.conflicts_with(&bb), bb.conflicts_with(&aa));
    }
}
