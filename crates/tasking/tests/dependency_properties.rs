//! Randomized tests: the incremental dependency computation must match a
//! brute-force oracle, and every execution schedule must respect program
//! order semantics. Uses seeded `tlb-rng` loops (the workspace carries no
//! registry dependencies, so no proptest).

use tlb_rng::Rng;
use tlb_tasking::{Access, AccessMode, DataRegion, TaskDef, TaskGraph};

/// A compact generated access: (base bucket, length bucket, mode).
#[derive(Clone, Debug)]
struct GenAccess {
    base: usize,
    len: usize,
    mode: AccessMode,
}

fn gen_access(rng: &mut Rng) -> GenAccess {
    GenAccess {
        base: rng.range_usize(0, 20) * 4,
        len: rng.range_usize(1, 8) * 4,
        mode: match rng.range_u64(0, 3) {
            0 => AccessMode::In,
            1 => AccessMode::Out,
            _ => AccessMode::InOut,
        },
    }
}

fn gen_tasks(rng: &mut Rng) -> Vec<Vec<GenAccess>> {
    let n_tasks = rng.range_usize(1, 25);
    (0..n_tasks)
        .map(|_| {
            let n_acc = rng.range_usize(1, 4);
            (0..n_acc).map(|_| gen_access(rng)).collect()
        })
        .collect()
}

/// Brute-force oracle: task j depends on i < j iff (no intermediate
/// completion happens during submission here) some access pair conflicts.
fn oracle_edges(tasks: &[Vec<GenAccess>]) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for j in 0..tasks.len() {
        for i in 0..j {
            let conflict = tasks[i].iter().any(|a| {
                tasks[j].iter().any(|b| {
                    let ra = DataRegion::new(a.base, a.len);
                    let rb = DataRegion::new(b.base, b.len);
                    (a.mode.writes() || b.mode.writes()) && ra.overlaps(&rb)
                })
            });
            if conflict {
                edges.push((i, j));
            }
        }
    }
    edges
}

fn build_graph(tasks: &[Vec<GenAccess>]) -> (TaskGraph, Vec<tlb_tasking::TaskId>) {
    let mut g = TaskGraph::new();
    let ids = tasks
        .iter()
        .enumerate()
        .map(|(i, accs)| {
            let mut def = TaskDef::new(format!("t{i}"));
            for a in accs {
                let r = DataRegion::new(a.base, a.len);
                def = match a.mode {
                    AccessMode::In => def.reads(r),
                    AccessMode::Out => def.writes(r),
                    AccessMode::InOut => def.reads_writes(r),
                };
            }
            g.submit(def).unwrap()
        })
        .collect();
    (g, ids)
}

const CASES: usize = 128;

/// The graph's predecessor sets equal the brute-force conflict oracle.
#[test]
fn dependencies_match_oracle() {
    let root = Rng::seed_from_u64(0xDE9_0001);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let tasks = gen_tasks(&mut rng);
        let (g, ids) = build_graph(&tasks);
        let mut expected = oracle_edges(&tasks);
        let mut actual = Vec::new();
        for (j, &id) in ids.iter().enumerate() {
            for p in g.predecessors(id) {
                actual.push((p.raw() as usize, j));
            }
        }
        actual.sort_unstable();
        expected.sort_unstable();
        assert_eq!(actual, expected, "case {case}");
    }
}

/// Greedy execution always drains the graph (no deadlock), and every
/// task runs after all its predecessors.
#[test]
fn greedy_execution_respects_order() {
    let root = Rng::seed_from_u64(0xDE9_0002);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let tasks = gen_tasks(&mut rng);
        let pick_last = rng.chance(0.5);
        let (mut g, ids) = build_graph(&tasks);
        let mut completed_at = vec![usize::MAX; ids.len()];
        let mut step = 0;
        loop {
            let ready = g.ready();
            if ready.is_empty() {
                break;
            }
            let t = if pick_last {
                *ready.last().unwrap()
            } else {
                ready[0]
            };
            g.start(t).unwrap();
            g.complete(t).unwrap();
            completed_at[t.raw() as usize] = step;
            step += 1;
        }
        assert!(g.all_complete(), "case {case}: graph deadlocked");
        for (j, &id) in ids.iter().enumerate() {
            for p in g.predecessors(id) {
                assert!(
                    completed_at[p.raw() as usize] < completed_at[j],
                    "case {case}: task {} ran before its predecessor {}",
                    j,
                    p.raw()
                );
            }
        }
    }
}

/// Critical path is at most total cost and at least the max single cost.
#[test]
fn critical_path_bounds() {
    let root = Rng::seed_from_u64(0xDE9_0003);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let tasks = gen_tasks(&mut rng);
        let (g, _) = build_graph(&tasks);
        let cp = g.critical_path();
        assert!(cp <= g.total_cost() + 1e-9, "case {case}");
        assert!(cp >= 1.0 - 1e-9, "case {case}"); // all costs are 1.0 by default
    }
}

/// Access conflicts are symmetric.
#[test]
fn conflict_symmetry() {
    let mut rng = Rng::seed_from_u64(0xDE9_0004);
    for case in 0..1024 {
        let a = gen_access(&mut rng);
        let b = gen_access(&mut rng);
        let aa = Access {
            region: DataRegion::new(a.base, a.len),
            mode: a.mode,
        };
        let bb = Access {
            region: DataRegion::new(b.base, b.len),
            mode: b.mode,
        };
        assert_eq!(
            aa.conflicts_with(&bb),
            bb.conflicts_with(&aa),
            "case {case}"
        );
    }
}
