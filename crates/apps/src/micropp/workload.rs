//! MicroPP workload generation for the cluster simulation.

use crate::micropp::Calibration;
use tlb_cluster::{SpecWorkload, TaskSpec};
use tlb_rng::Rng;

/// Parameters of a MicroPP-style run.
#[derive(Clone, Debug)]
pub struct MicroPpConfig {
    /// Number of appranks (weak scaling: subproblem count is per rank).
    pub appranks: usize,
    /// Micro-scale subproblems (Gauss points) per rank per iteration.
    pub subproblems_per_rank: usize,
    /// Subproblems batched into one offloadable task.
    pub subproblems_per_task: usize,
    /// Cost of one linear subproblem in seconds (calibrate on the host
    /// with [`crate::micropp::calibrate`], or use the default which
    /// matches a ~12³ grid on a current core).
    pub linear_secs: f64,
    /// Cost ratio non-linear / linear (Newton steps × CG growth).
    pub nonlinear_ratio: f64,
    /// Per-rank non-linear fraction is drawn as
    /// `lo + (hi-lo)·u^gamma`, u ~ U(0,1): the material-zone mix that
    /// makes some ranks much heavier than others.
    pub fraction_lo: f64,
    /// Upper end of the non-linear fraction range.
    pub fraction_hi: f64,
    /// Skew exponent (`gamma > 1` pushes most ranks towards `lo`).
    pub gamma: f64,
    /// Timesteps.
    pub iterations: usize,
    /// Bytes of macro-strain input per task (transferred on offload).
    pub bytes_per_task: usize,
    /// RNG seed.
    pub seed: u64,
    /// Explicit per-rank non-linear fractions (overrides the random
    /// draw); used by trace experiments that need a controlled profile.
    pub fractions_override: Option<Vec<f64>>,
}

impl MicroPpConfig {
    /// Defaults tuned to the paper's imbalance regime (rank imbalance
    /// around 2 for a few dozen ranks).
    pub fn new(appranks: usize) -> Self {
        MicroPpConfig {
            appranks,
            subproblems_per_rank: 4000,
            subproblems_per_task: 5,
            linear_secs: 0.001,
            nonlinear_ratio: 8.0,
            fraction_lo: 0.02,
            fraction_hi: 0.90,
            gamma: 3.5,
            iterations: 8,
            bytes_per_task: 64 * 1024,
            seed: 7,
            fractions_override: None,
        }
    }

    /// Apply measured kernel costs from a calibration run.
    pub fn with_calibration(mut self, cal: &Calibration) -> Self {
        self.linear_secs = cal.linear_secs;
        self.nonlinear_ratio = cal.ratio();
        self
    }
}

/// Per-rank non-linear fractions (deterministic in the seed).
pub(crate) fn rank_fractions(cfg: &MicroPpConfig) -> Vec<f64> {
    if let Some(f) = &cfg.fractions_override {
        assert_eq!(f.len(), cfg.appranks, "override length mismatch");
        return f.clone();
    }
    let mut rng = Rng::seed_from_u64(cfg.seed);
    (0..cfg.appranks)
        .map(|_| {
            let u: f64 = rng.f64_unit();
            cfg.fraction_lo + (cfg.fraction_hi - cfg.fraction_lo) * u.powf(cfg.gamma)
        })
        .collect()
}

/// Build the MicroPP workload: every task solves a batch of subproblems,
/// a per-task binomial draw of which are non-linear according to the
/// rank's material fraction.
pub fn micropp_workload(cfg: &MicroPpConfig) -> SpecWorkload {
    assert!(cfg.subproblems_per_task > 0, "empty task batches");
    assert!(
        cfg.fraction_lo <= cfg.fraction_hi && cfg.fraction_hi <= 1.0,
        "bad fraction range"
    );
    let fractions = rank_fractions(cfg);
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xC0FF_EE00_DEAD_BEEF);
    let nl_secs = cfg.linear_secs * cfg.nonlinear_ratio;
    let tasks_per_rank = cfg.subproblems_per_rank / cfg.subproblems_per_task;

    let mut iterations = Vec::with_capacity(cfg.iterations);
    for _ in 0..cfg.iterations {
        let per_rank: Vec<Vec<TaskSpec>> = fractions
            .iter()
            .map(|&f| {
                (0..tasks_per_rank)
                    .map(|_| {
                        let n_nl = (0..cfg.subproblems_per_task)
                            .filter(|_| rng.f64_unit() < f)
                            .count();
                        let n_lin = cfg.subproblems_per_task - n_nl;
                        let dur = n_lin as f64 * cfg.linear_secs + n_nl as f64 * nl_secs;
                        TaskSpec::with_bytes(dur, cfg.bytes_per_task)
                    })
                    .collect()
            })
            .collect();
        iterations.push(per_rank);
    }
    SpecWorkload::new(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_cluster::Workload;
    use tlb_core::imbalance;

    #[test]
    fn workload_is_imbalanced_but_bounded() {
        let cfg = MicroPpConfig::new(16);
        let wl = micropp_workload(&cfg);
        let work = wl.rank_work(0);
        let imb = imbalance(&work);
        assert!(
            (1.5..4.5).contains(&imb),
            "rank imbalance {imb} outside the MicroPP regime: {work:?}"
        );
    }

    #[test]
    fn weak_scaling_keeps_per_rank_work() {
        let w8: f64 = micropp_workload(&MicroPpConfig::new(8))
            .rank_work(0)
            .iter()
            .sum();
        let w32: f64 = micropp_workload(&MicroPpConfig::new(32))
            .rank_work(0)
            .iter()
            .sum();
        let per8 = w8 / 8.0;
        let per32 = w32 / 32.0;
        let ratio = per32 / per8;
        assert!(
            (0.7..1.3).contains(&ratio),
            "weak scaling drifted: {per8} vs {per32}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MicroPpConfig::new(4);
        let a = micropp_workload(&cfg);
        let b = micropp_workload(&cfg);
        assert_eq!(a.rank_work(0), b.rank_work(0));
    }

    #[test]
    fn task_count_and_shape() {
        let cfg = MicroPpConfig::new(4);
        let mut wl = micropp_workload(&cfg);
        assert_eq!(wl.iterations(), cfg.iterations);
        assert_eq!(wl.tasks(0, 0).len(), 800);
        let t = &wl.tasks(1, 0)[0];
        assert!(t.offloadable);
        assert_eq!(t.bytes, cfg.bytes_per_task);
        // Every task costs at least the all-linear batch.
        assert!(t.duration >= cfg.subproblems_per_task as f64 * cfg.linear_secs - 1e-12);
    }

    #[test]
    fn calibration_feeds_costs() {
        let cal = Calibration {
            linear_secs: 0.004,
            nonlinear_secs: 0.040,
        };
        let cfg = MicroPpConfig::new(2).with_calibration(&cal);
        assert_eq!(cfg.linear_secs, 0.004);
        assert!((cfg.nonlinear_ratio - 10.0).abs() < 1e-12);
    }

    #[test]
    fn iterations_vary_but_rank_profile_persists() {
        // The heavy ranks stay heavy across iterations (material zones do
        // not move), even though per-task draws differ.
        let cfg = MicroPpConfig::new(8);
        let wl = micropp_workload(&cfg);
        let w0 = wl.rank_work(0);
        let w1 = wl.rank_work(cfg.iterations - 1);
        let hottest0 = w0
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let hottest1 = w1
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(hottest0, hottest1, "hot rank moved between iterations");
    }
}
