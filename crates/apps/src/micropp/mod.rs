//! MicroPP-style micro-scale solid mechanics (paper §6.2).
//!
//! Alya MicroPP is a 3D finite-element library for micro-scale solid
//! mechanics in composite materials; its load imbalance comes from the mix
//! of *linear* and *non-linear* finite elements per MPI rank. We reproduce
//! that cost structure with a real compute kernel:
//!
//! * [`MicroProblem`] — one micro-scale subproblem: a 3-dof displacement
//!   field on an `n³` hex grid, an elasticity-like stencil operator, and a
//!   conjugate-gradient solve. Non-linear subproblems run several Newton
//!   steps (each a CG solve with an updated stiffness), costing a
//!   multiple of the linear ones — exactly the imbalance signature the
//!   paper exploits.
//! * [`micropp_workload`] — per-rank batches of subproblem tasks for the
//!   cluster simulation, with a seeded per-rank non-linear fraction
//!   (material heterogeneity) creating application-level imbalance.
//! * [`calibrate`] — measure the real kernel's linear/non-linear cost on
//!   the host so examples can feed measured (rather than assumed) task
//!   durations to the simulator.

mod kernel;
mod workload;

pub use kernel::{calibrate, Calibration, MicroProblem, SolveStats};
pub use workload::{micropp_workload, MicroPpConfig};
