//! The real micro-scale FE compute kernel.
//!
//! The hot paths — the stencil apply, the CG dot products, and the vector
//! updates — can run on a [`Pool`] via [`MicroProblem::solve_on`]. All
//! parallel arithmetic uses fixed chunk boundaries and in-order partial
//! combination (see [`crate::par`]), so the solve is bitwise identical
//! whether it runs serially or on any number of threads.

use crate::par::{det_dot, for_each_range, SendPtr};
use std::time::Instant;
use tlb_smprt::Pool;

/// Result of solving one subproblem.
#[derive(Clone, Copy, Debug)]
pub struct SolveStats {
    /// Total CG iterations across all Newton steps.
    pub cg_iterations: usize,
    /// Newton steps executed (1 for linear subproblems).
    pub newton_steps: usize,
    /// Final residual norm.
    pub residual: f64,
}

/// One micro-scale subproblem: a 3-dof-per-node displacement field on an
/// `n × n × n` hex grid. The operator is an elasticity-like stencil —
/// a vector Laplacian plus a component-coupling term scaled by the
/// material stiffness — which has the same memory/compute character as a
/// small assembled FE stiffness without storing the matrix.
///
/// Linear subproblems do one CG solve; non-linear ones emulate a Newton
/// loop: several CG solves with a stiffness updated from the previous
/// displacement (a softening law), which is where MicroPP's extra cost
/// per non-linear Gauss point comes from.
#[derive(Clone, Debug)]
pub struct MicroProblem {
    n: usize,
    /// Material stiffness multiplier (updated by Newton steps).
    stiffness: f64,
    /// Applied macro-strain driving the right-hand side.
    strain: f64,
    nonlinear: bool,
}

impl MicroProblem {
    /// A subproblem on an `n³` grid. `nonlinear` selects the Newton path.
    pub fn new(n: usize, nonlinear: bool) -> Self {
        assert!(n >= 2, "grid must have at least 2 points per dimension");
        MicroProblem {
            n,
            stiffness: 1.0,
            strain: 1e-3,
            nonlinear,
        }
    }

    /// Degrees of freedom (3 per grid point).
    pub fn dofs(&self) -> usize {
        3 * self.n * self.n * self.n
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize, c: usize) -> usize {
        3 * ((x * self.n + y) * self.n + z) + c
    }

    #[inline]
    fn is_boundary(&self, x: usize, y: usize, z: usize) -> bool {
        let n = self.n;
        x == 0 || y == 0 || z == 0 || x == n - 1 || y == n - 1 || z == n - 1
    }

    /// y = A·x for the elasticity-like stencil. Interior points couple to
    /// their 6 interior neighbours per component plus a cross-component
    /// term; boundary points are Dirichlet, eliminated from interior rows
    /// (identity rows plus zero off-diagonal coupling) so the operator is
    /// symmetric — a requirement of CG.
    #[cfg(test)]
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.apply_with(x, y, None);
    }

    /// [`MicroProblem::apply`] parallelised over the outer `ix` index:
    /// each `ix` plane writes a disjoint contiguous block of `3n²` output
    /// values, so the planes can run on any threads in any order and the
    /// result is identical to the serial sweep.
    fn apply_with(&self, x: &[f64], y: &mut [f64], pool: Option<&Pool>) {
        let n = self.n;
        let k = self.stiffness;
        debug_assert_eq!(x.len(), self.dofs());
        debug_assert_eq!(y.len(), self.dofs());
        let yp = SendPtr::new(y.as_mut_ptr());
        // Value of a neighbour as the eliminated-Dirichlet operator sees
        // it: zero on the boundary.
        let v = |ix: usize, iy: usize, iz: usize, c: usize| -> f64 {
            if self.is_boundary(ix, iy, iz) {
                0.0
            } else {
                x[self.idx(ix, iy, iz, c)]
            }
        };
        let plane = |ix: usize| {
            for iy in 0..n {
                for iz in 0..n {
                    let boundary = self.is_boundary(ix, iy, iz);
                    for c in 0..3 {
                        let i = self.idx(ix, iy, iz, c);
                        // SAFETY: index `i` lies in plane `ix`'s disjoint
                        // output block; `y` outlives the parallel region.
                        let out = unsafe { &mut *yp.get().add(i) };
                        if boundary {
                            *out = x[i];
                            continue;
                        }
                        let centre = x[i];
                        let nb = v(ix - 1, iy, iz, c)
                            + v(ix + 1, iy, iz, c)
                            + v(ix, iy - 1, iz, c)
                            + v(ix, iy + 1, iz, c)
                            + v(ix, iy, iz - 1, c)
                            + v(ix, iy, iz + 1, c);
                        // Cross-component coupling (Poisson-ratio-like);
                        // both components share the interior status, so the
                        // coupling block is symmetric.
                        let other = x[self.idx(ix, iy, iz, (c + 1) % 3)]
                            + x[self.idx(ix, iy, iz, (c + 2) % 3)];
                        *out = k * (6.0 * centre - nb) + 0.1 * k * other;
                    }
                }
            }
        };
        match pool {
            Some(p) if n >= 4 => p.parallel_for_named("micropp_stencil", n, 1, plane),
            _ => (0..n).for_each(plane),
        }
    }

    /// Right-hand side from the applied macro strain: a body-force-like
    /// load over interior points, component 0.
    fn rhs(&self) -> Vec<f64> {
        let mut b = vec![0.0; self.dofs()];
        let n = self.n;
        for ix in 1..n - 1 {
            for iy in 1..n - 1 {
                for iz in 1..n - 1 {
                    b[self.idx(ix, iy, iz, 0)] = self.strain;
                }
            }
        }
        b
    }

    /// Unpreconditioned CG on the stencil operator. Every reduction uses
    /// fixed-chunk in-order partial sums ([`det_dot`]), so the iterate
    /// sequence is bitwise identical for any thread count.
    fn cg(
        &self,
        b: &[f64],
        x: &mut [f64],
        tol: f64,
        max_iters: usize,
        pool: Option<&Pool>,
    ) -> (usize, f64) {
        let dofs = self.dofs();
        let mut r = vec![0.0; dofs];
        let mut ax = vec![0.0; dofs];
        self.apply_with(x, &mut ax, pool);
        {
            let rp = SendPtr::new(r.as_mut_ptr());
            for_each_range(pool, dofs, |lo, hi| {
                // SAFETY: ranges are disjoint; `r` outlives the region.
                for i in lo..hi {
                    unsafe { *rp.get().add(i) = b[i] - ax[i] };
                }
            });
        }
        let mut p = r.clone();
        let mut rr: f64 = det_dot(pool, &r, &r);
        let b_norm = det_dot(pool, b, b).sqrt().max(1e-30);
        let mut ap = vec![0.0; dofs];
        for it in 0..max_iters {
            if rr.sqrt() / b_norm < tol {
                return (it, rr.sqrt());
            }
            self.apply_with(&p, &mut ap, pool);
            let pap: f64 = det_dot(pool, &p, &ap);
            if pap.abs() < 1e-300 {
                return (it, rr.sqrt());
            }
            let alpha = rr / pap;
            {
                let xp = SendPtr::new(x.as_mut_ptr());
                let rp = SendPtr::new(r.as_mut_ptr());
                for_each_range(pool, dofs, |lo, hi| {
                    // SAFETY: ranges are disjoint; both vectors outlive
                    // the region.
                    for i in lo..hi {
                        unsafe {
                            *xp.get().add(i) += alpha * p[i];
                            *rp.get().add(i) -= alpha * ap[i];
                        }
                    }
                });
            }
            let rr_new: f64 = det_dot(pool, &r, &r);
            let beta = rr_new / rr;
            rr = rr_new;
            {
                let pp = SendPtr::new(p.as_mut_ptr());
                for_each_range(pool, dofs, |lo, hi| {
                    // SAFETY: ranges are disjoint; `p` outlives the region.
                    for (i, &rv) in (lo..hi).zip(&r[lo..hi]) {
                        unsafe { *pp.get().add(i) = rv + beta * *pp.get().add(i) };
                    }
                });
            }
        }
        (max_iters, rr.sqrt())
    }

    /// Solve the subproblem serially; real compute, no shortcuts.
    pub fn solve(&mut self) -> SolveStats {
        self.solve_with(None)
    }

    /// Solve the subproblem with the hot loops spread over `pool`'s
    /// active workers. Bitwise identical to [`MicroProblem::solve`].
    pub fn solve_on(&mut self, pool: &Pool) -> SolveStats {
        self.solve_with(Some(pool))
    }

    fn solve_with(&mut self, pool: Option<&Pool>) -> SolveStats {
        let tol = 1e-8;
        let max_cg = 50 * self.n;
        let b = self.rhs();
        let mut x = vec![0.0; self.dofs()];
        if !self.nonlinear {
            let (iters, res) = self.cg(&b, &mut x, tol, max_cg, pool);
            return SolveStats {
                cg_iterations: iters,
                newton_steps: 1,
                residual: res,
            };
        }
        // Newton loop: soften the stiffness from the displacement norm
        // (a damage-like law) and re-solve until the update stalls.
        let mut total_cg = 0;
        let mut steps = 0;
        let mut res = 0.0;
        for _ in 0..4 {
            steps += 1;
            let (iters, r) = self.cg(&b, &mut x, tol, max_cg, pool);
            total_cg += iters;
            res = r;
            let norm: f64 = det_dot(pool, &x, &x).sqrt();
            let new_stiffness = 1.0 / (1.0 + 5.0 * norm);
            if (new_stiffness - self.stiffness).abs() < 1e-6 {
                break;
            }
            self.stiffness = new_stiffness;
        }
        SolveStats {
            cg_iterations: total_cg,
            newton_steps: steps,
            residual: res,
        }
    }
}

/// Measured linear/non-linear subproblem costs on the host machine.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Seconds per linear subproblem.
    pub linear_secs: f64,
    /// Seconds per non-linear subproblem.
    pub nonlinear_secs: f64,
}

impl Calibration {
    /// Cost ratio non-linear / linear.
    pub fn ratio(&self) -> f64 {
        self.nonlinear_secs / self.linear_secs.max(1e-12)
    }
}

/// Run both kernel variants `reps` times on an `n³` grid and measure
/// their mean cost: the measured inputs to the cluster simulation.
pub fn calibrate(n: usize, reps: usize) -> Calibration {
    assert!(reps > 0, "need at least one repetition");
    let time = |nonlinear: bool| -> f64 {
        let start = Instant::now();
        for _ in 0..reps {
            let mut p = MicroProblem::new(n, nonlinear);
            let stats = p.solve();
            std::hint::black_box(stats.residual);
        }
        start.elapsed().as_secs_f64() / reps as f64
    };
    Calibration {
        linear_secs: time(false),
        nonlinear_secs: time(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_solve_converges() {
        let mut p = MicroProblem::new(6, false);
        let stats = p.solve();
        assert_eq!(stats.newton_steps, 1);
        assert!(stats.cg_iterations > 0);
        assert!(
            stats.residual < 1e-6,
            "CG failed to converge: residual {}",
            stats.residual
        );
    }

    #[test]
    fn nonlinear_costs_more() {
        let mut lin = MicroProblem::new(6, false);
        let mut non = MicroProblem::new(6, true);
        let sl = lin.solve();
        let sn = non.solve();
        assert!(sn.newton_steps > 1);
        assert!(
            sn.cg_iterations > sl.cg_iterations,
            "nonlinear {} vs linear {} CG iterations",
            sn.cg_iterations,
            sl.cg_iterations
        );
    }

    #[test]
    fn solution_is_nontrivial_and_finite() {
        let p = MicroProblem::new(5, false);
        let b = p.rhs();
        let mut x = vec![0.0; p.dofs()];
        let (_, res) = p.cg(&b, &mut x, 1e-8, 500, None);
        assert!(res.is_finite());
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm > 0.0, "zero solution for nonzero load");
        // Dirichlet boundary stays put.
        assert_eq!(x[p.idx(0, 2, 2, 0)], 0.0);
    }

    #[test]
    fn operator_is_symmetric() {
        // CG requires a symmetric operator: check x·(A y) == y·(A x) on
        // random vectors.
        let p = MicroProblem::new(4, false);
        let mut rng = tlb_rng::Rng::seed_from_u64(7);
        let dofs = p.dofs();
        for _ in 0..5 {
            let x: Vec<f64> = (0..dofs).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let y: Vec<f64> = (0..dofs).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let mut ax = vec![0.0; dofs];
            let mut ay = vec![0.0; dofs];
            p.apply(&x, &mut ax);
            p.apply(&y, &mut ay);
            let xay: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
            let yax: f64 = y.iter().zip(&ax).map(|(a, b)| a * b).sum();
            assert!(
                (xay - yax).abs() < 1e-9 * xay.abs().max(1.0),
                "asymmetric operator: {xay} vs {yax}"
            );
        }
    }

    #[test]
    fn solve_bitwise_identical_across_thread_counts() {
        // The acceptance bar for the parallel kernels: the full Newton/CG
        // solve — every dot product, axpy, and stencil apply — produces
        // the exact same bits at 1 and 8 threads as serially.
        let serial = {
            let mut p = MicroProblem::new(8, true);
            p.solve()
        };
        for threads in [1usize, 8] {
            let pool = Pool::new(threads);
            let mut p = MicroProblem::new(8, true);
            let stats = p.solve_on(&pool);
            assert_eq!(
                stats.cg_iterations, serial.cg_iterations,
                "{threads} threads"
            );
            assert_eq!(stats.newton_steps, serial.newton_steps, "{threads} threads");
            assert_eq!(
                stats.residual.to_bits(),
                serial.residual.to_bits(),
                "residual differs at {threads} threads"
            );
            assert_eq!(
                p.stiffness.to_bits(),
                {
                    let mut q = MicroProblem::new(8, true);
                    q.solve();
                    q.stiffness.to_bits()
                },
                "final Newton stiffness differs at {threads} threads"
            );
        }
    }

    #[test]
    fn cg_solution_vector_bitwise_identical_across_thread_counts() {
        let p = MicroProblem::new(7, false);
        let b = p.rhs();
        let mut x_ref = vec![0.0; p.dofs()];
        p.cg(&b, &mut x_ref, 1e-8, 500, None);
        for threads in [1usize, 2, 8] {
            let pool = Pool::new(threads);
            let mut x = vec![0.0; p.dofs()];
            p.cg(&b, &mut x, 1e-8, 500, Some(&pool));
            assert!(
                x.iter()
                    .zip(&x_ref)
                    .all(|(a, r)| a.to_bits() == r.to_bits()),
                "CG iterate differs at {threads} threads"
            );
        }
    }

    #[test]
    fn calibration_measures_positive_costs() {
        // Grid 6³ with a few reps: large enough that the nonlinear/linear
        // wall-clock ratio is robust to scheduler noise in parallel tests.
        let c = calibrate(6, 3);
        assert!(c.linear_secs > 0.0);
        assert!(c.nonlinear_secs > 0.0);
        assert!(
            c.ratio() > 1.0,
            "nonlinear should cost more (ratio {})",
            c.ratio()
        );
    }
}
