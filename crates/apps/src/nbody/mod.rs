//! Barnes–Hut n-body with Orthogonal Recursive Bisection (paper §6.2).
//!
//! The paper's n-body benchmark is a parallel Barnes–Hut implementation
//! that uses ORB each timestep to equalise work across MPI ranks. ORB's
//! cost model assumes uniform node speed, so a slow node leaves its ranks
//! behind (Fig. 6c) — the scenario the transparent balancer then rescues.
//!
//! * [`Body`], [`Octree`] — a real Barnes–Hut force kernel (octree with
//!   centre-of-mass approximation, opening angle θ), plus a direct O(n²)
//!   reference for accuracy tests and a leapfrog integrator.
//! * [`orb_partition`] — orthogonal recursive bisection of bodies into
//!   per-rank groups of (near-)equal size.
//! * [`NBodyWorkload`] — the cluster-simulation workload: per-rank force
//!   tasks whose cost follows the Barnes–Hut `n log n` law, repartitioned
//!   by ORB after every timestep.

mod kernel;
mod orb;
mod workload;

pub use kernel::{calibrate_force_cost, direct_accelerations, Body, Octree};
pub use orb::orb_partition;
pub use workload::{NBodyConfig, NBodyWorkload};
