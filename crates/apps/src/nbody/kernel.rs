//! Barnes–Hut octree force computation.
//!
//! The force accumulation — one independent tree walk per body — can run
//! on a [`Pool`] via [`Octree::accelerations`]: each body writes only its
//! own acceleration slot, so the result is bitwise identical for any
//! thread count (no reductions cross body boundaries).

use crate::par::SendPtr;
use std::time::Instant;
use tlb_smprt::Pool;

/// Softening length avoiding singular pairwise forces.
const SOFTENING2: f64 = 1e-6;

/// A point mass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
}

impl Body {
    /// A body at rest.
    pub fn at(pos: [f64; 3], mass: f64) -> Self {
        Body {
            pos,
            vel: [0.0; 3],
            mass,
        }
    }
}

#[derive(Clone, Debug)]
struct Node {
    centre: [f64; 3],
    half: f64,
    mass: f64,
    com: [f64; 3],
    /// Index of the first of 8 children in the node pool, or `NONE`.
    children: usize,
    /// Body index for leaf nodes holding exactly one body.
    body: Option<usize>,
}

const NONE: usize = usize::MAX;

/// A Barnes–Hut octree over a set of bodies.
pub struct Octree {
    nodes: Vec<Node>,
    theta2: f64,
}

impl Octree {
    /// Build the tree with opening angle `theta` (typical: 0.5).
    pub fn build(bodies: &[Body], theta: f64) -> Self {
        assert!(theta > 0.0, "theta must be positive");
        // Bounding cube.
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for b in bodies {
            for d in 0..3 {
                lo[d] = lo[d].min(b.pos[d]);
                hi[d] = hi[d].max(b.pos[d]);
            }
        }
        let centre = [
            0.5 * (lo[0] + hi[0]),
            0.5 * (lo[1] + hi[1]),
            0.5 * (lo[2] + hi[2]),
        ];
        let half = (0..3).map(|d| (hi[d] - lo[d]) * 0.5).fold(1e-12, f64::max) * 1.0001;
        let mut tree = Octree {
            nodes: vec![Node {
                centre,
                half,
                mass: 0.0,
                com: [0.0; 3],
                children: NONE,
                body: None,
            }],
            theta2: theta * theta,
        };
        for (i, b) in bodies.iter().enumerate() {
            tree.insert(0, i, b, bodies, 0);
        }
        tree.summarise(0, bodies);
        tree
    }

    fn octant(centre: &[f64; 3], p: &[f64; 3]) -> usize {
        (usize::from(p[0] >= centre[0]))
            | (usize::from(p[1] >= centre[1]) << 1)
            | (usize::from(p[2] >= centre[2]) << 2)
    }

    fn child_centre(centre: &[f64; 3], half: f64, oct: usize) -> [f64; 3] {
        let q = half * 0.5;
        [
            centre[0] + if oct & 1 != 0 { q } else { -q },
            centre[1] + if oct & 2 != 0 { q } else { -q },
            centre[2] + if oct & 4 != 0 { q } else { -q },
        ]
    }

    fn split(&mut self, node: usize) {
        let (centre, half) = (self.nodes[node].centre, self.nodes[node].half);
        let first = self.nodes.len();
        for oct in 0..8 {
            self.nodes.push(Node {
                centre: Self::child_centre(&centre, half, oct),
                half: half * 0.5,
                mass: 0.0,
                com: [0.0; 3],
                children: NONE,
                body: None,
            });
        }
        self.nodes[node].children = first;
    }

    fn insert(&mut self, node: usize, idx: usize, b: &Body, bodies: &[Body], depth: usize) {
        // Identical positions would recurse forever; cap the depth and
        // let deep leaves hold one representative (mass is still summed
        // during summarise via the per-leaf body list semantics below).
        if self.nodes[node].children == NONE {
            match self.nodes[node].body {
                None => {
                    self.nodes[node].body = Some(idx);
                    return;
                }
                Some(existing) if depth < 64 => {
                    self.split(node);
                    let eb = bodies[existing];
                    self.nodes[node].body = None;
                    let oct_e = Self::octant(&self.nodes[node].centre, &eb.pos);
                    let child_e = self.nodes[node].children + oct_e;
                    self.insert(child_e, existing, &eb, bodies, depth + 1);
                }
                Some(_) => {
                    // Depth cap: drop into the same leaf (approximation
                    // for coincident points).
                    return;
                }
            }
        }
        let oct = Self::octant(&self.nodes[node].centre, &b.pos);
        let child = self.nodes[node].children + oct;
        self.insert(child, idx, b, bodies, depth + 1);
    }

    fn summarise(&mut self, node: usize, bodies: &[Body]) -> (f64, [f64; 3]) {
        let children = self.nodes[node].children;
        let (mass, com) = if children == NONE {
            match self.nodes[node].body {
                Some(i) => (bodies[i].mass, bodies[i].pos),
                None => (0.0, self.nodes[node].centre),
            }
        } else {
            let mut m = 0.0;
            let mut c = [0.0f64; 3];
            for oct in 0..8 {
                let (cm, cc) = self.summarise(children + oct, bodies);
                m += cm;
                for d in 0..3 {
                    c[d] += cm * cc[d];
                }
            }
            if m > 0.0 {
                for v in c.iter_mut() {
                    *v /= m;
                }
            } else {
                c = self.nodes[node].centre;
            }
            (m, c)
        };
        self.nodes[node].mass = mass;
        self.nodes[node].com = com;
        (mass, com)
    }

    /// Gravitational acceleration on a test position (G = 1), excluding
    /// the body at `skip` if given.
    pub fn acceleration(&self, pos: &[f64; 3], skip: Option<usize>) -> [f64; 3] {
        let mut acc = [0.0f64; 3];
        self.accumulate(0, pos, skip, &mut acc);
        acc
    }

    fn accumulate(&self, node: usize, pos: &[f64; 3], skip: Option<usize>, acc: &mut [f64; 3]) {
        let n = &self.nodes[node];
        if n.mass <= 0.0 {
            return;
        }
        let dx = [n.com[0] - pos[0], n.com[1] - pos[1], n.com[2] - pos[2]];
        let dist2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
        let width = 2.0 * n.half;
        let is_leaf = n.children == NONE;
        if is_leaf || width * width < self.theta2 * dist2 {
            if is_leaf && n.body == skip {
                return;
            }
            let r2 = dist2 + SOFTENING2;
            let inv_r3 = 1.0 / (r2 * r2.sqrt());
            for d in 0..3 {
                acc[d] += n.mass * dx[d] * inv_r3;
            }
            return;
        }
        for oct in 0..8 {
            self.accumulate(n.children + oct, pos, skip, acc);
        }
    }

    /// Accelerations for every body in `bodies` (each excluding itself),
    /// optionally spread over `pool`'s active workers. Each body's tree
    /// walk is independent and writes only its own output slot, so the
    /// result is identical to the serial loop for any thread count.
    pub fn accelerations(&self, bodies: &[Body], pool: Option<&Pool>) -> Vec<[f64; 3]> {
        let n = bodies.len();
        let mut acc = vec![[0.0f64; 3]; n];
        let ap = SendPtr::new(acc.as_mut_ptr());
        let one = |i: usize| {
            let a = self.acceleration(&bodies[i].pos, Some(i));
            // SAFETY: body `i` writes only slot `i`; `acc` outlives the
            // parallel region (parallel_for blocks until done).
            unsafe { *ap.get().add(i) = a };
        };
        match pool {
            // A tree walk costs microseconds; claim bodies a cacheline's
            // worth at a time to keep counter traffic negligible.
            Some(p) if n > 128 => p.parallel_for_named("nbody_forces", n, 32, one),
            _ => (0..n).for_each(one),
        }
        acc
    }

    /// Number of tree nodes (for tests/benches).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total mass held by the tree root.
    pub fn total_mass(&self) -> f64 {
        self.nodes[0].mass
    }
}

/// Direct O(n²) accelerations — the reference for accuracy tests.
pub fn direct_accelerations(bodies: &[Body]) -> Vec<[f64; 3]> {
    let n = bodies.len();
    let mut acc = vec![[0.0f64; 3]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = [
                bodies[j].pos[0] - bodies[i].pos[0],
                bodies[j].pos[1] - bodies[i].pos[1],
                bodies[j].pos[2] - bodies[i].pos[2],
            ];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + SOFTENING2;
            let inv_r3 = 1.0 / (r2 * r2.sqrt());
            for d in 0..3 {
                acc[i][d] += bodies[j].mass * dx[d] * inv_r3;
            }
        }
    }
    acc
}

/// Measure the host's Barnes–Hut cost per body per `log2(n)` — the
/// calibrated constant the cluster workload's cost model uses.
pub fn calibrate_force_cost(bodies: &[Body], theta: f64) -> f64 {
    let n = bodies.len().max(2);
    let start = Instant::now();
    let tree = Octree::build(bodies, theta);
    let mut sink = 0.0;
    for (i, b) in bodies.iter().enumerate() {
        let a = tree.acceleration(&b.pos, Some(i));
        sink += a[0];
    }
    std::hint::black_box(sink);
    let total = start.elapsed().as_secs_f64();
    total / (n as f64 * (n as f64).log2())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bodies(n: usize, seed: u64) -> Vec<Body> {
        let mut rng = tlb_rng::Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Body {
                pos: [
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                ],
                vel: [0.0; 3],
                mass: rng.range_f64(0.5, 2.0),
            })
            .collect()
    }

    #[test]
    fn tree_conserves_mass() {
        let bodies = random_bodies(500, 1);
        let tree = Octree::build(&bodies, 0.5);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((tree.total_mass() - total).abs() < 1e-9 * total);
        assert!(tree.node_count() > 500 / 8);
    }

    #[test]
    fn two_bodies_attract_along_axis() {
        let bodies = vec![
            Body::at([-0.5, 0.0, 0.0], 1.0),
            Body::at([0.5, 0.0, 0.0], 1.0),
        ];
        let tree = Octree::build(&bodies, 0.5);
        let a0 = tree.acceleration(&bodies[0].pos, Some(0));
        assert!(a0[0] > 0.0, "no attraction towards the other body");
        assert!(a0[1].abs() < 1e-12 && a0[2].abs() < 1e-12);
        // Newton's third law (equal masses): symmetric magnitudes.
        let a1 = tree.acceleration(&bodies[1].pos, Some(1));
        assert!((a0[0] + a1[0]).abs() < 1e-12);
    }

    #[test]
    fn barnes_hut_matches_direct_for_small_theta() {
        let bodies = random_bodies(300, 2);
        let tree = Octree::build(&bodies, 0.2);
        let direct = direct_accelerations(&bodies);
        let mut worst = 0.0f64;
        for (i, b) in bodies.iter().enumerate() {
            let a = tree.acceleration(&b.pos, Some(i));
            let num: f64 = (0..3)
                .map(|d| (a[d] - direct[i][d]).powi(2))
                .sum::<f64>()
                .sqrt();
            let den: f64 = (0..3).map(|d| direct[i][d].powi(2)).sum::<f64>().sqrt();
            worst = worst.max(num / den.max(1e-9));
        }
        assert!(worst < 0.05, "worst relative force error {worst}");
    }

    #[test]
    fn theta_zero_limit_is_exact() {
        // With a tiny theta every interaction opens to leaves: exactly the
        // direct sum (same softening).
        let bodies = random_bodies(50, 3);
        let tree = Octree::build(&bodies, 1e-6);
        let direct = direct_accelerations(&bodies);
        for (i, b) in bodies.iter().enumerate() {
            let a = tree.acceleration(&b.pos, Some(i));
            for d in 0..3 {
                assert!(
                    (a[d] - direct[i][d]).abs() < 1e-9 * direct[i][d].abs().max(1.0),
                    "body {i} dim {d}: {} vs {}",
                    a[d],
                    direct[i][d]
                );
            }
        }
    }

    #[test]
    fn coincident_bodies_do_not_hang() {
        let mut bodies = random_bodies(10, 4);
        bodies.push(bodies[0]); // exact duplicate position
        let tree = Octree::build(&bodies, 0.5);
        assert!(tree.total_mass() > 0.0);
    }

    #[test]
    fn pool_accelerations_match_serial_bitwise() {
        let bodies = random_bodies(600, 9);
        let tree = Octree::build(&bodies, 0.5);
        let serial = tree.accelerations(&bodies, None);
        let pool = Pool::new(4);
        let parallel = tree.accelerations(&bodies, Some(&pool));
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            for d in 0..3 {
                assert_eq!(
                    s[d].to_bits(),
                    p[d].to_bits(),
                    "body {i} dim {d}: {} vs {}",
                    s[d],
                    p[d]
                );
            }
        }
    }

    #[test]
    fn calibration_is_positive() {
        let bodies = random_bodies(2000, 5);
        let c = calibrate_force_cost(&bodies, 0.5);
        assert!(c > 0.0 && c < 1.0);
    }
}
