//! Orthogonal Recursive Bisection over body positions.

use crate::nbody::Body;

/// Partition `bodies` into `ranks` groups by recursively bisecting space
/// along the widest axis of each subset's bounding box, splitting body
/// counts proportionally to the rank counts on each side. Returns the
/// rank of every body.
///
/// This is the application-level balancer of the paper's n-body code: it
/// equalises *body counts* (a uniform-speed cost model), so it cannot
/// compensate for a slow node — the gap our runtime closes.
pub fn orb_partition(bodies: &[Body], ranks: usize) -> Vec<usize> {
    assert!(ranks > 0, "need at least one rank");
    let mut assignment = vec![0usize; bodies.len()];
    if ranks == 1 || bodies.is_empty() {
        return assignment;
    }
    let mut indices: Vec<usize> = (0..bodies.len()).collect();
    bisect(bodies, &mut indices, 0, ranks, &mut assignment);
    assignment
}

fn widest_axis(bodies: &[Body], idx: &[usize]) -> usize {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in idx {
        for d in 0..3 {
            lo[d] = lo[d].min(bodies[i].pos[d]);
            hi[d] = hi[d].max(bodies[i].pos[d]);
        }
    }
    let mut best = 0;
    let mut width = f64::NEG_INFINITY;
    for d in 0..3 {
        if hi[d] - lo[d] > width {
            width = hi[d] - lo[d];
            best = d;
        }
    }
    best
}

fn bisect(bodies: &[Body], idx: &mut [usize], rank0: usize, ranks: usize, out: &mut [usize]) {
    if ranks == 1 {
        for &i in idx.iter() {
            out[i] = rank0;
        }
        return;
    }
    let left_ranks = ranks / 2;
    let right_ranks = ranks - left_ranks;
    // Proportional split point (counts proportional to ranks each side).
    let split = idx.len() * left_ranks / ranks;
    let axis = widest_axis(bodies, idx);
    if split > 0 && split < idx.len() {
        idx.select_nth_unstable_by(split, |&a, &b| {
            bodies[a].pos[axis]
                .partial_cmp(&bodies[b].pos[axis])
                .expect("positions must not be NaN")
        });
    }
    let (left, right) = idx.split_at_mut(split);
    bisect(bodies, left, rank0, left_ranks, out);
    bisect(bodies, right, rank0 + left_ranks, right_ranks, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bodies(n: usize, seed: u64) -> Vec<Body> {
        let mut rng = tlb_rng::Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Body::at(
                    [
                        rng.range_f64(-1.0, 1.0),
                        rng.range_f64(-1.0, 1.0),
                        rng.range_f64(-1.0, 1.0),
                    ],
                    1.0,
                )
            })
            .collect()
    }

    fn counts(assign: &[usize], ranks: usize) -> Vec<usize> {
        let mut c = vec![0usize; ranks];
        for &r in assign {
            c[r] += 1;
        }
        c
    }

    #[test]
    fn counts_are_balanced_power_of_two() {
        let bodies = random_bodies(1024, 1);
        let assign = orb_partition(&bodies, 8);
        let c = counts(&assign, 8);
        assert_eq!(c, vec![128; 8]);
    }

    #[test]
    fn counts_are_balanced_odd_ranks() {
        let bodies = random_bodies(1000, 2);
        let assign = orb_partition(&bodies, 6);
        let c = counts(&assign, 6);
        let min = *c.iter().min().unwrap();
        let max = *c.iter().max().unwrap();
        assert!(max - min <= 2, "counts {c:?}");
        assert_eq!(c.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn single_rank_takes_all() {
        let bodies = random_bodies(10, 3);
        let assign = orb_partition(&bodies, 1);
        assert!(assign.iter().all(|&r| r == 0));
    }

    #[test]
    fn partitions_are_spatially_coherent() {
        // Bodies along the x-axis split by contiguous intervals.
        let bodies: Vec<Body> = (0..100)
            .map(|i| Body::at([i as f64, 0.0, 0.0], 1.0))
            .collect();
        let assign = orb_partition(&bodies, 4);
        // Sorted by x, rank labels must be non-decreasing after relabel:
        // each rank owns one contiguous interval.
        for w in assign.windows(2) {
            assert!(
                w[1] == w[0] || w[1] == w[0] + 1 || w[1] > w[0],
                "non-contiguous ORB split: {assign:?}"
            );
        }
        let c = counts(&assign, 4);
        assert_eq!(c, vec![25; 4]);
    }

    #[test]
    fn clustered_data_still_balances_counts() {
        // A dense cluster plus sparse outliers: ORB still equalises counts
        // (that is precisely its limitation vs work-based partitioning).
        let mut bodies = random_bodies(900, 4);
        for b in bodies.iter_mut().take(800) {
            for d in 0..3 {
                b.pos[d] *= 0.01; // dense core
            }
        }
        let assign = orb_partition(&bodies, 4);
        let c = counts(&assign, 4);
        let max = *c.iter().max().unwrap();
        let min = *c.iter().min().unwrap();
        assert!(max - min <= 2, "counts {c:?}");
    }
}
