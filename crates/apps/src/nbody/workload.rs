//! The n-body workload for the cluster simulation.

use crate::nbody::{orb_partition, Body};
use tlb_cluster::{TaskSpec, Workload};
use tlb_rng::Rng;

/// Parameters of the simulated n-body run.
#[derive(Clone, Debug)]
pub struct NBodyConfig {
    /// Total bodies across all ranks.
    pub bodies: usize,
    /// Appranks.
    pub appranks: usize,
    /// Bodies per force task (the blocking of the `calculate_forces`
    /// task in the paper's Fig. 3).
    pub bodies_per_task: usize,
    /// Seconds of compute per body per `log2(total bodies)` — calibrate
    /// with [`crate::nbody::calibrate_force_cost`] or keep the default.
    pub force_cost: f64,
    /// Timesteps.
    pub iterations: usize,
    /// Bytes shipped per body when a task is offloaded (positions +
    /// masses in and forces back).
    pub bytes_per_body: usize,
    /// Fraction of bodies in a dense Plummer-like core (the rest fill a
    /// uniform halo). Dense regions have deeper octrees, so their force
    /// tasks cost more per body — the load imbalance ORB cannot see,
    /// because it equalises *counts*.
    pub core_fraction: f64,
    /// Exponent of the density→cost law (0 disables density effects).
    pub density_exponent: f64,
    /// RNG seed for positions and per-step drift.
    pub seed: u64,
}

impl NBodyConfig {
    /// Defaults sized so one iteration is a few hundred ms per rank.
    pub fn new(bodies: usize, appranks: usize) -> Self {
        NBodyConfig {
            bodies,
            appranks,
            bodies_per_task: 256,
            force_cost: 1e-6,
            iterations: 8,
            bytes_per_body: 48,
            core_fraction: 0.6,
            density_exponent: 0.15,
            seed: 99,
        }
    }
}

/// 30-bit Morton (Z-order) code of a position in [-1.5, 1.5]³.
fn morton(pos: &[f64; 3]) -> u64 {
    let spread = |mut v: u64| {
        v &= 0x3FF;
        v = (v | (v << 20)) & 0x000F_0000_00FF;
        v = (v | (v << 10)) & 0x000F_00F0_0F00_F00F;
        v = (v | (v << 4)) & 0x00C3_0C30_C30C_30C3;
        v = (v | (v << 2)) & 0x0249_2492_4924_9249;
        v
    };
    let q = |x: f64| -> u64 { (((x + 1.5) / 3.0).clamp(0.0, 0.999) * 1024.0) as u64 };
    spread(q(pos[0])) | (spread(q(pos[1])) << 1) | (spread(q(pos[2])) << 2)
}

/// The workload: holds real body positions, partitions them with ORB
/// every timestep, and emits one force task per body block. Task cost
/// follows Barnes–Hut's `n log n`: `force_cost × block × log2(total)`.
///
/// ORB equalises *counts*; it never learns that a node is slow — the
/// paper's point in §7.1. Positions drift a little each step so the
/// partition genuinely recomputes.
pub struct NBodyWorkload {
    cfg: NBodyConfig,
    bodies: Vec<Body>,
    assignment: Vec<usize>,
    rng: Rng,
}

impl NBodyWorkload {
    /// Build with a clustered distribution: a Gaussian core holding
    /// `core_fraction` of the bodies inside a uniform halo cube.
    pub fn new(cfg: NBodyConfig) -> Self {
        assert!(cfg.bodies >= cfg.appranks, "fewer bodies than ranks");
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let n_core = (cfg.bodies as f64 * cfg.core_fraction) as usize;
        let gauss = |rng: &mut Rng| {
            // Box–Muller from two uniforms.
            let u1: f64 = rng.range_f64(1e-12, 1.0);
            let u2: f64 = rng.f64_unit();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let bodies: Vec<Body> = (0..cfg.bodies)
            .map(|i| {
                let pos = if i < n_core {
                    // Off-centre dense core: a centred cluster would be
                    // split evenly by ORB's median planes and hide the
                    // density imbalance entirely.
                    [
                        -0.55 + 0.12 * gauss(&mut rng),
                        -0.55 + 0.12 * gauss(&mut rng),
                        -0.55 + 0.12 * gauss(&mut rng),
                    ]
                } else {
                    [
                        rng.range_f64(-1.0, 1.0),
                        rng.range_f64(-1.0, 1.0),
                        rng.range_f64(-1.0, 1.0),
                    ]
                };
                Body {
                    pos,
                    vel: [0.0; 3],
                    mass: rng.range_f64(0.5, 2.0),
                }
            })
            .collect();
        let assignment = orb_partition(&bodies, cfg.appranks);
        NBodyWorkload {
            cfg,
            bodies,
            assignment,
            rng,
        }
    }

    /// Bodies currently assigned to `rank`.
    pub fn rank_count(&self, rank: usize) -> usize {
        self.assignment.iter().filter(|&&r| r == rank).count()
    }

    /// Cost multiplier of a block of bodies from its local density: deeper
    /// octree ⇒ more interactions per body. Density is measured against
    /// the global mean via the block's bounding-box volume.
    fn density_factor(&self, block: &[usize]) -> f64 {
        if self.cfg.density_exponent == 0.0 || block.len() < 2 {
            return 1.0;
        }
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for &i in block {
            for d in 0..3 {
                lo[d] = lo[d].min(self.bodies[i].pos[d]);
                hi[d] = hi[d].max(self.bodies[i].pos[d]);
            }
        }
        let vol: f64 = (0..3).map(|d| (hi[d] - lo[d]).max(1e-6)).product();
        let density = block.len() as f64 / vol;
        let global_density = self.cfg.bodies as f64 / 8.0; // cube volume 2³
        (density / global_density)
            .powf(self.cfg.density_exponent)
            .clamp(0.4, 4.0)
    }
}

impl Workload for NBodyWorkload {
    fn appranks(&self) -> usize {
        self.cfg.appranks
    }

    fn iterations(&self) -> usize {
        self.cfg.iterations
    }

    fn tasks(&mut self, rank: usize, _iteration: usize) -> Vec<TaskSpec> {
        let mut mine: Vec<usize> = (0..self.bodies.len())
            .filter(|&i| self.assignment[i] == rank)
            .collect();
        if mine.is_empty() {
            return Vec::new();
        }
        // Blocks must be spatially coherent (the real code blocks the
        // octree traversal): order by Morton code before chunking.
        mine.sort_by_key(|&i| morton(&self.bodies[i].pos));
        let log_n = (self.cfg.bodies.max(2) as f64).log2();
        mine.chunks(self.cfg.bodies_per_task)
            .map(|block| {
                let factor = self.density_factor(block);
                TaskSpec::with_bytes(
                    self.cfg.force_cost * block.len() as f64 * log_n * factor,
                    block.len() * self.cfg.bytes_per_body,
                )
            })
            .collect()
    }

    fn end_iteration(&mut self, _iteration: usize, _rank_seconds: &[f64]) {
        // Drift positions slightly (cheap surrogate for the integrator —
        // the real kernel integrates in the examples) and re-run ORB, as
        // the application does every timestep.
        for b in self.bodies.iter_mut() {
            for d in 0..3 {
                b.pos[d] += self.rng.range_f64(-0.01, 0.01);
            }
        }
        self.assignment = orb_partition(&self.bodies, self.cfg.appranks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_get_equal_counts() {
        let wl = NBodyWorkload::new(NBodyConfig::new(4096, 8));
        for r in 0..8 {
            assert_eq!(wl.rank_count(r), 512);
        }
    }

    #[test]
    fn tasks_cover_all_bodies() {
        let mut wl = NBodyWorkload::new(NBodyConfig::new(4000, 4));
        let specs = wl.tasks(0, 0);
        let total_bytes: usize = specs.iter().map(|t| t.bytes).sum();
        assert_eq!(total_bytes, 1000 * 48);
        // 1000 bodies in blocks of 256 → 3 full + 1 remainder task.
        assert_eq!(specs.len(), 4);
    }

    #[test]
    fn counts_balanced_but_work_is_not() {
        // ORB equalises counts exactly; with a clustered distribution the
        // dense-core ranks cost more per body, so *work* is imbalanced —
        // the gap the paper's runtime closes (Fig. 6c).
        let mut wl = NBodyWorkload::new(NBodyConfig::new(8192, 8));
        let counts: Vec<usize> = (0..8).map(|r| wl.rank_count(r)).collect();
        assert!(counts.iter().all(|&c| c == 1024), "counts {counts:?}");
        let work: Vec<f64> = (0..8)
            .map(|r| wl.tasks(r, 0).iter().map(|t| t.duration).sum())
            .collect();
        let imb = tlb_core::imbalance(&work);
        assert!(imb > 1.05, "density cost should imbalance work: {imb}");
        assert!(imb < 2.0, "imbalance implausibly large: {imb}");
    }

    #[test]
    fn uniform_distribution_work_is_balanced() {
        let mut cfg = NBodyConfig::new(8192, 8);
        cfg.core_fraction = 0.0;
        cfg.density_exponent = 0.0;
        let mut wl = NBodyWorkload::new(cfg);
        let work: Vec<f64> = (0..8)
            .map(|r| wl.tasks(r, 0).iter().map(|t| t.duration).sum())
            .collect();
        let imb = tlb_core::imbalance(&work);
        assert!(imb < 1.01, "uniform ORB should balance work: {imb}");
    }

    #[test]
    fn repartition_keeps_balance_after_drift() {
        let mut wl = NBodyWorkload::new(NBodyConfig::new(2048, 4));
        for it in 0..3 {
            wl.end_iteration(it, &[0.0; 4]);
        }
        let counts: Vec<usize> = (0..4).map(|r| wl.rank_count(r)).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 2, "counts {counts:?}");
    }

    #[test]
    fn cost_model_follows_nlogn() {
        let mut c_small = NBodyConfig::new(1024, 1);
        let mut c_large = NBodyConfig::new(4096, 1);
        // Disable the density law so the pure n·log n scaling is visible.
        for c in [&mut c_small, &mut c_large] {
            c.core_fraction = 0.0;
            c.density_exponent = 0.0;
        }
        let mut small = NBodyWorkload::new(c_small);
        let mut large = NBodyWorkload::new(c_large);
        let ws: f64 = small.tasks(0, 0).iter().map(|t| t.duration).sum();
        let wl_: f64 = large.tasks(0, 0).iter().map(|t| t.duration).sum();
        // 4x bodies, log factor 12/10 → expect ratio 4 × 1.2 = 4.8.
        let ratio = wl_ / ws;
        assert!((4.6..5.0).contains(&ratio), "ratio {ratio}");
    }
}
