//! Deterministic parallel helpers shared by the application kernels.
//!
//! Every helper here produces *bitwise identical* results whether it runs
//! serially (`pool: None`) or on a [`Pool`] with any number of active
//! threads. The trick is that work is split into chunks whose boundaries
//! depend only on the problem size — never on the thread count — each
//! chunk's arithmetic is a fixed serial loop, and reductions combine the
//! per-chunk partials serially in chunk order. Threads only decide *who*
//! computes a chunk, not *what* or *in which order* partials combine.

use tlb_smprt::Pool;

/// Elements per reduction/update chunk. Large enough that the one dynamic
/// dispatch per chunk vanishes against ~4k fused multiply-adds; small
/// enough that typical CG state vectors (10⁴–10⁶ dofs) split into enough
/// chunks to feed 8 workers.
pub(crate) const CHUNK: usize = 4096;

/// A raw pointer the kernels send across threads for *disjoint* writes.
/// Safety rests with each call site: concurrent closures must write
/// non-overlapping indices, and the pointee must outlive the parallel
/// region (guaranteed because `Pool::parallel_for` blocks until done).
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// The wrapped pointer. Going through a method (rather than field
    /// access) makes closures capture the `Sync` wrapper itself — Rust
    /// 2021's disjoint capture would otherwise grab the bare `*mut T`.
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

/// Run `body(chunk_index)` for chunk indices `0..chunks`, on the pool if
/// one is given (one index per claim: each chunk is already coarse).
pub(crate) fn for_each_chunk(pool: Option<&Pool>, chunks: usize, body: impl Fn(usize) + Sync) {
    match pool {
        Some(p) if chunks > 1 => p.parallel_for_named("det_chunks", chunks, 1, body),
        _ => (0..chunks).for_each(body),
    }
}

/// Run `body(lo, hi)` over fixed [`CHUNK`]-sized ranges covering `0..n`.
pub(crate) fn for_each_range(pool: Option<&Pool>, n: usize, body: impl Fn(usize, usize) + Sync) {
    let chunks = n.div_ceil(CHUNK);
    for_each_chunk(pool, chunks, |c| {
        let lo = c * CHUNK;
        let hi = ((c + 1) * CHUNK).min(n);
        body(lo, hi);
    });
}

/// Deterministic dot product `a · b`: per-chunk serial partials, combined
/// serially in chunk order. The serial path runs the identical chunked
/// summation, so `None` and `Some(pool)` agree to the last bit.
pub(crate) fn det_dot(pool: Option<&Pool>, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    let chunks = n.div_ceil(CHUNK);
    let mut partials = vec![0.0f64; chunks];
    let pp = SendPtr::new(partials.as_mut_ptr());
    for_each_chunk(pool, chunks, |c| {
        let lo = c * CHUNK;
        let hi = ((c + 1) * CHUNK).min(n);
        let mut s = 0.0;
        for i in lo..hi {
            s += a[i] * b[i];
        }
        // SAFETY: each chunk index writes only its own partial slot, and
        // `partials` outlives the loop (parallel_for blocks until done).
        unsafe { *pp.get().add(c) = s };
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_dot_matches_serial_sum_closely() {
        let a: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..10_000).map(|i| (i as f64).cos()).collect();
        let serial: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let det = det_dot(None, &a, &b);
        assert!((det - serial).abs() < 1e-9 * serial.abs().max(1.0));
    }

    #[test]
    fn det_dot_bitwise_identical_across_thread_counts() {
        let a: Vec<f64> = (0..50_000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let b: Vec<f64> = (0..50_000).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let reference = det_dot(None, &a, &b);
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let got = det_dot(Some(&pool), &a, &b);
            assert_eq!(
                got.to_bits(),
                reference.to_bits(),
                "dot differs at {threads} threads"
            );
        }
    }

    #[test]
    fn for_each_range_covers_exactly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = CHUNK * 3 + 17;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = Pool::new(4);
        for_each_range(Some(&pool), n, |lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
