//! Workloads: the three benchmarks of the paper's evaluation (§6.2).
//!
//! * [`synthetic`] — the configurable-imbalance synthetic benchmark:
//!   100 tasks per core per iteration, 50 ms mean duration, per-rank
//!   durations chosen to hit a target imbalance (Eq. 2), with the
//!   worst-case rank at `50 ms × imbalance`.
//! * [`micropp`] — a micro-scale solid-mechanics FE kernel in the mould
//!   of Alya MicroPP: every task solves one micro-scale subproblem on a
//!   3D hex grid with CG; a per-rank fraction of subproblems is
//!   *non-linear* (multiple Newton steps), which is exactly MicroPP's
//!   source of load imbalance ("the mix of linear and non-linear finite
//!   elements"). The real kernel runs on `tlb-smprt`; the cluster
//!   simulation consumes its calibrated per-task costs.
//! * [`nbody`] — a Barnes–Hut n-body simulation with Orthogonal
//!   Recursive Bisection repartitioning each timestep. ORB equalises
//!   *bodies* per rank under a uniform-speed cost model, which is why a
//!   slow node defeats it (paper §7.1, Fig. 6c) — the scenario our
//!   runtime then rescues.
//! * [`cholesky`] — blocked Cholesky factorisation: the canonical
//!   OmpSs-2 task-DAG workload (potrf/trsm/syrk/gemm over block regions),
//!   used to exercise the dependency system with a verifiable numerical
//!   result.
//! * [`stencil`] — a heat-diffusion stencil with halo exchange: the
//!   canonical MPI+OmpSs-2 shape of the paper's programming model (§4),
//!   with non-offloadable MPI tasks and region dependencies; not one of
//!   the paper's benchmarks, but the pattern its model section targets.

pub mod amr;
pub mod cholesky;
pub mod micropp;
pub mod nbody;
pub(crate) mod par;
pub mod stencil;
pub mod synthetic;

pub use amr::{amr_workload, AmrConfig, AmrWorkload};
pub use synthetic::{synthetic_workload, SyntheticConfig};
