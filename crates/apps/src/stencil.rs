//! Heat-diffusion stencil with halo exchange: the canonical MPI+OmpSs-2
//! pattern the paper's programming model section (§4) is written for.
//!
//! Each apprank owns a strip of a 2D grid. Every iteration it posts two
//! *non-offloadable* halo-exchange tasks (they stand for MPI calls, which
//! must stay on the apprank — §4: "MPI calls are valid so long as the
//! task and all its ancestors are non-offloadable") and a set of
//! offloadable compute tasks over row blocks. Dependencies follow from
//! the declared regions: the first and last block of a strip read the
//! halo rows, so they order behind the exchange tasks — exactly how the
//! OmpSs-2 single mechanism turns message arrival into task ordering.
//!
//! Two artefacts live here:
//!
//! * [`JacobiGrid`] — a real 5-point Jacobi kernel (used by the examples
//!   and to calibrate per-row compute cost);
//! * [`StencilWorkload`] — the cluster-simulation workload with a
//!   per-rank cost factor (heterogeneous material) as the imbalance
//!   source.

use tlb_cluster::{TaskSpec, Workload};
use tlb_tasking::DataRegion;

/// A real 5-point Jacobi relaxation on a `width × height` grid with
/// fixed boundary values.
#[derive(Clone, Debug)]
pub struct JacobiGrid {
    width: usize,
    height: usize,
    cells: Vec<f64>,
    scratch: Vec<f64>,
}

impl JacobiGrid {
    /// A grid with `1.0` on the top boundary and `0.0` elsewhere.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 3 && height >= 3, "grid too small for a stencil");
        let mut cells = vec![0.0; width * height];
        cells[..width].fill(1.0);
        JacobiGrid {
            width,
            height,
            scratch: cells.clone(),
            cells,
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cell value at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        self.cells[y * self.width + x]
    }

    /// One Jacobi sweep; returns the max absolute update (residual).
    pub fn step(&mut self) -> f64 {
        let w = self.width;
        let mut residual = 0.0f64;
        for y in 1..self.height - 1 {
            for x in 1..w - 1 {
                let i = y * w + x;
                let new = 0.25
                    * (self.cells[i - 1]
                        + self.cells[i + 1]
                        + self.cells[i - w]
                        + self.cells[i + w]);
                residual = residual.max((new - self.cells[i]).abs());
                self.scratch[i] = new;
            }
        }
        // Boundaries stay fixed; copy the interior back.
        for y in 1..self.height - 1 {
            let row = y * w;
            self.cells[row + 1..row + w - 1].copy_from_slice(&self.scratch[row + 1..row + w - 1]);
        }
        residual
    }

    /// Run sweeps until the residual drops below `tol` (or `max` sweeps).
    pub fn solve(&mut self, tol: f64, max: usize) -> (usize, f64) {
        let mut res = f64::INFINITY;
        for it in 0..max {
            res = self.step();
            if res < tol {
                return (it + 1, res);
            }
        }
        (max, res)
    }
}

/// Configuration of the distributed stencil workload.
#[derive(Clone, Debug)]
pub struct StencilConfig {
    /// Appranks (grid strips).
    pub appranks: usize,
    /// Grid rows per rank.
    pub rows_per_rank: usize,
    /// Grid columns.
    pub cols: usize,
    /// Rows per compute task (block height).
    pub rows_per_task: usize,
    /// Compute seconds per row (calibrate with [`JacobiGrid`]).
    pub secs_per_row: f64,
    /// Per-rank cost multipliers (heterogeneous material zones); length
    /// must equal `appranks`. `vec![1.0; n]` is balanced.
    pub rank_factor: Vec<f64>,
    /// Halo-exchange task duration in seconds (MPI latency + pack/unpack).
    pub halo_secs: f64,
    /// Timesteps.
    pub iterations: usize,
}

impl StencilConfig {
    /// A balanced configuration.
    pub fn new(appranks: usize, rows_per_rank: usize, cols: usize) -> Self {
        StencilConfig {
            appranks,
            rows_per_rank,
            cols,
            rows_per_task: rows_per_rank.div_ceil(16).max(1),
            secs_per_row: 1e-4,
            rank_factor: vec![1.0; appranks],
            halo_secs: 2e-4,
            iterations: 6,
        }
    }

    /// Apply a linear imbalance profile: rank factors from `lo` to `hi`.
    pub fn with_gradient(mut self, lo: f64, hi: f64) -> Self {
        let n = self.appranks.max(2) - 1;
        self.rank_factor = (0..self.appranks)
            .map(|r| lo + (hi - lo) * r as f64 / n as f64)
            .collect();
        self
    }
}

/// The distributed stencil as a cluster workload.
///
/// Address-space layout (common across nodes, §3.2): row `r` of the
/// global grid occupies bytes `[r·cols·8, (r+1)·cols·8)`. Rank `k` owns
/// global rows `[k·rows, (k+1)·rows)`; its lower/upper halo rows are the
/// last row of rank `k-1` and the first row of rank `k+1`.
pub struct StencilWorkload {
    cfg: StencilConfig,
}

impl StencilWorkload {
    /// Build the workload.
    pub fn new(cfg: StencilConfig) -> Self {
        assert_eq!(
            cfg.rank_factor.len(),
            cfg.appranks,
            "one cost factor per rank"
        );
        assert!(cfg.rows_per_task >= 1 && cfg.rows_per_rank >= cfg.rows_per_task);
        StencilWorkload { cfg }
    }

    /// Rows of one of the two grid buffers. Jacobi is double-buffered
    /// (read one buffer, write the other, swap each timestep): with a
    /// single buffer, a block's writes would conflict with its
    /// neighbours' reads and serialise the whole sweep.
    fn row_region(&self, buf: usize, global_row: usize, rows: usize) -> DataRegion {
        let bytes_per_row = self.cfg.cols * 8;
        let buffer_bytes =
            self.cfg.appranks * self.cfg.rows_per_rank * bytes_per_row + 2 * bytes_per_row; // global halo padding
        DataRegion::new(
            buf * buffer_bytes + global_row * bytes_per_row,
            rows * bytes_per_row,
        )
    }

    /// Nominal compute work of one rank per iteration (core·seconds).
    pub fn rank_work(&self, rank: usize) -> f64 {
        self.cfg.rows_per_rank as f64 * self.cfg.secs_per_row * self.cfg.rank_factor[rank]
    }
}

impl Workload for StencilWorkload {
    fn appranks(&self) -> usize {
        self.cfg.appranks
    }

    fn iterations(&self) -> usize {
        self.cfg.iterations
    }

    fn tasks(&mut self, rank: usize, iteration: usize) -> Vec<TaskSpec> {
        let cfg = &self.cfg;
        let first_row = rank * cfg.rows_per_rank;
        let (read_buf, write_buf) = if iteration.is_multiple_of(2) {
            (0, 1)
        } else {
            (1, 0)
        };
        let row_bytes = cfg.cols * 8;
        let mut out = Vec::new();

        // Halo exchange as real MPI point-to-point tasks (paper §4: MPI
        // tasks stay on the apprank). Sends read the strip's own edge
        // rows; receives *write* the halo rows, so the edge compute
        // blocks (which read them) order behind the message arrival —
        // communication latency propagates into the task graph.
        // Tags: 0 = upward (to rank+1), 1 = downward (to rank-1).
        if rank > 0 {
            out.push(
                TaskSpec::mpi_send(cfg.halo_secs, rank - 1, 1, row_bytes)
                    .reads(self.row_region(read_buf, first_row, 1)),
            );
            out.push(
                TaskSpec::mpi_recv(cfg.halo_secs, rank - 1, 0).writes(self.row_region(
                    read_buf,
                    first_row - 1,
                    1,
                )),
            );
        }
        if rank + 1 < cfg.appranks {
            out.push(
                TaskSpec::mpi_send(cfg.halo_secs, rank + 1, 0, row_bytes).reads(self.row_region(
                    read_buf,
                    first_row + cfg.rows_per_rank - 1,
                    1,
                )),
            );
            out.push(
                TaskSpec::mpi_recv(cfg.halo_secs, rank + 1, 1).writes(self.row_region(
                    read_buf,
                    first_row + cfg.rows_per_rank,
                    1,
                )),
            );
        }

        // Compute blocks: read [block - 1 row, block + 1 row] of the read
        // buffer, write the block in the write buffer. Blocks are mutually
        // independent (reads commute); edge blocks depend on the halos.
        let bytes_per_row = cfg.cols * 8;
        let mut row = 0;
        while row < cfg.rows_per_rank {
            let rows = cfg.rows_per_task.min(cfg.rows_per_rank - row);
            let g = first_row + row;
            let read_lo = g.saturating_sub(1);
            let read_rows = rows + usize::from(g > 0) + 1; // may run past the grid: harmless
            let dur = rows as f64 * cfg.secs_per_row * cfg.rank_factor[rank];
            out.push(
                TaskSpec::with_bytes(dur, (rows + 2) * bytes_per_row)
                    .reads(self.row_region(read_buf, read_lo, read_rows))
                    .writes(self.row_region(write_buf, g, rows)),
            );
            row += rows;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_cluster::{ClusterSim, RunSpec, Workload};
    use tlb_core::{BalanceConfig, DromPolicy, Platform, Preset};

    #[test]
    fn jacobi_converges_and_respects_boundaries() {
        let mut g = JacobiGrid::new(32, 32);
        let (iters, res) = g.solve(1e-4, 10_000);
        assert!(res < 1e-4, "residual {res} after {iters} sweeps");
        assert!(iters > 10, "non-trivial convergence expected");
        // Top boundary fixed at 1, bottom at 0; interior monotone in y.
        assert_eq!(g.get(5, 0), 1.0);
        assert_eq!(g.get(5, 31), 0.0);
        assert!(g.get(16, 1) > g.get(16, 30));
        // Harmonic function: interior strictly between boundary values.
        let v = g.get(16, 16);
        assert!(v > 0.0 && v < 1.0, "interior value {v}");
    }

    #[test]
    fn jacobi_step_reduces_residual() {
        let mut g = JacobiGrid::new(16, 16);
        let r1 = g.step();
        let mut last = r1;
        for _ in 0..50 {
            last = g.step();
        }
        assert!(last < r1, "residual should shrink: {r1} -> {last}");
    }

    #[test]
    fn halo_tasks_are_pinned_mpi_and_block_edge_computes() {
        use tlb_cluster::MpiOp;
        let mut wl = StencilWorkload::new(StencilConfig::new(4, 32, 64));
        let tasks = wl.tasks(1, 0);
        // Middle rank: send+recv per neighbour + compute blocks.
        let halos: Vec<&TaskSpec> = tasks.iter().filter(|t| !t.offloadable).collect();
        assert_eq!(halos.len(), 4);
        assert!(halos.iter().all(|t| t.mpi.is_some()));
        // Every recv's halo write overlaps some compute task's reads.
        for h in halos
            .iter()
            .filter(|t| matches!(t.mpi, Some(MpiOp::Recv { .. })))
        {
            let hw = h.accesses[0].region;
            let blocked = tasks
                .iter()
                .filter(|t| t.offloadable)
                .any(|t| t.accesses.iter().any(|a| a.region.overlaps(&hw)));
            assert!(blocked, "halo write {hw:?} blocks no compute task");
        }
        // Sends and recvs of neighbouring ranks match up by tag.
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for r in 0..4 {
            for t in wl.tasks(r, 0) {
                match t.mpi {
                    Some(MpiOp::Send { to, tag, .. }) => sends.push((r, to, tag)),
                    Some(MpiOp::Recv { from, tag }) => recvs.push((from, r, tag)),
                    None => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs, "unmatched halo messages");
        // Boundary ranks have one neighbour (2 MPI tasks).
        assert_eq!(wl.tasks(0, 0).iter().filter(|t| !t.offloadable).count(), 2);
        assert_eq!(wl.tasks(3, 0).iter().filter(|t| !t.offloadable).count(), 2);
    }

    #[test]
    fn gradient_profile_creates_imbalance() {
        let wl = StencilWorkload::new(StencilConfig::new(4, 64, 64).with_gradient(0.5, 2.0));
        let works: Vec<f64> = (0..4).map(|r| wl.rank_work(r)).collect();
        let imb = tlb_core::imbalance(&works);
        assert!((imb - 1.6).abs() < 0.1, "imbalance {imb}");
    }

    #[test]
    fn cluster_run_completes_and_offloading_helps() {
        let mk = || {
            let mut cfg = StencilConfig::new(4, 128, 64).with_gradient(0.4, 2.2);
            cfg.secs_per_row = 2e-3;
            cfg.iterations = 6;
            StencilWorkload::new(cfg)
        };
        let p = Platform::homogeneous(4, 4);
        let base = ClusterSim::execute(RunSpec::new(
            &p,
            &BalanceConfig::preset(Preset::Baseline),
            mk(),
        ))
        .unwrap();
        let mut bc = BalanceConfig::preset(Preset::Offload {
            degree: 3,
            drom: DromPolicy::Global,
        });
        bc.global_period = tlb_des::SimTime::from_millis(300);
        let bal = ClusterSim::execute(RunSpec::new(&p, &bc, mk())).unwrap();
        // 12 MPI tasks (send+recv per neighbour edge) + 4 ranks × 16
        // blocks (128 rows / 8 rows-per-task):
        assert_eq!(base.total_tasks, (12 + 4 * 16) * 6);
        assert!(
            bal.makespan.as_secs_f64() < 0.9 * base.makespan.as_secs_f64(),
            "stencil balanced {} vs baseline {}",
            bal.makespan,
            base.makespan
        );
        // Halos never offloaded: every offloaded task is a compute block.
        assert!(bal.offloaded_tasks > 0);
    }

    #[test]
    fn balanced_stencil_stays_mostly_home() {
        let mk = || {
            let mut cfg = StencilConfig::new(4, 64, 64);
            cfg.secs_per_row = 1e-3;
            cfg.iterations = 4;
            StencilWorkload::new(cfg)
        };
        let p = Platform::homogeneous(4, 4);
        let bal = ClusterSim::execute(RunSpec::new(
            &p,
            &BalanceConfig::preset(Preset::Offload {
                degree: 2,
                drom: DromPolicy::Global,
            }),
            mk(),
        ))
        .unwrap();
        // On 4-core nodes the helper floor is a quarter of the node, so
        // some offload traffic is inherent; it must stay well below the
        // half the scheduler would reach under real imbalance.
        assert!(
            bal.offload_fraction() < 0.45,
            "balanced stencil offloaded {:.2}",
            bal.offload_fraction()
        );
    }
}
