//! Blocked Cholesky factorisation: the canonical OmpSs-2 task-DAG demo.
//!
//! Not one of the paper's benchmarks, but *the* showcase workload of the
//! OmpSs-2 programming model the paper builds on (§3.1): the four BLAS
//! kernels (`potrf`, `trsm`, `syrk`, `gemm`) annotated with block accesses
//! generate a dense dependency DAG with abundant irregular parallelism —
//! exactly what the single-mechanism dependency system exists for. We use
//! it to exercise `tlb-tasking` + `tlb-smprt` with a real numerical DAG
//! whose result can be verified (`L·Lᵀ = A`).
//!
//! All kernels are straightforward dense implementations on column-major
//! blocks — no BLAS dependency.

use std::sync::Arc;

/// A symmetric positive-definite matrix stored as `nb × nb` column-major
/// blocks of size `b × b` (only used through [`Cholesky`]).
#[derive(Clone, Debug)]
pub struct BlockMatrix {
    nb: usize,
    b: usize,
    /// Lower-triangle blocks, row-major over (i, j), j <= i.
    blocks: Vec<Vec<f64>>,
}

fn tri_index(i: usize, j: usize) -> usize {
    debug_assert!(j <= i);
    i * (i + 1) / 2 + j
}

impl BlockMatrix {
    /// A deterministic SPD test matrix: `A = M·Mᵀ + n·I` with a fixed
    /// pseudo-random `M` (xorshift), stored by lower-triangle blocks.
    pub fn spd(nb: usize, b: usize, seed: u64) -> Self {
        let n = nb * b;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut m = vec![0.0f64; n * n];
        for v in m.iter_mut() {
            *v = next();
        }
        // A = M Mᵀ + n·I (dense, then blocked).
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..n {
                    s += m[i + k * n] * m[j + k * n];
                }
                a[i + j * n] = s;
                a[j + i * n] = s;
            }
            a[i + i * n] += n as f64;
        }
        Self::from_dense(&a, nb, b)
    }

    /// Block the lower triangle of a dense column-major `n × n` matrix.
    pub fn from_dense(a: &[f64], nb: usize, b: usize) -> Self {
        let n = nb * b;
        assert_eq!(a.len(), n * n, "dense matrix size mismatch");
        let mut blocks = Vec::with_capacity(nb * (nb + 1) / 2);
        for bi in 0..nb {
            for bj in 0..=bi {
                let mut blk = vec![0.0f64; b * b];
                for j in 0..b {
                    for i in 0..b {
                        blk[i + j * b] = a[(bi * b + i) + (bj * b + j) * n];
                    }
                }
                blocks.push(blk);
            }
        }
        BlockMatrix { nb, b, blocks }
    }

    /// Blocks per dimension.
    pub fn num_blocks(&self) -> usize {
        self.nb
    }

    /// Block size.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Reassemble the (lower-triangular) dense matrix.
    pub fn to_dense_lower(&self) -> Vec<f64> {
        let n = self.nb * self.b;
        let mut out = vec![0.0f64; n * n];
        for bi in 0..self.nb {
            for bj in 0..=bi {
                let blk = &self.blocks[tri_index(bi, bj)];
                for j in 0..self.b {
                    for i in 0..self.b {
                        let (gi, gj) = (bi * self.b + i, bj * self.b + j);
                        if bi > bj || i >= j {
                            out[gi + gj * n] = blk[i + j * self.b];
                        }
                    }
                }
            }
        }
        out
    }
}

/// The four kernels, public for reuse and testing. All operate on
/// column-major `b × b` blocks.
pub mod kernels {
    /// Unblocked Cholesky of a single block (lower). Panics if the block
    /// is not positive definite.
    pub fn potrf(a: &mut [f64], b: usize) {
        for j in 0..b {
            let mut d = a[j + j * b];
            for k in 0..j {
                d -= a[j + k * b] * a[j + k * b];
            }
            assert!(d > 0.0, "matrix not positive definite at column {j}");
            let d = d.sqrt();
            a[j + j * b] = d;
            for i in j + 1..b {
                let mut s = a[i + j * b];
                for k in 0..j {
                    s -= a[i + k * b] * a[j + k * b];
                }
                a[i + j * b] = s / d;
            }
        }
    }

    /// `X := X · L⁻ᵀ` with `L` lower-triangular (the panel update).
    pub fn trsm(l: &[f64], x: &mut [f64], b: usize) {
        for j in 0..b {
            let d = l[j + j * b];
            for i in 0..b {
                let mut s = x[i + j * b];
                for k in 0..j {
                    s -= x[i + k * b] * l[j + k * b];
                }
                x[i + j * b] = s / d;
            }
        }
    }

    /// `C := C − A·Aᵀ` (symmetric rank-b update; full block computed).
    pub fn syrk(a: &[f64], c: &mut [f64], b: usize) {
        for j in 0..b {
            for i in 0..b {
                let mut s = 0.0;
                for k in 0..b {
                    s += a[i + k * b] * a[j + k * b];
                }
                c[i + j * b] -= s;
            }
        }
    }

    /// `C := C − A·Bᵀ`.
    pub fn gemm(a: &[f64], bmat: &[f64], c: &mut [f64], b: usize) {
        for j in 0..b {
            for i in 0..b {
                let mut s = 0.0;
                for k in 0..b {
                    s += a[i + k * b] * bmat[j + k * b];
                }
                c[i + j * b] -= s;
            }
        }
    }
}

/// Blocked Cholesky driver.
pub struct Cholesky;

impl Cholesky {
    /// Serial right-looking blocked factorisation (the reference).
    pub fn factor_serial(m: &mut BlockMatrix) {
        let (nb, b) = (m.nb, m.b);
        for k in 0..nb {
            {
                let kk = &mut m.blocks[tri_index(k, k)];
                kernels::potrf(kk, b);
            }
            for i in k + 1..nb {
                let (kk, ik) = two_blocks(&mut m.blocks, tri_index(k, k), tri_index(i, k));
                kernels::trsm(kk, ik, b);
            }
            for i in k + 1..nb {
                for j in k + 1..=i {
                    if i == j {
                        let (ik, ii) = two_blocks(&mut m.blocks, tri_index(i, k), tri_index(i, i));
                        kernels::syrk(ik, ii, b);
                    } else {
                        let jk = m.blocks[tri_index(j, k)].clone();
                        let (ik, ij) = two_blocks(&mut m.blocks, tri_index(i, k), tri_index(i, j));
                        kernels::gemm(ik, &jk, ij, b);
                    }
                }
            }
        }
    }

    /// Task-parallel factorisation on a [`crate::…`] — er, on a
    /// [`tlb_smprt::Pool`]: one task per kernel invocation, dependencies
    /// derived from the block regions exactly as the OmpSs-2 pragmas
    /// would. Returns the number of tasks executed.
    pub fn factor_tasked(m: &mut BlockMatrix, pool: &tlb_smprt::Pool) -> usize {
        use tlb_smprt::GraphRun;
        use tlb_tasking::{DataRegion, TaskDef};
        let (nb, b) = (m.nb, m.b);
        // Blocks move into shared cells; regions name them virtually.
        let cells: Vec<Arc<std::sync::Mutex<Vec<f64>>>> = std::mem::take(&mut m.blocks)
            .into_iter()
            .map(|blk| Arc::new(std::sync::Mutex::new(blk)))
            .collect();
        let region = |i: usize, j: usize| DataRegion::new(0x1000 * (tri_index(i, j) + 1), 0x100);

        let mut run = GraphRun::new();
        let mut tasks = 0usize;
        for k in 0..nb {
            {
                let kk = Arc::clone(&cells[tri_index(k, k)]);
                run.task(
                    TaskDef::new(format!("potrf {k}")).reads_writes(region(k, k)),
                    move || kernels::potrf(&mut kk.lock().unwrap(), b),
                )
                .unwrap();
                tasks += 1;
            }
            for i in k + 1..nb {
                let kk = Arc::clone(&cells[tri_index(k, k)]);
                let ik = Arc::clone(&cells[tri_index(i, k)]);
                run.task(
                    TaskDef::new(format!("trsm {i},{k}"))
                        .reads(region(k, k))
                        .reads_writes(region(i, k)),
                    move || kernels::trsm(&kk.lock().unwrap(), &mut ik.lock().unwrap(), b),
                )
                .unwrap();
                tasks += 1;
            }
            for i in k + 1..nb {
                for j in k + 1..=i {
                    if i == j {
                        let ik = Arc::clone(&cells[tri_index(i, k)]);
                        let ii = Arc::clone(&cells[tri_index(i, i)]);
                        run.task(
                            TaskDef::new(format!("syrk {i},{k}"))
                                .reads(region(i, k))
                                .reads_writes(region(i, i)),
                            move || kernels::syrk(&ik.lock().unwrap(), &mut ii.lock().unwrap(), b),
                        )
                        .unwrap();
                    } else {
                        let ik = Arc::clone(&cells[tri_index(i, k)]);
                        let jk = Arc::clone(&cells[tri_index(j, k)]);
                        let ij = Arc::clone(&cells[tri_index(i, j)]);
                        run.task(
                            TaskDef::new(format!("gemm {i},{j},{k}"))
                                .reads(region(i, k))
                                .reads(region(j, k))
                                .reads_writes(region(i, j)),
                            move || {
                                kernels::gemm(
                                    &ik.lock().unwrap(),
                                    &jk.lock().unwrap(),
                                    &mut ij.lock().unwrap(),
                                    b,
                                )
                            },
                        )
                        .unwrap();
                    }
                    tasks += 1;
                }
            }
        }
        let stats = pool.run(run);
        assert_eq!(stats.tasks_executed, tasks);
        m.blocks = cells
            .into_iter()
            .map(|c| {
                Arc::try_unwrap(c)
                    .expect("no task holds a block")
                    .into_inner()
                    .unwrap()
            })
            .collect();
        tasks
    }

    /// Max-norm of `L·Lᵀ − A` over the lower triangle (the verification
    /// residual).
    pub fn residual(l: &BlockMatrix, a: &BlockMatrix) -> f64 {
        let n = l.nb * l.b;
        let ld = l.to_dense_lower();
        let ad = a.to_dense_lower();
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += ld[i + k * n] * ld[j + k * n];
                }
                worst = worst.max((s - ad[i + j * n]).abs());
            }
        }
        worst
    }
}

/// Borrow two distinct blocks mutably/immutably from the pool.
fn two_blocks(blocks: &mut [Vec<f64>], read: usize, write: usize) -> (&[f64], &mut [f64]) {
    assert_ne!(read, write);
    if read < write {
        let (lo, hi) = blocks.split_at_mut(write);
        (&lo[read], &mut hi[0])
    } else {
        let (lo, hi) = blocks.split_at_mut(read);
        (&hi[0], &mut lo[write])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_factorisation_is_correct() {
        let a = BlockMatrix::spd(4, 8, 1);
        let mut l = a.clone();
        Cholesky::factor_serial(&mut l);
        let res = Cholesky::residual(&l, &a);
        assert!(res < 1e-8, "residual {res}");
    }

    #[test]
    fn tasked_matches_serial() {
        let a = BlockMatrix::spd(5, 6, 7);
        let mut serial = a.clone();
        Cholesky::factor_serial(&mut serial);
        let mut tasked = a.clone();
        let pool = tlb_smprt::Pool::new(4);
        let tasks = Cholesky::factor_tasked(&mut tasked, &pool);
        // DAG size: sum over k of 1 + (nb-1-k) + T(nb-1-k) where T(m)=m(m+1)/2.
        let nb = 5;
        let expected: usize = (0..nb)
            .map(|k| {
                let m = nb - 1 - k;
                1 + m + m * (m + 1) / 2
            })
            .sum();
        assert_eq!(tasks, expected);
        // Bitwise-identical to serial: same kernels, dependency-ordered.
        for (s, t) in serial.blocks.iter().zip(&tasked.blocks) {
            assert_eq!(s, t, "tasked result differs from serial");
        }
    }

    #[test]
    fn residual_detects_corruption() {
        let a = BlockMatrix::spd(3, 4, 3);
        let mut l = a.clone();
        Cholesky::factor_serial(&mut l);
        l.blocks[0][0] += 0.5;
        assert!(Cholesky::residual(&l, &a) > 0.1);
    }

    #[test]
    #[should_panic(expected = "positive definite")]
    fn potrf_rejects_indefinite() {
        let mut blk = vec![0.0; 4];
        blk[0] = -1.0;
        kernels::potrf(&mut blk, 2);
    }

    #[test]
    fn dense_roundtrip() {
        let a = BlockMatrix::spd(3, 5, 11);
        let d = a.to_dense_lower();
        let back = BlockMatrix::from_dense(&d, 3, 5);
        for (x, y) in a.blocks.iter().zip(&back.blocks) {
            // from_dense only sees the lower triangle; diagonal blocks'
            // upper parts may differ — compare the reassembled form.
            let _ = (x, y);
        }
        assert_eq!(back.to_dense_lower(), d);
    }
}
