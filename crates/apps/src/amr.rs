//! AMR-style time-varying imbalance: the hot ranks move mid-run.
//!
//! Adaptive mesh refinement concentrates work wherever the solution is
//! currently interesting, and that region *moves* — so the load
//! distribution over ranks shifts every few timesteps ("Lightweight
//! Task Offloading Exploiting MPI Wait Times for Parallel Adaptive
//! Mesh Refinement", PAPERS.md). The static synthetic benchmark can
//! never distinguish a policy that adapts from one that merely finds a
//! good static allocation; this workload can.
//!
//! The model keeps the synthetic benchmark's invariants — per-iteration
//! total work is constant, per-rank factors have mean 1.0 and peak
//! `imbalance` — but re-draws the factor vector every `phase_iterations`
//! iterations with the hot rank advanced by a seed-derived stride, so
//! the peak walks around the rank space while everything stays a
//! deterministic function of the seed.

use tlb_cluster::{TaskSpec, Workload};
use tlb_core::Platform;
use tlb_rng::Rng;

use crate::synthetic::{rank_factors, SyntheticConfig};

/// Parameters of the AMR-style time-varying benchmark.
#[derive(Clone, Debug)]
pub struct AmrConfig {
    /// Number of appranks.
    pub appranks: usize,
    /// Target imbalance (Eq. 2) of every phase's factor vector.
    pub imbalance: f64,
    /// Iterations between refinement phases: how long the hot region
    /// stays put before it moves.
    pub phase_iterations: usize,
    /// Tasks per core per iteration (paper: 100).
    pub tasks_per_core: usize,
    /// Mean task duration in seconds (paper: 0.050).
    pub mean_task_secs: f64,
    /// Iterations to run.
    pub iterations: usize,
    /// RNG seed: drives the hot-rank walk and every phase's draw.
    pub seed: u64,
}

impl AmrConfig {
    /// Defaults matching the synthetic benchmark, with the hot region
    /// moving every other iteration.
    pub fn new(appranks: usize, imbalance: f64) -> Self {
        AmrConfig {
            appranks,
            imbalance,
            phase_iterations: 2,
            tasks_per_core: 100,
            mean_task_secs: 0.050,
            iterations: 4,
            seed: 42,
        }
    }
}

/// The AMR workload: per-iteration task lists whose imbalance pattern
/// shifts at phase boundaries. Implements [`Workload`] directly (unlike
/// the synthetic benchmark's fixed `SpecWorkload`) because the tasks of
/// iteration `i` depend on `i`.
pub struct AmrWorkload {
    cfg: AmrConfig,
    tasks_per_rank: usize,
    /// Factor vector of the phase whose tasks we are currently
    /// emitting, rebuilt lazily at phase boundaries.
    phase: usize,
    factors: Vec<f64>,
}

/// Build the AMR workload for a platform (tasks per rank follow from
/// the machine shape, exactly like the synthetic benchmark).
pub fn amr_workload(cfg: &AmrConfig, platform: &Platform) -> AmrWorkload {
    assert_eq!(
        cfg.appranks % platform.nodes,
        0,
        "appranks must divide over nodes"
    );
    assert!(cfg.phase_iterations >= 1, "phase_iterations must be >= 1");
    let per_node = cfg.appranks / platform.nodes;
    let cores_per_rank = platform.cores_per_node / per_node;
    let tasks_per_rank = cfg.tasks_per_core * cores_per_rank;
    let factors = phase_factors(cfg, 0);
    AmrWorkload {
        cfg: cfg.clone(),
        tasks_per_rank,
        phase: 0,
        factors,
    }
}

/// The factor vector of one refinement phase: hot rank advanced by a
/// seed-derived stride each phase, everything re-drawn under a
/// phase-distinct seed, invariants (mean 1.0, peak = imbalance)
/// preserved by `rank_factors`.
pub fn phase_factors(cfg: &AmrConfig, phase: usize) -> Vec<f64> {
    // The stride is drawn once from the seed and kept coprime-ish with
    // the rank count by construction (any stride in 1..appranks visits
    // several distinct ranks before cycling; exact coverage is not
    // required, movement is).
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xa3a5_u64);
    let start = (rng.next_u64() % cfg.appranks.max(1) as u64) as usize;
    let stride = 1 + (rng.next_u64() % cfg.appranks.max(2) as u64 / 2) as usize;
    let mut syn = SyntheticConfig::new(cfg.appranks, cfg.imbalance);
    syn.max_rank = (start + phase * stride) % cfg.appranks.max(1);
    syn.tasks_per_core = cfg.tasks_per_core;
    syn.mean_task_secs = cfg.mean_task_secs;
    syn.iterations = cfg.iterations;
    // Distinct draw per phase so the *shape* around the peak changes
    // too, not just the peak's position.
    syn.seed = cfg
        .seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(phase as u64));
    rank_factors(&syn)
}

impl AmrWorkload {
    /// Nominal per-iteration work in core·seconds — constant across
    /// phases because every phase's factors sum to `appranks`, so the
    /// perfect-balance bound is well defined for the whole run.
    pub fn iteration_work(&self) -> f64 {
        self.cfg.appranks as f64 * self.tasks_per_rank as f64 * self.cfg.mean_task_secs
    }

    /// The factor vector governing one iteration (exposed for tests).
    pub fn factors_at(&self, iteration: usize) -> Vec<f64> {
        phase_factors(&self.cfg, iteration / self.cfg.phase_iterations)
    }
}

impl Workload for AmrWorkload {
    fn appranks(&self) -> usize {
        self.cfg.appranks
    }

    fn iterations(&self) -> usize {
        self.cfg.iterations
    }

    fn tasks(&mut self, rank: usize, iteration: usize) -> Vec<TaskSpec> {
        let phase = iteration / self.cfg.phase_iterations;
        if phase != self.phase || self.factors.is_empty() {
            self.factors = phase_factors(&self.cfg, phase);
            self.phase = phase;
        }
        let dur = self.cfg.mean_task_secs * self.factors[rank];
        (0..self.tasks_per_rank)
            .map(|_| TaskSpec::compute(dur))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_core::imbalance;

    fn fixture() -> (AmrConfig, Platform) {
        let mut cfg = AmrConfig::new(8, 2.5);
        cfg.iterations = 8;
        (cfg, Platform::homogeneous(8, 4))
    }

    #[test]
    fn every_phase_meets_the_imbalance_target() {
        let (cfg, p) = fixture();
        let wl = amr_workload(&cfg, &p);
        for iter in 0..cfg.iterations {
            let f = wl.factors_at(iter);
            let measured = imbalance(&f);
            assert!(
                (measured - cfg.imbalance).abs() < 1e-6,
                "iteration {iter}: target {}, measured {measured}",
                cfg.imbalance
            );
            assert!((f.iter().sum::<f64>() - 8.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hot_rank_moves_between_phases() {
        let (cfg, p) = fixture();
        let wl = amr_workload(&cfg, &p);
        let peak = |f: &[f64]| {
            f.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        let p0 = peak(&wl.factors_at(0));
        let p2 = peak(&wl.factors_at(2));
        let p4 = peak(&wl.factors_at(4));
        assert!(
            p0 != p2 || p2 != p4,
            "hot rank never moved: {p0}, {p2}, {p4}"
        );
        // Within a phase the pattern is stable.
        assert_eq!(wl.factors_at(0), wl.factors_at(1));
    }

    #[test]
    fn per_iteration_work_is_constant() {
        let (cfg, p) = fixture();
        let mut wl = amr_workload(&cfg, &p);
        let total_at = |wl: &mut AmrWorkload, iter: usize| -> f64 {
            (0..8)
                .map(|r| wl.tasks(r, iter).iter().map(|t| t.duration).sum::<f64>())
                .sum()
        };
        let t0 = total_at(&mut wl, 0);
        let t3 = total_at(&mut wl, 3);
        assert!((t0 - t3).abs() < 1e-9, "work drifted: {t0} vs {t3}");
        assert!((t0 - wl.iteration_work()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed_and_random_access() {
        let (cfg, p) = fixture();
        let mut a = amr_workload(&cfg, &p);
        let mut b = amr_workload(&cfg, &p);
        // Query b out of order: the lazy phase cache must not leak
        // earlier state into later answers.
        let b5 = b.tasks(3, 5);
        let a5 = a.tasks(3, 5);
        assert_eq!(a5.len(), b5.len());
        assert!(a5
            .iter()
            .zip(&b5)
            .all(|(x, y)| (x.duration - y.duration).abs() < 1e-12));
        let mut cfg2 = cfg.clone();
        cfg2.seed = 43;
        let mut c = amr_workload(&cfg2, &p);
        let c0: f64 = c.tasks(0, 0).iter().map(|t| t.duration).sum();
        let a0: f64 = a.tasks(0, 0).iter().map(|t| t.duration).sum();
        assert!((c0 - a0).abs() > 1e-12 || cfg2.seed == cfg.seed);
    }
}
