//! The synthetic benchmark (paper §6.2): configurable application
//! imbalance.
//!
//! Every iteration each apprank creates `100 × cores-per-apprank` tasks of
//! mean duration 50 ms. Task durations are uniform within a rank but
//! differ across ranks to meet the target imbalance (Eq. 2):
//! the worst-case rank's tasks last `50 ms × imbalance`, and the other
//! ranks' durations are drawn uniformly over the space of values
//! respecting the constraints (mean over ranks = 50 ms, all durations
//! non-negative, none above the worst case).

use tlb_cluster::{SpecWorkload, TaskSpec};
use tlb_core::Platform;
use tlb_rng::Rng;

/// Parameters of the synthetic benchmark.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of appranks.
    pub appranks: usize,
    /// Target imbalance (Eq. 2), `1.0 ..= appranks as f64`.
    pub imbalance: f64,
    /// Which rank receives the worst-case (maximum) load. The slow-node
    /// sweep (Fig. 10) points this at the slow node's rank — or away from
    /// it for the "slow node has least work" side.
    pub max_rank: usize,
    /// Rank whose load is forced to the minimum of the distribution
    /// (used for the left half of Fig. 10: slow node has *least* work).
    /// `None` lets all non-max ranks be drawn uniformly.
    pub min_rank: Option<usize>,
    /// Tasks per core per iteration (paper: 100).
    pub tasks_per_core: usize,
    /// Mean task duration in seconds (paper: 0.050).
    pub mean_task_secs: f64,
    /// Iterations to run.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's defaults for a given shape and imbalance.
    pub fn new(appranks: usize, imbalance: f64) -> Self {
        SyntheticConfig {
            appranks,
            imbalance,
            max_rank: 0,
            min_rank: None,
            tasks_per_core: 100,
            mean_task_secs: 0.050,
            iterations: 4,
            seed: 42,
        }
    }
}

/// Per-rank mean load factors (mean 1.0, max = `imbalance` at `max_rank`).
///
/// Exposed for tests and for the perfect-balance reference computation.
pub fn rank_factors(cfg: &SyntheticConfig) -> Vec<f64> {
    let r = cfg.appranks;
    let imb = cfg.imbalance;
    assert!(r >= 1, "need at least one rank");
    assert!(
        (1.0..=r as f64).contains(&imb),
        "imbalance {imb} outside [1, {r}]"
    );
    assert!(cfg.max_rank < r, "max_rank out of range");
    if r == 1 || (imb - 1.0).abs() < 1e-12 {
        return vec![1.0; r];
    }
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut f = vec![0.0f64; r];
    f[cfg.max_rank] = imb;
    // The rest must sum to (r - imb), each within [0, imb]. Draw uniform
    // and rescale; clamp-and-redistribute a few times to respect the cap.
    let others: Vec<usize> = (0..r)
        .filter(|&i| i != cfg.max_rank && Some(i) != cfg.min_rank)
        .collect();
    let mut budget = r as f64 - imb;
    if let Some(mr) = cfg.min_rank {
        assert!(mr != cfg.max_rank, "min_rank equals max_rank");
        // Force the minimum rank towards the bottom of the feasible range:
        // a small load, one tenth of the per-rank average of the budget.
        let share = (budget / (r - 1) as f64) * 0.1;
        f[mr] = share;
        budget -= share;
    }
    if others.is_empty() {
        return f;
    }
    let draws: Vec<f64> = others.iter().map(|_| rng.range_f64(0.2, 1.8)).collect();
    let sum: f64 = draws.iter().sum();
    for (i, &rank) in others.iter().enumerate() {
        f[rank] = draws[i] / sum * budget;
    }
    // Enforce the cap f <= imb (possible with extreme imbalances).
    for _ in 0..8 {
        let mut excess = 0.0;
        let mut room = 0.0;
        for &rank in &others {
            if f[rank] > imb {
                excess += f[rank] - imb;
                f[rank] = imb;
            } else {
                room += imb - f[rank];
            }
        }
        if excess <= 1e-12 || room <= 0.0 {
            break;
        }
        for &rank in &others {
            if f[rank] < imb {
                f[rank] += excess * (imb - f[rank]) / room;
            }
        }
    }
    debug_assert!((f.iter().sum::<f64>() - r as f64).abs() < 1e-6);
    f
}

/// Build the synthetic workload for a platform (tasks per rank follow from
/// the machine shape: `tasks_per_core × cores-per-apprank`).
pub fn synthetic_workload(cfg: &SyntheticConfig, platform: &Platform) -> SpecWorkload {
    assert_eq!(
        cfg.appranks % platform.nodes,
        0,
        "appranks must divide over nodes"
    );
    let per_node = cfg.appranks / platform.nodes;
    let cores_per_rank = platform.cores_per_node / per_node;
    let tasks_per_rank = cfg.tasks_per_core * cores_per_rank;
    let factors = rank_factors(cfg);
    let per_rank: Vec<Vec<TaskSpec>> = factors
        .iter()
        .map(|&f| {
            let dur = cfg.mean_task_secs * f;
            (0..tasks_per_rank)
                .map(|_| TaskSpec::compute(dur))
                .collect()
        })
        .collect();
    SpecWorkload::iterated(per_rank, cfg.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_cluster::Workload;
    use tlb_core::imbalance;

    #[test]
    fn factors_hit_target_imbalance() {
        for &imb in &[1.0, 1.5, 2.0, 3.0, 4.0] {
            let cfg = SyntheticConfig::new(8, imb);
            let f = rank_factors(&cfg);
            assert_eq!(f.len(), 8);
            let measured = imbalance(&f);
            assert!(
                (measured - imb).abs() < 1e-6,
                "target {imb}, measured {measured}: {f:?}"
            );
            assert!((f.iter().sum::<f64>() - 8.0).abs() < 1e-6);
            assert!(f.iter().all(|&x| x >= 0.0 && x <= imb + 1e-9));
        }
    }

    #[test]
    fn balanced_case_is_uniform() {
        let cfg = SyntheticConfig::new(4, 1.0);
        assert_eq!(rank_factors(&cfg), vec![1.0; 4]);
    }

    #[test]
    fn max_rank_is_respected() {
        let mut cfg = SyntheticConfig::new(4, 3.0);
        cfg.max_rank = 2;
        let f = rank_factors(&cfg);
        assert!((f[2] - 3.0).abs() < 1e-12);
        assert!(f.iter().enumerate().all(|(i, &x)| i == 2 || x <= 3.0));
    }

    #[test]
    fn min_rank_gets_least() {
        let mut cfg = SyntheticConfig::new(8, 2.0);
        cfg.max_rank = 1;
        cfg.min_rank = Some(5);
        let f = rank_factors(&cfg);
        let min = f.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((f[5] - min).abs() < 1e-12, "{f:?}");
    }

    #[test]
    fn extreme_imbalance_all_on_one() {
        let cfg = SyntheticConfig::new(4, 4.0);
        let f = rank_factors(&cfg);
        assert!((f[0] - 4.0).abs() < 1e-9);
        assert!(f[1..].iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig::new(16, 2.5);
        assert_eq!(rank_factors(&cfg), rank_factors(&cfg));
        let mut cfg2 = cfg.clone();
        cfg2.seed = 43;
        assert_ne!(rank_factors(&cfg), rank_factors(&cfg2));
    }

    #[test]
    fn workload_shape_matches_paper() {
        // 8 ranks on 8 nodes with 4 cores: 100 tasks/core → 400 per rank.
        let cfg = SyntheticConfig::new(8, 2.0);
        let p = tlb_core::Platform::homogeneous(8, 4);
        let wl = synthetic_workload(&cfg, &p);
        assert_eq!(wl.appranks(), 8);
        assert_eq!(wl.iterations(), 4);
        let work = wl.rank_work(0);
        // Total per iteration = ranks × tasks × mean = 8 × 400 × 0.05.
        let total: f64 = work.iter().sum();
        assert!((total - 160.0).abs() < 1e-6, "total {total}");
        let measured = imbalance(&work);
        assert!((measured - 2.0).abs() < 1e-6);
    }

    #[test]
    fn two_appranks_per_node_halves_tasks() {
        let cfg = SyntheticConfig::new(8, 1.5);
        let p = tlb_core::Platform::homogeneous(4, 8);
        let mut wl = synthetic_workload(&cfg, &p);
        // 8 cores / 2 ranks per node = 4 cores per rank → 400 tasks.
        assert_eq!(wl.tasks(0, 0).len(), 400);
        // One rank per node would get all 8 cores → 800 tasks.
        let cfg1 = SyntheticConfig::new(4, 1.5);
        let mut wl1 = synthetic_workload(&cfg1, &p);
        assert_eq!(wl1.tasks(0, 0).len(), 800);
    }
}
