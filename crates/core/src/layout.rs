//! Process layout: which worker processes live on which node, and the
//! initial DROM core ownership.

use tlb_expander::BipartiteGraph;

/// One worker process: the representative of `apprank` on a node. `slot`
/// is the index of the node in the apprank's adjacency list (0 = the main
/// process on the home node; ≥1 = helper ranks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerRef {
    /// The apprank this worker executes tasks for.
    pub apprank: usize,
    /// Index into the apprank's adjacency list (0 = home).
    pub slot: usize,
}

impl WorkerRef {
    /// Whether this is the apprank's main process (on its home node).
    pub fn is_main(&self) -> bool {
        self.slot == 0
    }
}

/// The mapping of worker processes to nodes plus initial core ownership,
/// derived from the expander graph (paper Fig. 2): each apprank has its
/// main process on its home node and one helper rank on every other
/// adjacent node. Helper ranks initially own one core (the DLB minimum);
/// the remaining cores are divided equally among the node's main
/// processes (§5.4).
#[derive(Clone, Debug)]
pub struct ProcessLayout {
    /// `workers[n]` = the worker processes hosted on node `n`, mains
    /// first (by apprank), then helpers (by apprank).
    workers: Vec<Vec<WorkerRef>>,
    /// `proc_index[a][k]` = index of apprank `a`'s slot-`k` worker within
    /// `workers[adjacency[a][k]]` — the per-node DLB process id.
    proc_index: Vec<Vec<usize>>,
    /// Initial ownership counts, aligned with `workers[n]`.
    initial_ownership: Vec<Vec<usize>>,
    cores_per_node: usize,
}

impl ProcessLayout {
    /// Build the layout for `graph` on nodes with `cores_per_node` cores.
    ///
    /// # Panics
    /// Panics if some node hosts more worker processes than cores (the
    /// DLB one-core minimum would be violated) — the caller should reject
    /// such configurations (degree too high for the machine shape).
    pub fn new(graph: &BipartiteGraph, cores_per_node: usize) -> Self {
        let nodes = graph.nodes();
        let mut workers: Vec<Vec<WorkerRef>> = vec![Vec::new(); nodes];
        // Mains first…
        for a in 0..graph.appranks() {
            workers[graph.home_node(a)].push(WorkerRef {
                apprank: a,
                slot: 0,
            });
        }
        // …then helpers, ordered by apprank for determinism.
        for a in 0..graph.appranks() {
            for (k, &n) in graph.nodes_of(a).iter().enumerate().skip(1) {
                workers[n].push(WorkerRef {
                    apprank: a,
                    slot: k,
                });
            }
        }
        // Reverse index.
        let mut proc_index: Vec<Vec<usize>> = (0..graph.appranks())
            .map(|a| vec![usize::MAX; graph.nodes_of(a).len()])
            .collect();
        for (n, ws) in workers.iter().enumerate() {
            for (i, w) in ws.iter().enumerate() {
                debug_assert_eq!(graph.nodes_of(w.apprank)[w.slot], n);
                proc_index[w.apprank][w.slot] = i;
            }
        }
        // Initial ownership.
        let mut initial_ownership = Vec::with_capacity(nodes);
        for ws in &workers {
            assert!(
                ws.len() <= cores_per_node,
                "{} workers exceed {cores_per_node} cores on a node",
                ws.len()
            );
            let mains = ws.iter().filter(|w| w.is_main()).count();
            let helpers = ws.len() - mains;
            let for_mains = cores_per_node - helpers;
            let per_main = for_mains.checked_div(mains).unwrap_or(0);
            let mut extra = for_mains.checked_rem(mains).unwrap_or(0);
            let counts = ws
                .iter()
                .map(|w| {
                    if w.is_main() {
                        let c = per_main + usize::from(extra > 0);
                        extra = extra.saturating_sub(1);
                        c
                    } else {
                        1
                    }
                })
                .collect();
            initial_ownership.push(counts);
        }
        ProcessLayout {
            workers,
            proc_index,
            initial_ownership,
            cores_per_node,
        }
    }

    /// Worker processes on `node`, mains first.
    pub fn workers_on(&self, node: usize) -> &[WorkerRef] {
        &self.workers[node]
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.workers.len()
    }

    /// Cores per node the layout was built for.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// The per-node DLB process index of apprank `a`'s slot-`k` worker.
    pub fn proc_of(&self, apprank: usize, slot: usize) -> usize {
        self.proc_index[apprank][slot]
    }

    /// Initial ownership counts aligned with [`ProcessLayout::workers_on`].
    pub fn initial_ownership(&self, node: usize) -> &[usize] {
        &self.initial_ownership[node]
    }

    /// Total worker processes in the system.
    pub fn total_workers(&self) -> usize {
        self.workers.iter().map(|w| w.len()).sum()
    }

    /// Register a dynamically spawned helper of `apprank` on `node`
    /// (paper §5.2 future work). Returns `(slot, per-node proc index)`.
    ///
    /// # Panics
    /// Panics if the node has no core headroom for another worker.
    pub fn push_worker(&mut self, apprank: usize, node: usize) -> (usize, usize) {
        assert!(
            self.workers[node].len() < self.cores_per_node,
            "node {node} cannot host another worker"
        );
        let slot = self.proc_index[apprank].len();
        assert!(slot >= 1, "dynamic workers are always helpers");
        let proc = self.workers[node].len();
        self.workers[node].push(WorkerRef { apprank, slot });
        self.proc_index[apprank].push(proc);
        self.initial_ownership[node].push(1);
        (slot, proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_expander::{generate_circulant, ExpanderConfig};

    fn ring(appranks: usize, nodes: usize, degree: usize) -> BipartiteGraph {
        let strides: Vec<usize> = (1..degree).collect();
        generate_circulant(&ExpanderConfig::new(appranks, nodes, degree), &strides).unwrap()
    }

    #[test]
    fn mains_precede_helpers() {
        let g = ring(4, 4, 2);
        let l = ProcessLayout::new(&g, 8);
        for n in 0..4 {
            let ws = l.workers_on(n);
            assert_eq!(ws.len(), 2);
            assert!(ws[0].is_main());
            assert!(!ws[1].is_main());
        }
    }

    #[test]
    fn paper_marenostrum_ownership() {
        // Fig. 4(c) shape: 2 appranks/node, degree 3 → 6 workers/node on a
        // 48-core node: helpers own 1, each main owns 22 (paper §5.4).
        let g = ring(32, 16, 3);
        let l = ProcessLayout::new(&g, 48);
        for n in 0..16 {
            let own = l.initial_ownership(n);
            let ws = l.workers_on(n);
            assert_eq!(ws.len(), 6);
            assert_eq!(own.iter().sum::<usize>(), 48);
            for (w, &c) in ws.iter().zip(own) {
                if w.is_main() {
                    assert_eq!(c, 22);
                } else {
                    assert_eq!(c, 1);
                }
            }
        }
    }

    #[test]
    fn uneven_main_split_distributes_remainder() {
        // 3 appranks on 1 node (degree 1), 10 cores: 4 + 3 + 3.
        let g = ring(3, 1, 1);
        let l = ProcessLayout::new(&g, 10);
        assert_eq!(l.initial_ownership(0), &[4, 3, 3]);
    }

    #[test]
    fn proc_index_roundtrips() {
        let g = ring(8, 8, 3);
        let l = ProcessLayout::new(&g, 4);
        for a in 0..8 {
            for (k, &n) in g.nodes_of(a).iter().enumerate() {
                let p = l.proc_of(a, k);
                let w = l.workers_on(n)[p];
                assert_eq!(w.apprank, a);
                assert_eq!(w.slot, k);
            }
        }
        assert_eq!(l.total_workers(), 24);
    }

    #[test]
    fn push_worker_extends_layout() {
        let g = ring(4, 4, 1);
        let mut l = ProcessLayout::new(&g, 4);
        let (slot, proc) = l.push_worker(0, 2);
        assert_eq!(slot, 1);
        assert_eq!(proc, 1); // node 2 already hosts apprank 2's main
        assert_eq!(
            l.workers_on(2)[proc],
            WorkerRef {
                apprank: 0,
                slot: 1
            }
        );
        assert_eq!(l.proc_of(0, 1), proc);
        assert_eq!(l.total_workers(), 5);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_workers_panics() {
        let g = ring(4, 2, 2); // 4 workers per node
        ProcessLayout::new(&g, 3);
    }
}
