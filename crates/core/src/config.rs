//! Experiment configuration: platform description and balancing knobs.

use tlb_des::SimTime;
use tlb_portfolio::PortfolioConfig;

/// A scheduled change of one node's speed (DVFS step, thermal throttle,
/// turbo variation — the system-level imbalance sources of the paper's
/// introduction).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeedEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// Which node.
    pub node: usize,
    /// New relative speed (1.0 = nominal). Tasks already executing keep
    /// their start-time duration; tasks started afterwards use the new
    /// speed.
    pub speed: f64,
}

/// Description of the (virtual) machine an experiment runs on.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Relative speed per node (1.0 nominal). Task durations divide by
    /// this, so 0.6 models Nord3's 1.8 GHz nodes among 3.0 GHz peers.
    pub node_speed: Vec<f64>,
    /// One-way network latency for control messages and transfers.
    pub net_latency: SimTime,
    /// Network bandwidth in bytes per second (per link).
    pub net_bandwidth: f64,
    /// Core time consumed per *offloaded* task by the runtime itself
    /// (control messages, eager data copies, distributed dependency
    /// bookkeeping — §5.1).
    pub offload_cpu_overhead: SimTime,
    /// Scheduled mid-run speed changes (DVFS/thermal events).
    pub speed_events: Vec<SpeedEvent>,
    /// Background CPU consumed by each worker *process* on a node
    /// (message polling, distributed dependency state), as a fraction of
    /// one core. More helper ranks per node mean more such noise — the
    /// paper's reason to keep the offloading degree low ("each helper
    /// rank implies point-to-point communication and state", §5.1), and
    /// what makes degree 8 slightly worse than degree 4 in Fig. 6.
    pub worker_noise: f64,
}

impl Platform {
    /// Homogeneous *ideal* platform at speed 1.0: no runtime noise, no
    /// offload overhead. Unit tests and algorithm studies use this; the
    /// machine presets ([`Platform::mn4`], [`Platform::nord3`]) add the
    /// realistic overheads.
    pub fn homogeneous(nodes: usize, cores_per_node: usize) -> Self {
        Platform {
            nodes,
            cores_per_node,
            node_speed: vec![1.0; nodes],
            net_latency: SimTime::from_micros(2),
            net_bandwidth: 12.5e9, // 100 Gb/s Omni-Path
            offload_cpu_overhead: SimTime::ZERO,
            speed_events: Vec::new(),
            worker_noise: 0.0,
        }
    }

    /// MareNostrum 4 general-purpose block: 48-core nodes (2×24 Platinum),
    /// 100 Gb/s Omni-Path (paper §6.3), with realistic runtime overheads.
    pub fn mn4(nodes: usize) -> Self {
        let mut p = Platform::homogeneous(nodes, 48);
        p.offload_cpu_overhead = SimTime::from_micros(250);
        p.worker_noise = 0.2;
        p
    }

    /// Nord3: 16-core nodes (2×8 SandyBridge). `slow_nodes` run at
    /// 1.8 GHz against 3.0 GHz for the rest (speed factor 0.6).
    pub fn nord3(nodes: usize, slow_nodes: &[usize]) -> Self {
        let mut p = Platform::homogeneous(nodes, 16);
        p.net_bandwidth = 5e9; // older InfiniBand FDR10
        p.offload_cpu_overhead = SimTime::from_micros(250);
        p.worker_noise = 0.2;
        for &n in slow_nodes {
            p.node_speed[n] = 1.8 / 3.0;
        }
        p
    }

    /// Mark `node` as slower by `factor` (>1 = that much slower), as the
    /// synthetic slow-node sweep does (Fig. 10, 3× slower).
    pub fn with_slowdown(mut self, node: usize, factor: f64) -> Self {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.node_speed[node] = 1.0 / factor;
        self
    }

    /// Schedule a mid-run speed change (DVFS step / thermal throttle).
    pub fn with_speed_event(mut self, at: SimTime, node: usize, speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        assert!(node < self.nodes, "node out of range");
        self.speed_events.push(SpeedEvent { at, node, speed });
        self
    }

    /// Total cores across the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Sum of `cores × speed` — the machine's effective core count.
    pub fn effective_capacity(&self) -> f64 {
        self.node_speed
            .iter()
            .map(|s| s * self.cores_per_node as f64)
            .sum()
    }
}

/// Which DROM core-allocation policy runs (paper §5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DromPolicy {
    /// DROM disabled: ownership stays at the initial split.
    Off,
    /// Local convergence (§5.4.1): per-node, proportional to busy cores.
    Local,
    /// Global solver (§5.4.2): min-max program over the expander graph.
    Global,
}

/// Solver backing the global policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GlobalSolverKind {
    /// Two-phase simplex on the work-split LP (the paper's CVXOPT role).
    Simplex,
    /// Parametric bisection with a max-flow feasibility oracle (ablation).
    Flow,
}

/// Demand signal fed to the global solver (§5.4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkSignal {
    /// The paper's signal: time-integrated busy cores per worker over the
    /// window, plus currently pending work. Subject to phase error when
    /// the window cuts iterations at different points per rank.
    BusyPending,
    /// Work *created* per apprank since the last solve, taken from the
    /// tasks' cost hints. All appranks share iteration boundaries, so the
    /// signal is exactly proportional to demand; falls back to
    /// `BusyPending` in windows where no tasks were created. (Nanos6 has
    /// no duration oracle, hence the paper uses busy cores; our runtime
    /// has the cost hints anyway. `ablation_signal` quantifies the gap.)
    CreatedWork,
}

/// How aggressively a worker may steal held tasks onto cores beyond its
/// eager queue (paper §5.5: "will be stolen as tasks complete").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealGate {
    /// Steal only while below `depth × owned` tasks — the strict reading
    /// of §5.5 (borrowed cores never increase steal appetite).
    Owned,
    /// Steal while below `depth × (owned + idle cores on the node)`:
    /// borrowed capacity counts only while it is actually idle, which
    /// floods an idle neighbour node (Fig. 9c) yet stays
    /// ownership-proportional when the machine is saturated.
    Usable,
    /// No gate: steal whenever a core is acquirable (most work-conserving,
    /// most placement-myopic).
    Unbounded,
}

/// Dynamic work spreading (the paper's §5.2 future-work extension):
/// instead of a fixed offloading degree, helper ranks are spawned at run
/// time when the global solver finds an apprank capacity-constrained.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynamicSpreading {
    /// Hard cap on nodes per apprank (home included).
    pub max_degree: usize,
    /// Spawn when the solved bound exceeds the machine-wide mean load by
    /// this factor (e.g. 1.1 = 10% above perfect balance).
    pub overload_threshold: f64,
}

impl Default for DynamicSpreading {
    fn default() -> Self {
        DynamicSpreading {
            max_degree: 4,
            overload_threshold: 1.1,
        }
    }
}

/// All balancing knobs for one execution.
#[derive(Clone, Debug)]
pub struct BalanceConfig {
    /// Offloading degree: nodes per apprank including home (1 = no
    /// offloading, the baseline).
    pub degree: usize,
    /// LeWI fine-grained lending on/off.
    pub lewi: bool,
    /// DROM coarse-grained policy.
    pub drom: DromPolicy,
    /// Solver used when `drom == Global`.
    pub solver: GlobalSolverKind,
    /// Local policy adjustment period (continuous in the paper; we tick it
    /// at this period — 100 ms by default).
    pub local_period: SimTime,
    /// Global policy period (paper: every two seconds).
    pub global_period: SimTime,
    /// Cost charged to the node hosting the global solver per invocation
    /// (the paper measures ≈57 ms at 32 nodes; we measure our own solver
    /// and charge that, but the knob allows reproducing theirs).
    pub solver_cost_override: Option<SimTime>,
    /// Expander graph seed.
    pub seed: u64,
    /// Ablation: scheduler threshold of queued tasks per owned core
    /// (paper uses two, §5.5).
    pub queue_depth_per_core: usize,
    /// Ablation: let the scheduler count LeWI-borrowed cores as capacity
    /// (the paper deliberately does not, §5.5).
    pub count_borrowed_cores: bool,
    /// Demand signal for the global solver.
    pub work_signal: WorkSignal,
    /// Steal aggressiveness (see [`StealGate`]).
    pub steal_gate: StealGate,
    /// Dynamic helper spawning (requires `drom == Global`); `degree` is
    /// then the *initial* degree, usually 1.
    pub dynamic: Option<DynamicSpreading>,
    /// Race a solver portfolio on every global tick instead of the single
    /// `solver` (requires `drom == Global`). `None` keeps the paper's
    /// single-solver behaviour.
    pub portfolio: Option<PortfolioConfig>,
    /// The balancing policy from the open registry. `None` means the
    /// legacy mechanical combination of `lewi` + `drom` (exactly what
    /// every pre-registry configuration ran); `Some` dispatches the
    /// simulator through the named [`crate::BalancePolicy`] object.
    pub policy: Option<crate::PolicySpec>,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        BalanceConfig {
            degree: 4,
            lewi: true,
            drom: DromPolicy::Global,
            solver: GlobalSolverKind::Simplex,
            local_period: SimTime::from_millis(100),
            global_period: SimTime::from_secs(2),
            solver_cost_override: None,
            seed: 1,
            queue_depth_per_core: 2,
            count_borrowed_cores: false,
            work_signal: WorkSignal::CreatedWork,
            steal_gate: StealGate::Usable,
            dynamic: None,
            portfolio: None,
            policy: None,
        }
    }
}

/// A named balancing configuration. The old constructors mixed policy
/// and mechanism in their names (`baseline`, `dlb_only`, `offloading`,
/// `dynamic_spreading`); a `Preset` states exactly which combination of
/// degree, LeWI, and DROM it stands for, and every preset goes through
/// the single [`BalanceConfig::preset`] constructor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Preset {
    /// No balancing at all: degree 1, no LeWI, no DROM (the paper's
    /// baseline series).
    Baseline,
    /// DLB confined to each node (the paper's "DLB" series): degree 1
    /// with LeWI and the local DROM policy.
    NodeDlb,
    /// Offloading at `degree` under `drom`, LeWI on — the paper's
    /// LeWI+DROM configurations.
    Offload {
        /// Nodes per apprank including home.
        degree: usize,
        /// DROM core-allocation policy.
        drom: DromPolicy,
    },
    /// Dynamic work spreading (paper §5.2 future work): start at degree
    /// 1 and spawn helpers up to `max_degree` under the global policy.
    DynamicSpread {
        /// Hard cap on nodes per apprank (home included).
        max_degree: usize,
    },
}

impl BalanceConfig {
    /// The single preset constructor: build the configuration a
    /// [`Preset`] names, with every other knob at its default. Refine
    /// with the `with_*` builders.
    pub fn preset(preset: Preset) -> Self {
        match preset {
            Preset::Baseline => BalanceConfig {
                degree: 1,
                lewi: false,
                drom: DromPolicy::Off,
                ..BalanceConfig::default()
            },
            Preset::NodeDlb => BalanceConfig {
                degree: 1,
                lewi: true,
                drom: DromPolicy::Local,
                ..BalanceConfig::default()
            },
            Preset::Offload { degree, drom } => BalanceConfig {
                degree,
                lewi: true,
                drom,
                ..BalanceConfig::default()
            },
            Preset::DynamicSpread { max_degree } => BalanceConfig {
                degree: 1,
                lewi: true,
                drom: DromPolicy::Global,
                dynamic: Some(DynamicSpreading {
                    max_degree,
                    ..DynamicSpreading::default()
                }),
                ..BalanceConfig::default()
            },
        }
    }

    /// Builder: set the expander seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: toggle LeWI.
    pub fn with_lewi(mut self, on: bool) -> Self {
        self.lewi = on;
        self
    }

    /// Builder: set the offloading degree.
    pub fn with_degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }

    /// Builder: set the DROM policy.
    pub fn with_drom(mut self, drom: DromPolicy) -> Self {
        self.drom = drom;
        self
    }

    /// Builder: set the global solver backend.
    pub fn with_solver(mut self, solver: GlobalSolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Builder: race a solver portfolio on every global tick.
    pub fn with_portfolio(mut self, portfolio: PortfolioConfig) -> Self {
        self.portfolio = Some(portfolio);
        self
    }

    /// Builder: select a registry policy. Sets `lewi` and `drom` to the
    /// policy's defaults (refine afterwards with [`Self::with_lewi`] to
    /// override lending) and stores the spec for trait dispatch.
    pub fn with_policy(mut self, spec: crate::PolicySpec) -> Self {
        self.lewi = spec.lewi();
        self.drom = spec.drom();
        self.policy = Some(spec);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mn4_shape() {
        let p = Platform::mn4(32);
        assert_eq!(p.total_cores(), 32 * 48);
        assert!((p.effective_capacity() - 1536.0).abs() < 1e-9);
    }

    #[test]
    fn nord3_slow_nodes() {
        let p = Platform::nord3(16, &[0]);
        assert_eq!(p.cores_per_node, 16);
        assert!((p.node_speed[0] - 0.6).abs() < 1e-12);
        assert_eq!(p.node_speed[1], 1.0);
        assert!(p.effective_capacity() < 16.0 * 16.0);
    }

    #[test]
    fn slowdown_builder() {
        let p = Platform::homogeneous(4, 8).with_slowdown(2, 3.0);
        assert!((p.node_speed[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn config_presets() {
        let b = BalanceConfig::preset(Preset::Baseline);
        assert_eq!(b.degree, 1);
        assert!(!b.lewi);
        assert_eq!(b.drom, DromPolicy::Off);
        let d = BalanceConfig::preset(Preset::NodeDlb);
        assert_eq!(d.degree, 1);
        assert!(d.lewi);
        assert_eq!(d.drom, DromPolicy::Local);
        let o = BalanceConfig::preset(Preset::Offload {
            degree: 4,
            drom: DromPolicy::Global,
        });
        assert_eq!(o.degree, 4);
        assert_eq!(o.queue_depth_per_core, 2);
        let dy = BalanceConfig::preset(Preset::DynamicSpread { max_degree: 3 });
        assert_eq!(dy.degree, 1);
        assert_eq!(dy.dynamic.map(|d| d.max_degree), Some(3));
    }

    #[test]
    fn builders_refine_presets() {
        let c = BalanceConfig::preset(Preset::Baseline)
            .with_degree(2)
            .with_drom(DromPolicy::Global)
            .with_lewi(true)
            .with_solver(GlobalSolverKind::Flow)
            .with_seed(9);
        assert_eq!(c.degree, 2);
        assert_eq!(c.drom, DromPolicy::Global);
        assert!(c.lewi);
        assert_eq!(c.solver, GlobalSolverKind::Flow);
        assert_eq!(c.seed, 9);
    }
}
