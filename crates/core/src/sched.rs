//! The offload scheduler decision rule (paper §5.5).

/// The paper's queue-depth threshold: "two tasks per core allows one task
/// to be executing and another to have the data transfer initiated in
/// advance".
pub const QUEUE_DEPTH_PER_CORE: usize = 2;

/// Snapshot of one candidate worker (an apprank's presence on one node)
/// at scheduling time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandidateState {
    /// Node the worker runs on.
    pub node: usize,
    /// Tasks already assigned to this worker (queued or executing).
    pub queued_tasks: usize,
    /// Cores the worker *owns* via DROM. The scheduler deliberately
    /// ignores LeWI-borrowed cores: "borrowed cores may have to be
    /// returned at any moment" (§5.5) — unless the ablation flag counts
    /// them.
    pub owned_cores: usize,
    /// Cores currently usable including borrowed ones (for the ablation).
    pub usable_cores: usize,
}

impl CandidateState {
    fn capacity(&self, count_borrowed: bool) -> usize {
        if count_borrowed {
            self.usable_cores.max(self.owned_cores)
        } else {
            self.owned_cores
        }
    }

    fn below_threshold(&self, depth: usize, count_borrowed: bool) -> bool {
        self.queued_tasks < depth * self.capacity(count_borrowed)
    }

    /// Load ratio used to break ties among under-threshold alternatives.
    fn pressure(&self, count_borrowed: bool) -> f64 {
        let cap = self.capacity(count_borrowed);
        if cap == 0 {
            f64::INFINITY
        } else {
            self.queued_tasks as f64 / cap as f64
        }
    }
}

/// Outcome of a tentative scheduling decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Send the task to the worker at index `usize` in the candidate list.
    Worker(usize),
    /// All candidates are at the queue-depth limit: hold the task in the
    /// apprank's ready queue; it will be *stolen* when a worker completes
    /// a task and drops below the threshold.
    Hold,
}

/// Why [`choose_node`] placed (or held) a task — the taxonomy the trace
/// layer records for every decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChoiceReason {
    /// The preferred (locality-best) candidate was under the threshold.
    LocalityHit,
    /// Preferred was saturated; spilled to the least-pressured adjacent
    /// candidate under the threshold.
    AdjacentSpill,
    /// Every candidate was saturated: the task is queued for stealing.
    Saturated,
}

/// Make the tentative scheduling decision for a newly ready task
/// (paper §5.5): prefer `preferred` (the locality-best candidate, index
/// into `candidates`) if it is under the queue-depth threshold, otherwise
/// the least-loaded alternative under the threshold, otherwise hold.
///
/// `depth` is tasks-per-owned-core (paper: 2); `count_borrowed` is the
/// ablation that also counts LeWI-borrowed cores.
pub fn choose_node(
    candidates: &[CandidateState],
    preferred: usize,
    depth: usize,
    count_borrowed: bool,
) -> Placement {
    choose_node_explained(candidates, preferred, depth, count_borrowed).0
}

/// [`choose_node`] plus the [`ChoiceReason`] that justified the outcome.
pub fn choose_node_explained(
    candidates: &[CandidateState],
    preferred: usize,
    depth: usize,
    count_borrowed: bool,
) -> (Placement, ChoiceReason) {
    assert!(preferred < candidates.len(), "preferred index out of range");
    if candidates[preferred].below_threshold(depth, count_borrowed) {
        return (Placement::Worker(preferred), ChoiceReason::LocalityHit);
    }
    let mut best: Option<(f64, usize)> = None;
    for (i, c) in candidates.iter().enumerate() {
        if i == preferred || !c.below_threshold(depth, count_borrowed) {
            continue;
        }
        let p = c.pressure(count_borrowed);
        if best.is_none_or(|(bp, _)| p < bp) {
            best = Some((p, i));
        }
    }
    match best {
        Some((_, i)) => (Placement::Worker(i), ChoiceReason::AdjacentSpill),
        None => (Placement::Hold, ChoiceReason::Saturated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(node: usize, queued: usize, owned: usize) -> CandidateState {
        CandidateState {
            node,
            queued_tasks: queued,
            owned_cores: owned,
            usable_cores: owned,
        }
    }

    #[test]
    fn preferred_wins_when_under_threshold() {
        let cands = [cand(0, 3, 2), cand(1, 0, 2)];
        // 3 < 2*2: home still under threshold.
        assert_eq!(choose_node(&cands, 0, 2, false), Placement::Worker(0));
    }

    #[test]
    fn overflows_to_least_loaded_alternative() {
        let cands = [cand(0, 4, 2), cand(1, 3, 2), cand(2, 1, 2)];
        // Home full (4 == 2*2); node 2 has lower pressure than node 1.
        assert_eq!(choose_node(&cands, 0, 2, false), Placement::Worker(2));
    }

    #[test]
    fn holds_when_everything_full() {
        let cands = [cand(0, 4, 2), cand(1, 4, 2)];
        assert_eq!(choose_node(&cands, 0, 2, false), Placement::Hold);
    }

    #[test]
    fn borrowed_cores_ignored_by_default() {
        let mut c = cand(0, 2, 1);
        c.usable_cores = 4; // borrowing 3 cores via LeWI
                            // 2 == 2*1: at threshold → hold, despite the borrowed capacity.
        assert_eq!(choose_node(&[c], 0, 2, false), Placement::Hold);
        // Ablation: counting borrowed cores admits the task.
        assert_eq!(choose_node(&[c], 0, 2, true), Placement::Worker(0));
    }

    #[test]
    fn zero_owned_cores_never_selected() {
        let cands = [cand(0, 0, 0), cand(1, 1, 2)];
        // Preferred owns nothing (0 < 2*0 is false) → alternative.
        assert_eq!(choose_node(&cands, 0, 2, false), Placement::Worker(1));
    }

    #[test]
    fn depth_one_is_stricter() {
        let cands = [cand(0, 1, 1), cand(1, 0, 1)];
        assert_eq!(choose_node(&cands, 0, 1, false), Placement::Worker(1));
        assert_eq!(choose_node(&cands, 0, 2, false), Placement::Worker(0));
    }

    #[test]
    fn explained_reasons_match_placements() {
        let spill = [cand(0, 4, 2), cand(1, 1, 2)];
        assert_eq!(
            choose_node_explained(&spill, 0, 2, false),
            (Placement::Worker(1), ChoiceReason::AdjacentSpill)
        );
        let local = [cand(0, 1, 2), cand(1, 0, 2)];
        assert_eq!(
            choose_node_explained(&local, 0, 2, false),
            (Placement::Worker(0), ChoiceReason::LocalityHit)
        );
        let full = [cand(0, 4, 2), cand(1, 4, 2)];
        assert_eq!(
            choose_node_explained(&full, 0, 2, false),
            (Placement::Hold, ChoiceReason::Saturated)
        );
    }

    #[test]
    fn single_candidate_degree_one() {
        // Baseline (degree 1): only the home worker exists.
        let c = [cand(0, 7, 4)];
        assert_eq!(choose_node(&c, 0, 2, false), Placement::Worker(0));
        let full = [cand(0, 8, 4)];
        assert_eq!(choose_node(&full, 0, 2, false), Placement::Hold);
    }
}
