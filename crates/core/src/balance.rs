//! The open balancing-policy API: a deterministic registry of named,
//! parameterized policies behind one [`BalancePolicy`] trait.
//!
//! Before this module, adding a policy meant editing four
//! hand-synchronized sites: the closed `DromPolicy` enum in
//! [`crate::config`], the dispatch in `tlb-cluster`'s simulator, the
//! sweep crate's policy-axis string table, and the CLI's `--policy`
//! parser. Now a policy is one registry entry:
//!
//! * a stable **name** plus **typed parameters**, parsed from and
//!   rendered to the same `name(k=v,...)` string form everywhere
//!   (scenario JSON, CLI flags, cache keys, reports);
//! * a **per-local-tick hook** ([`BalancePolicy::on_local_tick`]) that
//!   decides whether the LeWI-style intra-node convergence step runs;
//! * a **per-global-tick hook** ([`BalancePolicy::on_global_tick`])
//!   that sees a [`SignalView`] of what the TALP/counters layer already
//!   measures — per-apprank demand, per-process busy time (hence MPI
//!   wait time), placement, and current core ownership — and returns a
//!   [`GlobalAction`]: run the §5.4.2 solver (with the whole portfolio
//!   machinery available), install an explicit ownership map, or keep
//!   the current allocation.
//!
//! The four paper policies (`baseline`, `lewi`, `lewi+drom-local`,
//! `lewi+drom-global`) are registered as trait objects whose hooks
//! route into the exact code paths the legacy `DromPolicy` dispatch
//! used, so their simulations stay bitwise identical. Two genuinely
//! new families ride on the same interface:
//!
//! * [`reactive-offload`](ReactiveOffload) — no solver at all: core
//!   ownership shifts between co-located processes whenever a rank's
//!   observed MPI wait fraction crosses a hysteresis threshold, after
//!   "Lightweight Task Offloading Exploiting MPI Wait Times for
//!   Parallel Adaptive Mesh Refinement" (PAPERS.md);
//! * [`diffusion`](Diffusion) — decentralized first/second-order
//!   diffusion exchanging indivisible core units between neighboring
//!   processes, after "Balancing indivisible real-valued loads in
//!   arbitrary networks" (PAPERS.md).
//!
//! Both are deterministic functions of the signal view, so sweep
//! reports stay bitwise identical at any `--jobs` level.

use std::fmt;

use crate::config::DromPolicy;

/// The value type of one policy parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// Rendered and parsed as an integer; fractional values are
    /// rejected at parse time.
    Int,
    /// Any finite floating-point value.
    Float,
}

/// One typed parameter of a registered policy.
#[derive(Debug)]
pub struct ParamDef {
    /// The key on the left of `k=v`.
    pub key: &'static str,
    pub kind: ParamKind,
    /// Value assumed when the parameter is omitted; specs at the
    /// default render back to the bare policy name.
    pub default: f64,
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
    /// One-line description for error messages and docs.
    pub help: &'static str,
}

/// One entry of the policy registry: the policy's identity, its
/// mechanical footprint (which ticks it wants, whether it builds the
/// global LP), and its parameter schema.
#[derive(Debug)]
pub struct PolicyDef {
    /// Stable registry name, used verbatim in scenario JSON, CLI
    /// flags, cache keys, and reports.
    pub name: &'static str,
    /// One-line description for `--help`-style listings and docs.
    pub summary: &'static str,
    /// Whether LeWI fine-grained lending is on by default.
    pub lewi: bool,
    /// The legacy `DromPolicy` knob this policy maps onto; kept so
    /// existing config consumers (traces, reports) stay meaningful.
    pub drom: DromPolicy,
    /// Whether the §5.4.2 global LP (and thus the solver portfolio)
    /// is constructed for this policy.
    pub uses_solver: bool,
    /// Whether the per-node local-convergence tick is scheduled.
    pub local_tick: bool,
    /// Whether the cluster-wide global tick is scheduled.
    pub global_tick: bool,
    pub params: &'static [ParamDef],
    /// Extra cross-parameter validation run after range checks; the
    /// slice is the resolved parameter values in `params` order.
    pub check: Option<ParamCheck>,
}

/// Cross-parameter validation hook of a [`PolicyDef`].
pub type ParamCheck = fn(&[f64]) -> Result<(), String>;

fn check_reactive(values: &[f64]) -> Result<(), String> {
    if values[0] <= values[1] {
        return Err(format!(
            "'hi' ({}) must be greater than 'lo' ({}) for hysteresis to latch",
            values[0], values[1]
        ));
    }
    Ok(())
}

/// The deterministic policy registry. Order is stable and is the
/// order parameters render in canonical form.
pub static POLICY_REGISTRY: &[PolicyDef] = &[
    PolicyDef {
        name: "baseline",
        summary: "no balancing: static cores, no lending, no reallocation",
        lewi: false,
        drom: DromPolicy::Off,
        uses_solver: false,
        local_tick: false,
        global_tick: false,
        params: &[],
        check: None,
    },
    PolicyDef {
        name: "lewi",
        summary: "LeWI fine-grained lending only (paper 5.4 intra-node)",
        lewi: true,
        drom: DromPolicy::Off,
        uses_solver: false,
        local_tick: false,
        global_tick: false,
        params: &[],
        check: None,
    },
    PolicyDef {
        name: "lewi+drom-local",
        summary: "LeWI plus per-node DROM local convergence (paper 5.4.1)",
        lewi: true,
        drom: DromPolicy::Local,
        uses_solver: false,
        local_tick: true,
        global_tick: false,
        params: &[],
        check: None,
    },
    PolicyDef {
        name: "lewi+drom-global",
        summary: "LeWI plus the global min-max reallocation LP (paper 5.4.2)",
        lewi: true,
        drom: DromPolicy::Global,
        uses_solver: true,
        local_tick: false,
        global_tick: true,
        params: &[],
        check: None,
    },
    PolicyDef {
        name: "reactive-offload",
        summary: "solver-free reallocation from observed MPI wait times with hysteresis",
        lewi: true,
        drom: DromPolicy::Off,
        uses_solver: false,
        local_tick: false,
        global_tick: true,
        params: &[
            ParamDef {
                key: "hi",
                kind: ParamKind::Float,
                default: 0.25,
                min: 0.0,
                max: 1.0,
                help: "wait fraction above which a rank latches underloaded",
            },
            ParamDef {
                key: "lo",
                kind: ParamKind::Float,
                default: 0.10,
                min: 0.0,
                max: 1.0,
                help: "wait fraction below which the underloaded latch clears",
            },
            ParamDef {
                key: "unit",
                kind: ParamKind::Int,
                default: 1.0,
                min: 1.0,
                max: 1024.0,
                help: "cores moved per latched donor per global tick",
            },
        ],
        check: Some(check_reactive),
    },
    PolicyDef {
        name: "diffusion",
        summary: "first/second-order diffusion of indivisible core units between neighbors",
        lewi: true,
        drom: DromPolicy::Off,
        uses_solver: false,
        local_tick: false,
        global_tick: true,
        params: &[
            ParamDef {
                key: "alpha",
                kind: ParamKind::Float,
                default: 0.5,
                min: 1e-6,
                max: 1.0,
                help: "diffusion coefficient on each load-difference edge",
            },
            ParamDef {
                key: "order",
                kind: ParamKind::Int,
                default: 1.0,
                min: 1.0,
                max: 2.0,
                help: "diffusion order: 1 = first order, 2 = adds momentum",
            },
            ParamDef {
                key: "beta",
                kind: ParamKind::Float,
                default: 0.5,
                min: 0.0,
                max: 0.99,
                help: "momentum carried from the previous flow (order=2 only)",
            },
        ],
        check: None,
    },
];

/// All registered policy names, in registry order, for error messages
/// and docs.
pub fn known_policy_names() -> Vec<&'static str> {
    POLICY_REGISTRY.iter().map(|d| d.name).collect()
}

fn lookup(name: &str) -> Option<&'static PolicyDef> {
    POLICY_REGISTRY.iter().find(|d| d.name == name)
}

/// A policy parse or validation failure, with the message already
/// listing the known alternatives (sweep strict-parse style).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyError(pub String);

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PolicyError {}

/// A resolved policy: a registry entry plus one value per parameter.
///
/// Specs are the single policy currency across the workspace: the
/// sweep axis element, the CLI `--policy` value, the field inside
/// `BalanceConfig`, and (via [`PolicySpec::canonical`]) the cache-key
/// contribution. Equality compares the name and every parameter
/// value, so two parameterizations of one policy never compare (or
/// hash-key) equal.
#[derive(Clone, Debug)]
pub struct PolicySpec {
    def: &'static PolicyDef,
    values: Vec<f64>,
}

impl PartialEq for PolicySpec {
    fn eq(&self, other: &PolicySpec) -> bool {
        self.def.name == other.def.name && self.values == other.values
    }
}

impl fmt::Display for PolicySpec {
    /// Renders the canonical form (see [`PolicySpec::canonical`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl PolicySpec {
    /// The spec of a registered policy with every parameter at its
    /// default.
    pub fn named(name: &str) -> Result<PolicySpec, PolicyError> {
        let def = lookup(name).ok_or_else(|| unknown_policy(name))?;
        Ok(PolicySpec {
            def,
            values: def.params.iter().map(|p| p.default).collect(),
        })
    }

    /// Parse `name` or `name(k=v,...)`. Unknown policies and unknown
    /// parameters are errors that list the known alternatives; values
    /// are range-checked against the parameter schema.
    pub fn parse(text: &str) -> Result<PolicySpec, PolicyError> {
        let text = text.trim();
        let (name, args) = match text.split_once('(') {
            None => (text, None),
            Some((name, rest)) => {
                let rest = rest.trim_end();
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| PolicyError(format!("policy '{text}': missing closing ')'")))?;
                (name.trim(), Some(inner))
            }
        };
        let mut spec = PolicySpec::named(name)?;
        if let Some(inner) = args {
            for part in inner.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let (key, value) = part.split_once('=').ok_or_else(|| {
                    PolicyError(format!(
                        "policy '{name}': expected 'key=value', got '{part}'"
                    ))
                })?;
                spec.set(key.trim(), value.trim())?;
            }
        }
        if let Some(check) = spec.def.check {
            check(&spec.values).map_err(|msg| PolicyError(format!("policy '{name}': {msg}")))?;
        }
        Ok(spec)
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), PolicyError> {
        let name = self.def.name;
        let idx = self
            .def
            .params
            .iter()
            .position(|p| p.key == key)
            .ok_or_else(|| {
                let known: Vec<&str> = self.def.params.iter().map(|p| p.key).collect();
                PolicyError(if known.is_empty() {
                    format!("policy '{name}' takes no parameters, got '{key}'")
                } else {
                    format!(
                        "policy '{name}': unknown parameter '{key}' (known: {})",
                        known.join(", ")
                    )
                })
            })?;
        let p = &self.def.params[idx];
        let v: f64 = value.parse().map_err(|_| {
            PolicyError(format!(
                "policy '{name}': parameter '{key}' expects a number, got '{value}'"
            ))
        })?;
        if !v.is_finite() {
            return Err(PolicyError(format!(
                "policy '{name}': parameter '{key}' must be finite"
            )));
        }
        if p.kind == ParamKind::Int && v.fract() != 0.0 {
            return Err(PolicyError(format!(
                "policy '{name}': parameter '{key}' expects an integer, got '{value}'"
            )));
        }
        if v < p.min || v > p.max {
            return Err(PolicyError(format!(
                "policy '{name}': parameter '{key}' = {v} out of range [{}, {}]",
                p.min, p.max
            )));
        }
        self.values[idx] = v;
        Ok(())
    }

    /// The registry name (no parameters).
    pub fn name(&self) -> &'static str {
        self.def.name
    }

    /// The registry entry behind this spec.
    pub fn def(&self) -> &'static PolicyDef {
        self.def
    }

    /// The canonical string form: the bare name when every parameter
    /// is at its default, otherwise `name(k=v,...)` listing only the
    /// non-default parameters in registry order. Canonical strings
    /// round-trip through [`PolicySpec::parse`] and are what cache
    /// keys, sweep reports, and `tlb-run` output all print.
    pub fn canonical(&self) -> String {
        let mut args = String::new();
        for (p, &v) in self.def.params.iter().zip(&self.values) {
            if v == p.default {
                continue;
            }
            if !args.is_empty() {
                args.push(',');
            }
            match p.kind {
                ParamKind::Int => args.push_str(&format!("{}={}", p.key, v as i64)),
                ParamKind::Float => args.push_str(&format!("{}={v}", p.key)),
            }
        }
        if args.is_empty() {
            self.def.name.to_string()
        } else {
            format!("{}({args})", self.def.name)
        }
    }

    /// The value of a parameter by key. Panics on a key absent from
    /// the schema — that is a programming error, not an input error.
    pub fn param(&self, key: &str) -> f64 {
        let idx = self
            .def
            .params
            .iter()
            .position(|p| p.key == key)
            .unwrap_or_else(|| panic!("policy '{}' has no parameter '{key}'", self.def.name));
        self.values[idx]
    }

    /// Whether LeWI lending defaults on under this policy.
    pub fn lewi(&self) -> bool {
        self.def.lewi
    }

    /// The legacy `DromPolicy` knob this policy maps onto.
    pub fn drom(&self) -> DromPolicy {
        self.def.drom
    }

    /// Whether the global LP (and the portfolio) is built.
    pub fn uses_solver(&self) -> bool {
        self.def.uses_solver
    }

    /// Whether the per-node local-convergence tick is scheduled.
    pub fn wants_local_tick(&self) -> bool {
        self.def.local_tick
    }

    /// Whether the cluster-wide global tick is scheduled.
    pub fn wants_global_tick(&self) -> bool {
        self.def.global_tick
    }

    /// Instantiate the runtime policy object for this spec.
    pub fn instantiate(&self) -> Box<dyn BalancePolicy> {
        match self.def.name {
            "reactive-offload" => Box::new(ReactiveOffload::new(self.clone())),
            "diffusion" => Box::new(Diffusion::new(self.clone())),
            _ => Box::new(LegacyPolicy { spec: self.clone() }),
        }
    }
}

fn unknown_policy(name: &str) -> PolicyError {
    PolicyError(format!(
        "unknown policy '{name}' (known: {})",
        known_policy_names().join(", ")
    ))
}

/// The runtime policy object for legacy `(lewi, drom)` configurations
/// that never went through a [`PolicySpec`] — e.g. presets or tests
/// that flip `BalanceConfig` fields directly. The object reproduces
/// the mechanical combination exactly; the spec it reports is the
/// nearest registry entry by DROM mode (cosmetic only).
pub fn legacy_policy(lewi: bool, drom: DromPolicy) -> Box<dyn BalancePolicy> {
    let name = match (lewi, drom) {
        (false, DromPolicy::Off) => "baseline",
        (true, DromPolicy::Off) => "lewi",
        (_, DromPolicy::Local) => "lewi+drom-local",
        (_, DromPolicy::Global) => "lewi+drom-global",
    };
    let spec = PolicySpec::named(name).expect("legacy policies are registered");
    Box::new(LegacyPolicy { spec })
}

/// What the per-local-tick hook tells the simulator to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalAction {
    /// Run the §5.4.1 per-node convergence step (the legacy
    /// `drom=local` behaviour).
    Converge,
    /// Leave ownership as it is this tick.
    Keep,
}

/// What the per-global-tick hook tells the simulator to do.
#[derive(Clone, Debug, PartialEq)]
pub enum GlobalAction {
    /// Run the §5.4.2 global LP (or the racing portfolio) exactly as
    /// the legacy `drom=global` path did.
    Solve,
    /// Install an explicit per-node ownership map (one count per
    /// worker process), charged `comm_rounds` interconnect latencies
    /// before it takes effect.
    SetOwnership {
        per_node: Vec<Vec<usize>>,
        comm_rounds: usize,
    },
    /// Keep the current allocation this tick.
    Keep,
}

/// A read-only view over the signals the TALP/counters layer already
/// measures, assembled by the simulator at each global tick. All
/// slices are indexed the obvious way: `work` by apprank, `busy` and
/// `ownership` by `[node][process]`, `placement[apprank]` listing the
/// `(node, process)` pairs the apprank's workers occupy (home node
/// first).
#[derive(Debug)]
pub struct SignalView<'a> {
    /// Seconds of wall time covered by this measurement window (one
    /// global period).
    pub window_secs: f64,
    /// Physical cores per node.
    pub cores_per_node: usize,
    /// Relative speed of each node (1.0 = nominal).
    pub node_speed: &'a [f64],
    /// Per-apprank outstanding demand estimate in core-seconds, the
    /// same signal the global LP consumes.
    pub work: &'a [f64],
    /// Per-node, per-process busy seconds accumulated over the window
    /// (TALP deltas). Wait time is the window minus this.
    pub busy: &'a [Vec<f64>],
    /// Per-apprank worker placement as `(node, process)` pairs, home
    /// node first.
    pub placement: &'a [Vec<(usize, usize)>],
    /// Per-node, per-process current target core ownership.
    pub ownership: &'a [Vec<usize>],
    /// Per-node, per-process liveness; retired (failed) processes are
    /// `false` and must keep their ownership untouched.
    pub alive: &'a [Vec<bool>],
}

impl SignalView<'_> {
    /// Number of application ranks.
    pub fn appranks(&self) -> usize {
        self.work.len()
    }

    /// Total cores currently owned by an apprank across its workers.
    pub fn owned_cores(&self, apprank: usize) -> usize {
        self.placement[apprank]
            .iter()
            .map(|&(node, proc)| self.ownership[node][proc])
            .sum()
    }

    /// Busy seconds an apprank accumulated over the window.
    pub fn busy_secs(&self, apprank: usize) -> f64 {
        self.placement[apprank]
            .iter()
            .map(|&(node, proc)| self.busy[node][proc])
            .sum()
    }

    /// The fraction of the window an apprank's owned cores spent
    /// waiting (in MPI or idle), clamped to `[0, 1]`. This is the
    /// reactive-offload paper's wait-time signal.
    pub fn wait_fraction(&self, apprank: usize) -> f64 {
        let owned = self.owned_cores(apprank);
        if owned == 0 || self.window_secs <= 0.0 {
            return 0.0;
        }
        let capacity = self.window_secs * owned as f64;
        ((capacity - self.busy_secs(apprank)) / capacity).clamp(0.0, 1.0)
    }

    /// Outstanding demand per owned core, in units of windows: the
    /// diffusion "load" on an apprank's vertex. Greater than 1 means
    /// backlog, less than 1 means slack.
    pub fn load(&self, apprank: usize) -> f64 {
        let owned = self.owned_cores(apprank);
        if owned == 0 || self.window_secs <= 0.0 {
            return 0.0;
        }
        self.work[apprank] / (self.window_secs * owned as f64)
    }
}

/// A balancing policy: the object form of one [`PolicySpec`]. The
/// simulator consults the hooks at the cadence the spec declares; the
/// default hook bodies reproduce the legacy dispatch, so a policy only
/// overrides what it changes.
pub trait BalancePolicy {
    /// The spec this object was instantiated from.
    fn spec(&self) -> &PolicySpec;

    /// Called at each per-node local tick (when the spec wants them).
    fn on_local_tick(&mut self) -> LocalAction {
        LocalAction::Converge
    }

    /// Called at each global tick (when the spec wants them) with the
    /// freshly measured signal view.
    fn on_global_tick(&mut self, _view: &SignalView<'_>) -> GlobalAction {
        GlobalAction::Solve
    }
}

/// The four paper policies: hooks defer to the defaults, which route
/// into the exact legacy code paths (bitwise identity is pinned by
/// the dispatch-equivalence tests and the smoke benches).
struct LegacyPolicy {
    spec: PolicySpec,
}

impl BalancePolicy for LegacyPolicy {
    fn spec(&self) -> &PolicySpec {
        &self.spec
    }
}

/// Wait-time reactive offloading: per apprank, a hysteresis latch
/// marks it *underloaded* when its observed wait fraction rises above
/// `hi` and clears when it falls back below `lo`. Each global tick,
/// on every node independently, `unit` cores move from each latched
/// process to the co-located process with the highest outstanding
/// load — no solver, one interconnect round to apply.
pub struct ReactiveOffload {
    spec: PolicySpec,
    hi: f64,
    lo: f64,
    unit: usize,
    idle: Vec<bool>,
}

impl ReactiveOffload {
    fn new(spec: PolicySpec) -> ReactiveOffload {
        let hi = spec.param("hi");
        let lo = spec.param("lo");
        let unit = spec.param("unit") as usize;
        ReactiveOffload {
            spec,
            hi,
            lo,
            unit,
            idle: Vec::new(),
        }
    }
}

impl BalancePolicy for ReactiveOffload {
    fn spec(&self) -> &PolicySpec {
        &self.spec
    }

    fn on_global_tick(&mut self, view: &SignalView<'_>) -> GlobalAction {
        let n = view.appranks();
        self.idle.resize(n, false);
        for a in 0..n {
            let wait = view.wait_fraction(a);
            if wait > self.hi {
                self.idle[a] = true;
            } else if wait < self.lo {
                self.idle[a] = false;
            }
        }

        // Apprank of each (node, proc), for scanning nodes in order.
        let procs_on: Vec<Vec<Option<usize>>> = apprank_of(view);
        let mut per_node: Vec<Vec<usize>> = view.ownership.to_vec();
        let mut changed = false;
        for (node, owners) in per_node.iter_mut().enumerate() {
            // Receivers: live, not latched idle, ranked by outstanding
            // load (ties broken by process index for determinism).
            let mut receivers: Vec<(usize, f64)> = procs_on[node]
                .iter()
                .enumerate()
                .filter_map(|(p, a)| a.map(|a| (p, a)))
                .filter(|&(p, a)| view.alive[node][p] && !self.idle[a])
                .map(|(p, a)| (p, view.load(a)))
                .collect();
            receivers.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
            if receivers.is_empty() {
                continue;
            }
            for p in 0..owners.len() {
                let Some(a) = procs_on[node][p] else { continue };
                if !view.alive[node][p] || !self.idle[a] {
                    continue;
                }
                // Donate up to `unit` cores, always keeping one.
                let give = self.unit.min(owners[p].saturating_sub(1));
                if give == 0 {
                    continue;
                }
                let Some(&(to, _)) = receivers.iter().find(|&&(q, _)| q != p) else {
                    continue;
                };
                owners[p] -= give;
                owners[to] += give;
                changed = true;
            }
        }
        if changed {
            GlobalAction::SetOwnership {
                per_node,
                comm_rounds: 1,
            }
        } else {
            GlobalAction::Keep
        }
    }
}

/// First/second-order diffusion of indivisible core units: on each
/// node, every pair of co-located live processes exchanges a flow
/// proportional (`alpha`) to the difference of their appranks' loads,
/// rounded down to whole cores. `order=2` adds a momentum term that
/// carries `beta` of the previous tick's flow, which accelerates
/// convergence on slowly varying imbalance (the second-order scheme
/// of the indivisible-loads paper). One interconnect round per order.
pub struct Diffusion {
    spec: PolicySpec,
    alpha: f64,
    order: usize,
    beta: f64,
    /// Previous signed flow per (node, lower proc, higher proc) edge,
    /// in cores, positive meaning lower-index → higher-index.
    prev_flow: std::collections::HashMap<(usize, usize, usize), f64>,
}

impl Diffusion {
    fn new(spec: PolicySpec) -> Diffusion {
        let alpha = spec.param("alpha");
        let order = spec.param("order") as usize;
        let beta = spec.param("beta");
        Diffusion {
            spec,
            alpha,
            order,
            beta,
            prev_flow: std::collections::HashMap::new(),
        }
    }
}

impl BalancePolicy for Diffusion {
    fn spec(&self) -> &PolicySpec {
        &self.spec
    }

    fn on_global_tick(&mut self, view: &SignalView<'_>) -> GlobalAction {
        let procs_on = apprank_of(view);
        let mut per_node: Vec<Vec<usize>> = view.ownership.to_vec();
        let mut changed = false;
        for (node, owners) in per_node.iter_mut().enumerate() {
            let count = owners.len();
            for p in 0..count {
                for q in (p + 1)..count {
                    let (Some(a), Some(b)) = (procs_on[node][p], procs_on[node][q]) else {
                        continue;
                    };
                    if !view.alive[node][p] || !view.alive[node][q] {
                        continue;
                    }
                    // Raw flow in cores along the p→q edge: the load
                    // difference scaled by the smaller endpoint.
                    let scale = owners[p].min(owners[q]) as f64;
                    let mut flow = self.alpha * (view.load(a) - view.load(b)) * scale;
                    if self.order >= 2 {
                        let prev = self.prev_flow.get(&(node, p, q)).copied().unwrap_or(0.0);
                        flow += self.beta * prev;
                    }
                    self.prev_flow.insert((node, p, q), flow);
                    // Positive flow means p is the more loaded vertex,
                    // so capacity (cores) moves q → p. Indivisible
                    // units: truncate toward zero, then clamp so both
                    // endpoints keep at least one core.
                    let units = flow.trunc() as i64;
                    let units = if units > 0 {
                        units.min(owners[q].saturating_sub(1) as i64)
                    } else {
                        units.max(-(owners[p].saturating_sub(1) as i64))
                    };
                    if units == 0 {
                        continue;
                    }
                    if units > 0 {
                        owners[q] -= units as usize;
                        owners[p] += units as usize;
                    } else {
                        owners[p] -= (-units) as usize;
                        owners[q] += (-units) as usize;
                    }
                    changed = true;
                }
            }
        }
        if changed {
            GlobalAction::SetOwnership {
                per_node,
                comm_rounds: self.order,
            }
        } else {
            GlobalAction::Keep
        }
    }
}

/// Per-node table mapping each process slot to its apprank (or `None`
/// for slots no apprank occupies), derived from the placement view.
fn apprank_of(view: &SignalView<'_>) -> Vec<Vec<Option<usize>>> {
    let mut table: Vec<Vec<Option<usize>>> = view
        .ownership
        .iter()
        .map(|row| vec![None; row.len()])
        .collect();
    for (a, places) in view.placement.iter().enumerate() {
        for &(node, proc) in places {
            if proc < table[node].len() {
                table[node][proc] = Some(a);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_policy_round_trips_bare() {
        for def in POLICY_REGISTRY {
            let spec = PolicySpec::named(def.name).unwrap();
            assert_eq!(spec.canonical(), def.name, "defaults render bare");
            let back = PolicySpec::parse(&spec.canonical()).unwrap();
            assert_eq!(back, spec, "parse(render(p)) == p for '{}'", def.name);
        }
    }

    #[test]
    fn parameterized_forms_round_trip() {
        for text in [
            "reactive-offload(hi=0.4)",
            "reactive-offload(hi=0.5,lo=0.2,unit=2)",
            "diffusion(alpha=0.25)",
            "diffusion(order=2,beta=0.75)",
            "diffusion(alpha=0.125,order=2)",
        ] {
            let spec = PolicySpec::parse(text).unwrap();
            let back = PolicySpec::parse(&spec.canonical()).unwrap();
            assert_eq!(back, spec, "round trip of '{text}'");
        }
    }

    #[test]
    fn canonical_is_spelling_independent() {
        let a = PolicySpec::parse("reactive-offload( lo = 0.05 , hi = 0.5 )").unwrap();
        let b = PolicySpec::parse("reactive-offload(hi=0.5,lo=0.05)").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical(), b.canonical());
        // Defaults spelled explicitly collapse back to the bare name.
        let c = PolicySpec::parse("diffusion(alpha=0.5,order=1,beta=0.5)").unwrap();
        assert_eq!(c.canonical(), "diffusion");
        assert_eq!(c, PolicySpec::named("diffusion").unwrap());
    }

    #[test]
    fn unknown_policy_lists_known_names() {
        let err = PolicySpec::parse("gossip").unwrap_err();
        for def in POLICY_REGISTRY {
            assert!(
                err.0.contains(def.name),
                "error should list '{}': {}",
                def.name,
                err.0
            );
        }
    }

    #[test]
    fn unknown_param_lists_known_params() {
        let err = PolicySpec::parse("diffusion(gamma=1)").unwrap_err();
        assert!(err.0.contains("alpha") && err.0.contains("order") && err.0.contains("beta"));
        let err = PolicySpec::parse("baseline(x=1)").unwrap_err();
        assert!(err.0.contains("takes no parameters"), "{}", err.0);
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(PolicySpec::parse("reactive-offload(hi=1.5)").is_err());
        assert!(PolicySpec::parse("reactive-offload(hi=0.1,lo=0.2)").is_err());
        assert!(PolicySpec::parse("reactive-offload(unit=0.5)").is_err());
        assert!(PolicySpec::parse("diffusion(order=3)").is_err());
        assert!(PolicySpec::parse("diffusion(alpha=0)").is_err());
        assert!(PolicySpec::parse("diffusion(alpha=nan)").is_err());
        assert!(PolicySpec::parse("diffusion(alpha=").is_err());
        assert!(PolicySpec::parse("diffusion(alpha)").is_err());
    }

    #[test]
    fn legacy_mapping_matches_mechanism() {
        let spec = PolicySpec::named("lewi+drom-global").unwrap();
        assert!(spec.lewi() && spec.uses_solver() && spec.wants_global_tick());
        assert_eq!(spec.drom(), DromPolicy::Global);
        let spec = PolicySpec::named("lewi+drom-local").unwrap();
        assert!(spec.wants_local_tick() && !spec.wants_global_tick());
        let spec = PolicySpec::named("baseline").unwrap();
        assert!(!spec.lewi() && !spec.wants_local_tick() && !spec.wants_global_tick());
        assert_eq!(
            legacy_policy(true, DromPolicy::Global).spec().name(),
            "lewi+drom-global"
        );
        assert_eq!(
            legacy_policy(false, DromPolicy::Off).spec().name(),
            "baseline"
        );
        assert_eq!(legacy_policy(true, DromPolicy::Off).spec().name(), "lewi");
    }

    fn view_fixture<'a>(
        work: &'a [f64],
        busy: &'a [Vec<f64>],
        placement: &'a [Vec<(usize, usize)>],
        ownership: &'a [Vec<usize>],
        alive: &'a [Vec<bool>],
    ) -> SignalView<'a> {
        SignalView {
            window_secs: 2.0,
            cores_per_node: 8,
            node_speed: &[1.0],
            work,
            busy,
            placement,
            ownership,
            alive,
        }
    }

    #[test]
    fn reactive_offload_moves_cores_to_busy_rank() {
        // Two appranks on one node: rank 0 nearly idle (latches), rank
        // 1 saturated with backlog.
        let work = [0.5, 40.0];
        let busy = [vec![0.5, 8.0]];
        let placement = [vec![(0, 0)], vec![(0, 1)]];
        let ownership = [vec![4, 4]];
        let alive = [vec![true, true]];
        let view = view_fixture(&work, &busy, &placement, &ownership, &alive);
        let mut pol = ReactiveOffload::new(PolicySpec::parse("reactive-offload(unit=2)").unwrap());
        match pol.on_global_tick(&view) {
            GlobalAction::SetOwnership {
                per_node,
                comm_rounds,
            } => {
                assert_eq!(per_node, vec![vec![2, 6]]);
                assert_eq!(comm_rounds, 1);
            }
            other => panic!("expected SetOwnership, got {other:?}"),
        }
        // Balanced view: nothing moves.
        let busy = [vec![7.9, 7.9]];
        let work = [8.0, 8.0];
        let view = view_fixture(&work, &busy, &placement, &ownership, &alive);
        assert_eq!(pol.on_global_tick(&view), GlobalAction::Keep);
    }

    #[test]
    fn reactive_offload_never_strands_a_rank() {
        let work = [0.0, 40.0];
        let busy = [vec![0.0, 8.0]];
        let placement = [vec![(0, 0)], vec![(0, 1)]];
        let ownership = [vec![1, 7]];
        let alive = [vec![true, true]];
        let view = view_fixture(&work, &busy, &placement, &ownership, &alive);
        let mut pol = ReactiveOffload::new(PolicySpec::parse("reactive-offload(unit=4)").unwrap());
        // Donor has one core: keeps it.
        assert_eq!(pol.on_global_tick(&view), GlobalAction::Keep);
    }

    #[test]
    fn diffusion_flows_from_loaded_to_idle() {
        // Rank 0 heavily backlogged, rank 1 idle: flow goes 0 → 1.
        let work = [64.0, 0.0];
        let busy = [vec![8.0, 0.0]];
        let placement = [vec![(0, 0)], vec![(0, 1)]];
        let ownership = [vec![4, 4]];
        let alive = [vec![true, true]];
        let view = view_fixture(&work, &busy, &placement, &ownership, &alive);
        let mut pol = Diffusion::new(PolicySpec::parse("diffusion").unwrap());
        match pol.on_global_tick(&view) {
            GlobalAction::SetOwnership {
                per_node,
                comm_rounds,
            } => {
                assert_eq!(comm_rounds, 1);
                let row = &per_node[0];
                assert!(row[0] > 4 && row[1] < 4, "flow toward backlog: {row:?}");
                assert_eq!(row[0] + row[1], 8, "cores conserved");
                assert!(row[1] >= 1, "no stranded rank");
            }
            other => panic!("expected SetOwnership, got {other:?}"),
        }
    }

    #[test]
    fn diffusion_second_order_carries_momentum() {
        let work = [64.0, 0.0];
        let busy = [vec![8.0, 0.0]];
        let placement = [vec![(0, 0)], vec![(0, 1)]];
        let ownership = [vec![4, 4]];
        let alive = [vec![true, true]];
        let view = view_fixture(&work, &busy, &placement, &ownership, &alive);
        let mut first = Diffusion::new(PolicySpec::parse("diffusion").unwrap());
        let mut second = Diffusion::new(PolicySpec::parse("diffusion(order=2,beta=0.9)").unwrap());
        let _ = first.on_global_tick(&view);
        let _ = second.on_global_tick(&view);
        // After one tick the momentum term kicks in: the second-order
        // flow on the same view is at least the first-order flow.
        let f1 = match first.on_global_tick(&view) {
            GlobalAction::SetOwnership { per_node, .. } => per_node[0][0] as i64 - 4,
            GlobalAction::Keep => 0,
            other => panic!("unexpected {other:?}"),
        };
        let f2 = match second.on_global_tick(&view) {
            GlobalAction::SetOwnership {
                per_node,
                comm_rounds,
            } => {
                assert_eq!(comm_rounds, 2);
                per_node[0][0] as i64 - 4
            }
            GlobalAction::Keep => 0,
            other => panic!("unexpected {other:?}"),
        };
        assert!(f2 >= f1, "momentum should not shrink the flow: {f2} < {f1}");
    }

    #[test]
    fn policies_skip_retired_processes() {
        let work = [0.0, 40.0];
        let busy = [vec![0.0, 8.0]];
        let placement = [vec![(0, 0)], vec![(0, 1)]];
        let ownership = [vec![4, 4]];
        let alive = [vec![false, true]];
        let view = view_fixture(&work, &busy, &placement, &ownership, &alive);
        let mut reactive = ReactiveOffload::new(PolicySpec::named("reactive-offload").unwrap());
        assert_eq!(reactive.on_global_tick(&view), GlobalAction::Keep);
        let mut diff = Diffusion::new(PolicySpec::named("diffusion").unwrap());
        assert_eq!(diff.on_global_tick(&view), GlobalAction::Keep);
    }
}
