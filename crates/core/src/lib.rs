//! The paper's primary contribution: transparent load balancing of MPI
//! programs by combining OmpSs-2@Cluster task offloading with DLB.
//!
//! This crate holds the *decision logic* — everything that is independent
//! of whether tasks run in virtual time (`tlb-cluster`) or on real threads
//! (`tlb-smprt`):
//!
//! * [`ProcessLayout`] — how appranks and helper ranks map onto nodes,
//!   derived from the expander graph (paper Fig. 2 / Fig. 4), including
//!   the initial DROM core ownership (helpers own one core; appranks
//!   split the rest, §5.4).
//! * [`choose_node`] — the offload scheduler rule (§5.5): locality-best
//!   node if it holds fewer than two tasks per *owned* core, else another
//!   adjacent node under the threshold, else hold the task for stealing.
//! * [`LocalPolicy`] — the local-convergence DROM policy (§5.4.1):
//!   per-node core ownership proportional to each worker's average busy
//!   cores.
//! * [`GlobalPolicy`] — the global solver policy (§5.4.2): the min-max
//!   linear program over the whole expander graph, solved every two
//!   seconds via `tlb-linprog` (simplex or parametric max-flow).
//! * [`imbalance`] and friends — the paper's dimensionless imbalance
//!   metric (Eq. 2) and the perfect-balance execution-time bound used for
//!   the "perfect" reference lines in Figs. 6–8.
//! * [`BalanceConfig`] / [`Platform`] — experiment configuration,
//!   including presets for the paper's two machines (MareNostrum 4 and
//!   Nord3).
//! * [`PolicySpec`] / [`BalancePolicy`] — the open policy API: a
//!   deterministic registry of named, parameterized balancing policies
//!   (the paper's four plus `reactive-offload` and `diffusion`) parsed
//!   from one `name(k=v,...)` string form everywhere.

mod balance;
mod config;
mod layout;
mod metrics;
mod policy;
mod sched;

/// Deterministic randomness for every layer of the workspace: SplitMix64
/// seeding, Xoshiro256++ streams, and `split(label)` substream derivation
/// (see the `tlb-rng` crate docs for the reproducibility guarantees).
pub use tlb_rng as rng;

/// The racing solver portfolio behind `BalanceConfig::portfolio` (see the
/// `tlb-portfolio` crate docs for the determinism guarantees).
pub use tlb_portfolio as portfolio;
pub use tlb_portfolio::{PortfolioConfig, PortfolioEngine, PortfolioStats, Strategy};

pub use balance::{
    known_policy_names, legacy_policy, BalancePolicy, Diffusion, GlobalAction, LocalAction,
    ParamDef, ParamKind, PolicyDef, PolicyError, PolicySpec, ReactiveOffload, SignalView,
    POLICY_REGISTRY,
};
pub use config::{
    BalanceConfig, DromPolicy, DynamicSpreading, GlobalSolverKind, Platform, Preset, SpeedEvent,
    StealGate, WorkSignal,
};
pub use layout::{ProcessLayout, WorkerRef};
pub use metrics::{imbalance, node_imbalance, perfect_time, Loads};
pub use policy::{GlobalPolicy, LocalPolicy};
pub use sched::{
    choose_node, choose_node_explained, CandidateState, ChoiceReason, Placement,
    QUEUE_DEPTH_PER_CORE,
};
