//! The two DROM core-allocation policies (paper §5.4).

#![allow(clippy::needless_range_loop)] // index loops touch several arrays at once
use crate::{GlobalSolverKind, Platform, ProcessLayout};
use tlb_expander::BipartiteGraph;
use tlb_linprog::{solve_flow, solve_lp, AllocationProblem, AllocationSolution, LpError};

/// The local convergence policy (§5.4.1): on each node, independently,
/// set every worker's core ownership proportional to its average number
/// of busy cores over the last measurement window, with the DLB minimum
/// of one core each. No communication beyond the node.
pub struct LocalPolicy;

impl LocalPolicy {
    /// Compute new ownership counts for one node.
    ///
    /// `busy[i]` is worker `i`'s average busy cores; `current[i]` its
    /// present ownership (returned unchanged when no work was measured,
    /// so an idle node does not thrash). The result sums to `cores` and
    /// every entry is ≥ 1.
    pub fn ownership(cores: usize, busy: &[f64], current: &[usize]) -> Vec<usize> {
        assert_eq!(busy.len(), current.len(), "busy/current length mismatch");
        let workers = busy.len();
        assert!(workers > 0 && cores >= workers, "infeasible node shape");
        let total: f64 = busy.iter().sum();
        if total <= 1e-12 {
            return current.to_vec();
        }
        // One guaranteed core each; the rest proportional to busy share by
        // largest remainder (deterministic tie-break on index).
        let spare = cores - workers;
        let mut counts = vec![1usize; workers];
        let mut assigned = 0usize;
        let mut rema: Vec<(f64, usize)> = Vec::with_capacity(workers);
        for (i, &b) in busy.iter().enumerate() {
            let share = b / total * spare as f64;
            let whole = share.floor() as usize;
            counts[i] += whole;
            assigned += whole;
            rema.push((share - whole as f64, i));
        }
        rema.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for &(_, i) in rema.iter().take(spare - assigned) {
            counts[i] += 1;
        }
        debug_assert_eq!(counts.iter().sum::<usize>(), cores);
        counts
    }
}

/// The global solver policy (§5.4.2): every period, gather each apprank's
/// total measured work and solve the min-max allocation program over the
/// entire expander graph.
pub struct GlobalPolicy {
    problem: AllocationProblem,
    /// `dead[a][k]`: the worker at slot `k` of apprank `a` has died.
    /// Dead slots are excluded from every solve and pinned to zero cores,
    /// so their node's capacity redistributes among the survivors. The
    /// slots stay in the adjacency to keep `(apprank, slot)` indices
    /// aligned with [`ProcessLayout`].
    dead: Vec<Vec<bool>>,
}

impl GlobalPolicy {
    /// Build the policy for a given expander graph and platform.
    pub fn new(graph: &BipartiteGraph, platform: &Platform) -> Self {
        let adjacency: Vec<Vec<usize>> = (0..graph.appranks())
            .map(|a| graph.nodes_of(a).to_vec())
            .collect();
        let dead = adjacency.iter().map(|adj| vec![false; adj.len()]).collect();
        GlobalPolicy {
            problem: AllocationProblem {
                work: vec![0.0; graph.appranks()],
                adjacency,
                node_cores: vec![platform.cores_per_node; platform.nodes],
                node_speed: platform.node_speed.clone(),
                keep_local_incentive: 1e-6,
            },
            dead,
        }
    }

    /// Mark the worker at `slot` of `apprank` dead. Home workers
    /// (slot 0) cannot die — the apprank itself would be gone.
    pub fn retire_worker(&mut self, apprank: usize, slot: usize) {
        assert!(slot != 0, "home worker cannot be retired");
        self.dead[apprank][slot] = true;
    }

    fn has_dead(&self) -> bool {
        self.dead.iter().any(|row| row.iter().any(|&d| d))
    }

    /// Solve for ownership given per-apprank work estimates (busy
    /// core·seconds summed over the apprank's workers).
    pub fn allocate(
        &mut self,
        work: &[f64],
        kind: GlobalSolverKind,
    ) -> Result<AllocationSolution, LpError> {
        // A single solver is a portfolio of size 1: the same entry point
        // serves both paths, so dead-worker masking behaves identically.
        self.allocate_with(work, |problem| match kind {
            GlobalSolverKind::Simplex => solve_lp(problem),
            GlobalSolverKind::Flow => solve_flow(problem, 1e-6),
        })
    }

    /// Solve for ownership with a caller-supplied solver (the portfolio
    /// engine, or anything else mapping an [`AllocationProblem`] to an
    /// [`AllocationSolution`]). Handles the dead-worker masking exactly
    /// like [`GlobalPolicy::allocate`]: the solver only ever sees living
    /// workers, and the returned solution is re-expanded with zeros at
    /// dead slots so `(apprank, slot)` indices stay layout-aligned.
    pub fn allocate_with<F>(
        &mut self,
        work: &[f64],
        solve: F,
    ) -> Result<AllocationSolution, LpError>
    where
        F: FnOnce(&AllocationProblem) -> Result<AllocationSolution, LpError>,
    {
        assert_eq!(work.len(), self.problem.work.len(), "work vector length");
        self.problem.work.copy_from_slice(work);
        if !self.has_dead() {
            return solve(&self.problem);
        }
        // Solve over the living workers only, then re-expand the solution
        // with zeros at dead slots so indices stay layout-aligned.
        let sub = AllocationProblem {
            work: work.to_vec(),
            adjacency: self
                .problem
                .adjacency
                .iter()
                .zip(&self.dead)
                .map(|(adj, dead)| {
                    adj.iter()
                        .zip(dead)
                        .filter(|&(_, &d)| !d)
                        .map(|(&n, _)| n)
                        .collect()
                })
                .collect(),
            node_cores: self.problem.node_cores.clone(),
            node_speed: self.problem.node_speed.clone(),
            keep_local_incentive: self.problem.keep_local_incentive,
        };
        let sol = solve(&sub)?;
        let mut work_share = Vec::with_capacity(self.dead.len());
        let mut cores = Vec::with_capacity(self.dead.len());
        for (a, dead) in self.dead.iter().enumerate() {
            let mut ws = vec![0.0; dead.len()];
            let mut cs = vec![0usize; dead.len()];
            let mut j = 0;
            for (k, &d) in dead.iter().enumerate() {
                if !d {
                    ws[k] = sol.work_share[a][j];
                    cs[k] = sol.cores[a][j];
                    j += 1;
                }
            }
            work_share.push(ws);
            cores.push(cs);
        }
        Ok(AllocationSolution {
            objective: sol.objective,
            work_share,
            cores,
            iterations: sol.iterations,
        })
    }

    /// Re-arrange a solution's per-(apprank, slot) core counts into
    /// per-node ownership vectors aligned with
    /// [`ProcessLayout::workers_on`], ready for `NodeDlb::set_ownership`.
    pub fn ownership_by_node(
        &self,
        layout: &ProcessLayout,
        solution: &AllocationSolution,
    ) -> Vec<Vec<usize>> {
        let mut per_node: Vec<Vec<usize>> = (0..layout.nodes())
            .map(|n| vec![0usize; layout.workers_on(n).len()])
            .collect();
        for (a, row) in solution.cores.iter().enumerate() {
            for (k, &c) in row.iter().enumerate() {
                let node = self.problem.adjacency[a][k];
                let proc = layout.proc_of(a, k);
                per_node[node][proc] = c;
            }
        }
        per_node
    }

    /// The underlying problem (for benches that measure solver scaling).
    pub fn problem(&self) -> &AllocationProblem {
        &self.problem
    }

    /// Update one node's speed (DVFS event); subsequent solves use it.
    pub fn set_node_speed(&mut self, node: usize, speed: f64) {
        assert!(speed > 0.0, "speed must be positive");
        self.problem.node_speed[node] = speed;
    }

    /// Register a dynamically spawned helper edge: apprank `a` may now
    /// own cores on `node` (paper §5.2 future work).
    pub fn add_edge(&mut self, apprank: usize, node: usize) {
        assert!(node < self.problem.nodes(), "node out of range");
        assert!(
            !self.problem.adjacency[apprank].contains(&node),
            "edge already present"
        );
        self.problem.adjacency[apprank].push(node);
        self.dead[apprank].push(false);
    }

    /// Continuous per-node loads implied by a solution's work split.
    pub fn node_loads(&self, solution: &AllocationSolution) -> Vec<f64> {
        solution.node_load(&self.problem)
    }

    /// Partitioned solve for large machines (paper §5.4.2: "larger graphs
    /// than 32 nodes should be partitioned and solved in parts on
    /// multiple nodes"). Nodes are split into contiguous groups of at
    /// most `group_nodes`; each group is solved independently over the
    /// appranks homed inside it, with helper edges leaving the group
    /// dropped (the group keeps its own capacity). Groups mix heavily and
    /// lightly loaded nodes with high probability under the random
    /// expander placement, so most of the balance is recovered at a
    /// fraction of the solve cost.
    pub fn allocate_partitioned(
        &mut self,
        work: &[f64],
        kind: GlobalSolverKind,
        group_nodes: usize,
    ) -> Result<AllocationSolution, LpError> {
        assert_eq!(work.len(), self.problem.work.len(), "work vector length");
        assert!(group_nodes >= 1, "groups need at least one node");
        let nodes = self.problem.nodes();
        if nodes <= group_nodes {
            return self.allocate(work, kind);
        }
        let appranks = self.problem.work.len();
        let mut combined = AllocationSolution {
            objective: 0.0,
            work_share: self
                .problem
                .adjacency
                .iter()
                .map(|adj| vec![0.0; adj.len()])
                .collect(),
            cores: self
                .problem
                .adjacency
                .iter()
                .map(|adj| vec![1usize; adj.len()])
                .collect(),
            iterations: 0,
        };
        let mut group_start = 0;
        while group_start < nodes {
            let group_end = (group_start + group_nodes).min(nodes);
            let in_group = |n: usize| n >= group_start && n < group_end;
            // Appranks homed in this group, with adjacency clipped to it.
            let mut sub_work = Vec::new();
            let mut sub_adj = Vec::new();
            let mut owners = Vec::new(); // (apprank, slots kept)
            for a in 0..appranks {
                let adj = &self.problem.adjacency[a];
                if !in_group(adj[0]) {
                    continue;
                }
                let slots: Vec<usize> = (0..adj.len()).filter(|&k| in_group(adj[k])).collect();
                sub_work.push(work[a]);
                sub_adj.push(slots.iter().map(|&k| adj[k] - group_start).collect());
                owners.push((a, slots));
            }
            let sub = AllocationProblem {
                work: sub_work,
                adjacency: sub_adj,
                node_cores: self.problem.node_cores[group_start..group_end].to_vec(),
                node_speed: self.problem.node_speed[group_start..group_end].to_vec(),
                keep_local_incentive: self.problem.keep_local_incentive,
            };
            // Helper edges *into* the group from outside appranks keep
            // their floor core; subtract them from the group capacity.
            let mut sub = sub;
            for a in 0..appranks {
                let adj = &self.problem.adjacency[a];
                if in_group(adj[0]) {
                    continue;
                }
                for (k, &n) in adj.iter().enumerate() {
                    if k > 0 && in_group(n) {
                        sub.node_cores[n - group_start] =
                            sub.node_cores[n - group_start].saturating_sub(1);
                    }
                }
            }
            let sol = match kind {
                GlobalSolverKind::Simplex => solve_lp(&sub)?,
                GlobalSolverKind::Flow => solve_flow(&sub, 1e-6)?,
            };
            combined.objective = combined.objective.max(sol.objective);
            combined.iterations += sol.iterations;
            for (i, (a, slots)) in owners.iter().enumerate() {
                for (j, &k) in slots.iter().enumerate() {
                    combined.work_share[*a][k] = sol.work_share[i][j];
                    combined.cores[*a][k] = sol.cores[i][j];
                }
            }
            group_start = group_end;
        }
        Ok(combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_expander::{generate_circulant, ExpanderConfig};

    #[test]
    fn local_proportional_split() {
        // 8 cores, two workers, busy 3:1 → 6 and 2? One guaranteed each,
        // 6 spare split 4.5/1.5 → 4+1=5? largest remainder: 4.5 → 4, 1.5
        // → 1, one leftover goes to the larger remainder (0.5 each, tie →
        // lower index): [1+5, 1+1] = [6, 2].
        let counts = LocalPolicy::ownership(8, &[3.0, 1.0], &[4, 4]);
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert_eq!(counts, vec![6, 2]);
    }

    #[test]
    fn local_keeps_minimum_one() {
        let counts = LocalPolicy::ownership(4, &[10.0, 0.0, 0.0], &[2, 1, 1]);
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn local_idle_node_keeps_current() {
        let counts = LocalPolicy::ownership(8, &[0.0, 0.0], &[5, 3]);
        assert_eq!(counts, vec![5, 3]);
    }

    #[test]
    fn local_converges_under_iteration() {
        // Iterating the policy on a fixed busy profile is a fixed point
        // after the first application.
        let busy = [7.0, 2.0, 1.0];
        let first = LocalPolicy::ownership(16, &busy, &[6, 5, 5]);
        let second = LocalPolicy::ownership(16, &busy, &first);
        assert_eq!(first, second);
        assert_eq!(first.iter().sum::<usize>(), 16);
    }

    #[test]
    fn global_policy_end_to_end() {
        let g = generate_circulant(&ExpanderConfig::new(4, 4, 2), &[1]).unwrap();
        let platform = Platform::homogeneous(4, 8);
        let layout = ProcessLayout::new(&g, 8);
        let mut policy = GlobalPolicy::new(&g, &platform);
        let sol = policy
            .allocate(&[30.0, 2.0, 2.0, 2.0], GlobalSolverKind::Simplex)
            .unwrap();
        let per_node = policy.ownership_by_node(&layout, &sol);
        // Every node fully owned, every worker ≥ 1 core.
        for (n, counts) in per_node.iter().enumerate() {
            assert_eq!(counts.iter().sum::<usize>(), 8, "node {n}");
            assert!(counts.iter().all(|&c| c >= 1));
        }
        // Apprank 0 is hot: its helper worker on node 1 should own most of
        // node 1 (slot 1 of apprank 0).
        let helper_node = g.nodes_of(0)[1];
        let helper_proc = layout.proc_of(0, 1);
        assert!(
            per_node[helper_node][helper_proc] >= 4,
            "hot helper owns {} cores",
            per_node[helper_node][helper_proc]
        );
    }

    #[test]
    fn dead_worker_excluded_and_cores_redistributed() {
        let g = generate_circulant(&ExpanderConfig::new(4, 4, 2), &[1]).unwrap();
        let platform = Platform::homogeneous(4, 8);
        let layout = ProcessLayout::new(&g, 8);
        let mut policy = GlobalPolicy::new(&g, &platform);
        let work = [30.0, 2.0, 2.0, 2.0];
        policy.retire_worker(0, 1); // kill apprank 0's (hot) helper
        for kind in [GlobalSolverKind::Simplex, GlobalSolverKind::Flow] {
            let sol = policy.allocate(&work, kind).unwrap();
            assert_eq!(sol.cores[0][1], 0, "dead slot pinned to zero");
            assert_eq!(sol.work_share[0][1], 0.0);
            let per_node = policy.ownership_by_node(&layout, &sol);
            for (n, counts) in per_node.iter().enumerate() {
                assert_eq!(counts.iter().sum::<usize>(), 8, "node {n}: {counts:?}");
            }
            // The dead helper's proc owns nothing; every survivor ≥ 1.
            let dead_node = g.nodes_of(0)[1];
            let dead_proc = layout.proc_of(0, 1);
            assert_eq!(per_node[dead_node][dead_proc], 0);
            for (n, counts) in per_node.iter().enumerate() {
                for (p, &c) in counts.iter().enumerate() {
                    if (n, p) != (dead_node, dead_proc) {
                        assert!(c >= 1, "living worker node {n} proc {p} starved");
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_solve_matches_shape_and_conserves_cores() {
        use tlb_expander::ExpanderConfig;
        // 16 nodes split into groups of 8.
        let cfg = ExpanderConfig::new(16, 16, 3).with_seed(4);
        let g = BipartiteGraph::generate(&cfg).unwrap();
        let platform = Platform::homogeneous(16, 8);
        let layout = ProcessLayout::new(&g, 8);
        let mut policy = GlobalPolicy::new(&g, &platform);
        let work: Vec<f64> = (0..16).map(|a| 1.0 + (a as f64 * 3.3) % 11.0).collect();
        let full = policy.allocate(&work, GlobalSolverKind::Simplex).unwrap();
        let part = policy
            .allocate_partitioned(&work, GlobalSolverKind::Simplex, 8)
            .unwrap();
        // Partitioned ownership is a valid DROM state on every node.
        let per_node = policy.ownership_by_node(&layout, &part);
        for (n, counts) in per_node.iter().enumerate() {
            assert_eq!(counts.iter().sum::<usize>(), 8, "node {n}: {counts:?}");
            assert!(counts.iter().all(|&c| c >= 1));
        }
        // Partitioning can only do worse (or equal) than the full solve,
        // but not absurdly so on a random expander.
        assert!(part.objective >= full.objective - 1e-9);
        assert!(
            part.objective <= full.objective * 2.5,
            "partitioned {} vs full {}",
            part.objective,
            full.objective
        );
    }

    #[test]
    fn partitioned_solve_degenerates_to_full() {
        let g = generate_circulant(&ExpanderConfig::new(4, 4, 2), &[1]).unwrap();
        let platform = Platform::homogeneous(4, 8);
        let mut policy = GlobalPolicy::new(&g, &platform);
        let work = [10.0, 4.0, 2.0, 8.0];
        let full = policy.allocate(&work, GlobalSolverKind::Simplex).unwrap();
        let part = policy
            .allocate_partitioned(&work, GlobalSolverKind::Simplex, 32)
            .unwrap();
        assert!((full.objective - part.objective).abs() < 1e-9);
    }

    #[test]
    fn global_flow_matches_simplex_shape() {
        let g = generate_circulant(&ExpanderConfig::new(4, 4, 3), &[1, 2]).unwrap();
        let platform = Platform::homogeneous(4, 8);
        let mut policy = GlobalPolicy::new(&g, &platform);
        let work = [20.0, 5.0, 5.0, 10.0];
        let a = policy.allocate(&work, GlobalSolverKind::Simplex).unwrap();
        let b = policy.allocate(&work, GlobalSolverKind::Flow).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-3 * a.objective);
    }
}
