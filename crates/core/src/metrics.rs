//! Imbalance metrics (paper §6.1) and ideal-time bounds.

use crate::Platform;

/// A collection of per-entity loads (per apprank or per node).
pub type Loads = [f64];

/// The paper's imbalance metric (Eq. 2): `max(load) / mean(load) ≥ 1`.
///
/// 1.0 is perfect balance; the maximum possible value is the number of
/// entities (all load on one). Returns 1.0 for empty or all-zero loads
/// (nothing to balance).
pub fn imbalance(loads: &Loads) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let max = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    (max / mean).max(1.0)
}

/// Node-level imbalance over busy-core averages (Fig. 11's y-axis):
/// `max(node busy) / mean(node busy)`.
pub fn node_imbalance(node_busy: &Loads) -> f64 {
    imbalance(node_busy)
}

/// Lower bound on execution time with perfect load balancing: the larger
/// of `total work / effective machine capacity` and the critical path.
/// This is the paper's grey "perfect" reference line.
///
/// `total_work` is in core·seconds at nominal speed; `critical_path` in
/// seconds.
pub fn perfect_time(total_work: f64, critical_path: f64, platform: &Platform) -> f64 {
    let capacity = platform.effective_capacity();
    if capacity <= 0.0 {
        return f64::INFINITY;
    }
    (total_work / capacity).max(critical_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_is_one() {
        assert_eq!(imbalance(&[3.0, 3.0, 3.0]), 1.0);
    }

    #[test]
    fn all_on_one_is_n() {
        assert!((imbalance(&[8.0, 0.0, 0.0, 0.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example_two() {
        // Imbalance 2.0: critical path twice the perfectly balanced one.
        assert!((imbalance(&[4.0, 1.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn perfect_time_capacity_bound() {
        let p = Platform::homogeneous(2, 4); // 8 effective cores
        assert!((perfect_time(80.0, 1.0, &p) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_time_critical_path_bound() {
        let p = Platform::homogeneous(2, 4);
        assert!((perfect_time(8.0, 5.0, &p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_time_respects_slow_nodes() {
        let p = Platform::homogeneous(2, 4).with_slowdown(1, 2.0);
        // Effective capacity 4 + 2 = 6.
        assert!((perfect_time(60.0, 0.0, &p) - 10.0).abs() < 1e-12);
    }
}
