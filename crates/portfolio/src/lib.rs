//! `tlb-portfolio`: a deterministic racing solver portfolio for the DROM
//! global allocation policy (paper §5.4.2).
//!
//! The paper solves one LP every `global_period`; this repository carries
//! several independent ways to compute a core allocation (simplex LP,
//! parametric max-flow, a per-node local-convergence rule) plus a greedy
//! water-filling heuristic added here. No single strategy dominates across
//! workloads, so the portfolio races a configurable subset on every global
//! tick under a shared *virtual-time* budget, scores each feasible answer
//! with one objective, and keeps the best.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** The race may execute on the `tlb-smprt` pool, but
//!    every strategy is a pure function of the [`AllocationProblem`] and
//!    results land in pre-assigned slots. The winner is selected *after*
//!    the race by `(score, fixed strategy priority)` — never by wall-clock
//!    arrival order — so a run is bitwise-identical across 1/2/4/8 pool
//!    threads.
//! 2. **Shared objective.** Every candidate is scored with
//!    `max_a work_a / (speed-weighted cores of a)` minus the paper's
//!    `1e-6` non-offloaded-core incentive as tiebreak ([`score`]). Lower
//!    is better; the LP's own objective is *not* trusted across strategies
//!    because each solver reports a different relaxation.
//! 3. **Budgeted.** Each strategy has a deterministic modelled cost in
//!    virtual seconds ([`modelled_cost`]); a candidate whose cost exceeds
//!    the budget counts as a timeout and is discarded. The race as a whole
//!    costs `max_s min(cost_s, budget)` — concurrent-race semantics.
//! 4. **Degradable.** Fault injection can disable individual strategies
//!    (solver-outage windows); the portfolio keeps racing whatever is
//!    left, and only when *nothing* is runnable does the caller fall back
//!    to the PR 3 degradation ladder.
//!
//! The optional `adaptive` mode is a tiny deterministic bandit: a strategy
//! that loses `demote_after` races in a row stops being raced, except on
//! every `probe_every`-th solve where demoted strategies get a probe run
//! and are reinstated if they win.

use std::sync::OnceLock;
use tlb_des::SimTime;
use tlb_linprog::{solve_flow, solve_lp, AllocationProblem, AllocationSolution, LpError};
use tlb_smprt::Pool;

/// Bisection tolerance handed to the parametric max-flow solver — the
/// same value `GlobalPolicy` uses for its single-solver path.
pub const FLOW_TOL: f64 = 1e-6;

/// Virtual seconds charged per modelled elementary solver operation.
/// Calibrated so a 64-node simplex solve lands in the tens of
/// milliseconds, matching the §5.4.2 cost table (~57 ms at 32 nodes).
pub const COST_PER_OP: f64 = 150e-9;

/// One allocation strategy. Declaration order is the fixed portfolio
/// priority: earlier variants win score ties.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// The paper's LP solved by two-phase simplex (`solve_lp`).
    Simplex,
    /// Parametric bisection over max-flow feasibility tests (`solve_flow`).
    Flow,
    /// Greedy water-filling: grant spare cores one at a time to the
    /// currently most-loaded apprank (new in this crate).
    Greedy,
    /// Local convergence: keep all work home, split each node's cores
    /// among its home appranks proportional to work (the PR 3 fallback
    /// expressed as a first-class strategy).
    Local,
}

impl Strategy {
    /// All strategies, in priority order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Simplex,
        Strategy::Flow,
        Strategy::Greedy,
        Strategy::Local,
    ];

    /// Number of strategies.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable numeric code (the priority index), used in trace events.
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Inverse of [`Strategy::code`].
    pub fn from_code(code: u32) -> Option<Strategy> {
        Self::ALL.get(code as usize).copied()
    }

    /// Lower-case name used by `--portfolio` and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Simplex => "simplex",
            Strategy::Flow => "flow",
            Strategy::Greedy => "greedy",
            Strategy::Local => "local",
        }
    }

    /// Parse a strategy name as accepted by `--portfolio`.
    pub fn parse(s: &str) -> Result<Strategy, String> {
        match s {
            "simplex" => Ok(Strategy::Simplex),
            "flow" => Ok(Strategy::Flow),
            "greedy" => Ok(Strategy::Greedy),
            "local" => Ok(Strategy::Local),
            other => Err(format!(
                "unknown strategy '{other}' (expected simplex, flow, greedy or local)"
            )),
        }
    }
}

/// Portfolio configuration, carried inside `BalanceConfig`.
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioConfig {
    /// Strategies to race, kept sorted in priority order, no duplicates.
    pub strategies: Vec<Strategy>,
    /// Virtual-time budget per race; a strategy whose modelled cost
    /// exceeds it counts as a timeout and its answer is discarded.
    pub budget: SimTime,
    /// Enable the bandit-style demotion of persistent losers.
    pub adaptive: bool,
    /// Consecutive losses after which an adaptive portfolio demotes a
    /// strategy.
    pub demote_after: usize,
    /// Every `probe_every`-th solve re-races demoted strategies so they
    /// can win their way back in.
    pub probe_every: usize,
    /// smprt pool threads used for the race; `0` or `1` solves inline on
    /// the caller. The answer is bitwise-identical either way.
    pub pool_threads: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            strategies: Strategy::ALL.to_vec(),
            budget: SimTime::from_millis(250),
            adaptive: false,
            demote_after: 8,
            probe_every: 8,
            pool_threads: 0,
        }
    }
}

impl PortfolioConfig {
    /// Parse a `--portfolio` spec: `all`, a comma list of strategy names,
    /// either optionally prefixed with `adaptive:`. Examples:
    /// `all`, `simplex,greedy`, `adaptive:all`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = PortfolioConfig::default();
        let mut rest = spec.trim();
        if let Some(r) = rest.strip_prefix("adaptive:") {
            cfg.adaptive = true;
            rest = r;
        }
        if rest.is_empty() {
            return Err("empty --portfolio spec (try 'all')".to_string());
        }
        if rest != "all" {
            let mut strategies = Vec::new();
            for part in rest.split(',') {
                let s = Strategy::parse(part.trim())?;
                if strategies.contains(&s) {
                    return Err(format!("duplicate strategy '{}'", s.name()));
                }
                strategies.push(s);
            }
            strategies.sort(); // priority order
            cfg.strategies = strategies;
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Builder: override the race budget.
    pub fn with_budget(mut self, budget: SimTime) -> Self {
        self.budget = budget;
        self
    }

    /// Builder: race on an smprt pool of `threads` threads.
    pub fn with_pool_threads(mut self, threads: usize) -> Self {
        self.pool_threads = threads;
        self
    }

    /// Check internal consistency (non-empty, sorted-unique strategies,
    /// positive budget and bandit parameters).
    pub fn validate(&self) -> Result<(), String> {
        if self.strategies.is_empty() {
            return Err("portfolio needs at least one strategy".to_string());
        }
        for pair in self.strategies.windows(2) {
            if pair[0] >= pair[1] {
                return Err("portfolio strategies must be unique and in priority order".to_string());
            }
        }
        if self.budget <= SimTime::ZERO {
            return Err("portfolio budget must be positive".to_string());
        }
        if self.demote_after == 0 || self.probe_every == 0 {
            return Err("demote_after and probe_every must be >= 1".to_string());
        }
        Ok(())
    }

    /// True if `s` is part of the raced set.
    pub fn enabled(&self, s: Strategy) -> bool {
        self.strategies.contains(&s)
    }
}

/// Per-strategy accounting, exposed in `SimReport` and bench JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StrategyStats {
    /// Races this strategy took part in.
    pub attempts: usize,
    /// Races it won.
    pub wins: usize,
    /// Attempts that returned `LpError::Infeasible`.
    pub infeasible: usize,
    /// Attempts that returned any other error or an invalid solution.
    pub errors: usize,
    /// Attempts whose modelled cost exceeded the budget.
    pub timeouts: usize,
    /// Times the adaptive mode demoted this strategy.
    pub demotions: usize,
    /// Total modelled virtual solve cost, capped at the budget per race.
    pub virtual_cost: SimTime,
}

/// Whole-portfolio accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PortfolioStats {
    /// Portfolio races run.
    pub solves: usize,
    /// Races in which no strategy produced a feasible answer in budget.
    pub no_winner: usize,
    /// Per-strategy stats, indexed by [`Strategy::code`].
    pub per_strategy: [StrategyStats; Strategy::COUNT],
}

impl PortfolioStats {
    /// Stats row for one strategy.
    pub fn of(&self, s: Strategy) -> &StrategyStats {
        &self.per_strategy[s.code() as usize]
    }
}

/// One raced strategy's outcome, kept for tracing.
#[derive(Clone, Debug)]
pub struct CandidateSummary {
    pub strategy: Strategy,
    /// Shared score ([`score`]); `None` when the strategy failed or timed
    /// out.
    pub score: Option<f64>,
    /// Modelled virtual cost of this attempt (uncapped).
    pub cost: SimTime,
    pub timed_out: bool,
}

/// A successful portfolio race.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The winning allocation.
    pub solution: AllocationSolution,
    pub winner: Strategy,
    /// The winner's shared score.
    pub score: f64,
    /// All raced candidates in priority order.
    pub candidates: Vec<CandidateSummary>,
    /// Virtual cost of the race: `max_s min(cost_s, budget)`.
    pub race_cost: SimTime,
}

/// The racing engine. Owns an optional smprt pool; all mutable state is
/// deterministic accounting (stats, fault masks, bandit streaks).
pub struct PortfolioEngine {
    config: PortfolioConfig,
    pool: Option<Pool>,
    /// Nesting count of active fault-injected outages per strategy.
    fault_disabled: [usize; Strategy::COUNT],
    /// Consecutive races lost, per strategy (adaptive mode).
    loss_streak: [usize; Strategy::COUNT],
    demoted: [bool; Strategy::COUNT],
    stats: PortfolioStats,
}

impl PortfolioEngine {
    /// Build an engine; spawns the smprt pool when `pool_threads >= 2`.
    pub fn new(config: PortfolioConfig) -> Result<Self, String> {
        config.validate()?;
        let pool = (config.pool_threads >= 2).then(|| Pool::new(config.pool_threads));
        Ok(PortfolioEngine {
            config,
            pool,
            fault_disabled: [0; Strategy::COUNT],
            loss_streak: [0; Strategy::COUNT],
            demoted: [false; Strategy::COUNT],
            stats: PortfolioStats::default(),
        })
    }

    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    pub fn stats(&self) -> &PortfolioStats {
        &self.stats
    }

    /// Mark the start of a fault-injected outage of `s` (nests).
    pub fn disable_strategy(&mut self, s: Strategy) {
        self.fault_disabled[s.code() as usize] += 1;
    }

    /// Mark the end of a fault-injected outage of `s`.
    pub fn enable_strategy(&mut self, s: Strategy) {
        let slot = &mut self.fault_disabled[s.code() as usize];
        *slot = slot.saturating_sub(1);
    }

    /// True while any outage window covering `s` is active.
    pub fn is_fault_disabled(&self, s: Strategy) -> bool {
        self.fault_disabled[s.code() as usize] > 0
    }

    /// True if the adaptive mode currently demotes `s`.
    pub fn is_demoted(&self, s: Strategy) -> bool {
        self.demoted[s.code() as usize]
    }

    /// Strategies that would be raced on the next solve.
    pub fn runnable(&self) -> Vec<Strategy> {
        let probe =
            self.config.adaptive && self.stats.solves.is_multiple_of(self.config.probe_every);
        self.config
            .strategies
            .iter()
            .copied()
            .filter(|&s| !self.is_fault_disabled(s))
            .filter(|&s| !self.config.adaptive || probe || !self.is_demoted(s))
            .collect()
    }

    /// Race the runnable strategies on `problem` and pick the winner by
    /// `(score, priority)`. Errors when nothing is runnable or nothing
    /// produced a feasible answer within budget.
    pub fn solve(&mut self, problem: &AllocationProblem) -> Result<PortfolioOutcome, LpError> {
        let runnable = self.runnable();
        self.stats.solves += 1;
        if runnable.is_empty() {
            self.stats.no_winner += 1;
            return Err(LpError::Infeasible);
        }

        // The race: one pre-assigned slot per strategy; each strategy is a
        // pure function of `problem`, so pool scheduling cannot affect the
        // result, only the wall-clock of computing it.
        let slots: Vec<OnceLock<(Result<AllocationSolution, LpError>, SimTime)>> =
            (0..runnable.len()).map(|_| OnceLock::new()).collect();
        let body = |i: usize| {
            let _ = slots[i].set(run_strategy(runnable[i], problem));
        };
        match &self.pool {
            Some(pool) => pool.parallel_for(runnable.len(), 1, body),
            None => (0..runnable.len()).for_each(body),
        }

        // Sequential, deterministic post-processing in priority order.
        let budget = self.config.budget;
        let mut candidates = Vec::with_capacity(runnable.len());
        let mut best: Option<(f64, usize, AllocationSolution)> = None;
        let mut first_err: Option<LpError> = None;
        let mut race_cost = SimTime::ZERO;
        for (i, &s) in runnable.iter().enumerate() {
            let (result, cost) = slots[i].get().expect("race slot filled").clone();
            let stat = &mut self.stats.per_strategy[s.code() as usize];
            stat.attempts += 1;
            let charged = cost.min(budget);
            stat.virtual_cost += charged;
            race_cost = race_cost.max(charged);
            let timed_out = cost > budget;
            let mut summary = CandidateSummary {
                strategy: s,
                score: None,
                cost,
                timed_out,
            };
            if timed_out {
                stat.timeouts += 1;
                first_err.get_or_insert(LpError::IterationLimit);
            } else {
                match result {
                    Err(LpError::Infeasible) => {
                        stat.infeasible += 1;
                        first_err.get_or_insert(LpError::Infeasible);
                    }
                    Err(e) => {
                        stat.errors += 1;
                        first_err.get_or_insert(e);
                    }
                    Ok(sol) => {
                        if !valid_solution(problem, &sol) {
                            stat.errors += 1;
                            first_err.get_or_insert(LpError::Infeasible);
                        } else {
                            let sc = score(problem, &sol);
                            summary.score = Some(sc);
                            // Strict `<` keeps the earliest (highest-
                            // priority) strategy on ties.
                            if best.as_ref().is_none_or(|(b, _, _)| sc < *b) {
                                best = Some((sc, i, sol));
                            }
                        }
                    }
                }
            }
            candidates.push(summary);
        }

        let Some((win_score, win_idx, solution)) = best else {
            self.stats.no_winner += 1;
            return Err(first_err.unwrap_or(LpError::Infeasible));
        };
        let winner = runnable[win_idx];
        self.stats.per_strategy[winner.code() as usize].wins += 1;
        for &s in &runnable {
            let code = s.code() as usize;
            if s == winner {
                self.loss_streak[code] = 0;
                if self.demoted[code] {
                    // A demoted strategy that wins its probe is reinstated.
                    self.demoted[code] = false;
                }
            } else {
                self.loss_streak[code] += 1;
                if self.config.adaptive
                    && !self.demoted[code]
                    && self.loss_streak[code] >= self.config.demote_after
                {
                    self.demoted[code] = true;
                    self.stats.per_strategy[code].demotions += 1;
                }
            }
        }
        Ok(PortfolioOutcome {
            solution,
            winner,
            score: win_score,
            candidates,
            race_cost,
        })
    }
}

/// Run one strategy and model its virtual cost.
fn run_strategy(
    s: Strategy,
    problem: &AllocationProblem,
) -> (Result<AllocationSolution, LpError>, SimTime) {
    let result = match s {
        Strategy::Simplex => solve_lp(problem),
        Strategy::Flow => solve_flow(problem, FLOW_TOL),
        Strategy::Greedy => greedy_waterfill(problem),
        Strategy::Local => local_converge(problem),
    };
    let iterations = result.as_ref().map(|sol| sol.iterations).unwrap_or(0);
    (result, modelled_cost(s, problem, iterations))
}

/// Deterministic virtual cost of one strategy attempt: elementary
/// operation counts scaled by [`COST_PER_OP`]. Wall-clock never enters.
pub fn modelled_cost(s: Strategy, problem: &AllocationProblem, iterations: usize) -> SimTime {
    let edges: usize = problem.adjacency.iter().map(|adj| adj.len()).sum();
    let sweep = problem.appranks() + problem.nodes() + edges;
    let ops = match s {
        // Each simplex pivot touches the full tableau row set.
        Strategy::Simplex => iterations.max(1) * sweep,
        // ~64 bisection steps, each a graph-sweeping max-flow check.
        Strategy::Flow => 64 * (sweep + 2),
        // One pass per granted core plus the final share computation.
        Strategy::Greedy => problem.node_cores.iter().sum::<usize>() + sweep,
        // A single proportional split per node.
        Strategy::Local => sweep,
    };
    SimTime::from_secs_f64(ops as f64 * COST_PER_OP)
}

/// The shared portfolio objective: `max_a work_a / (speed-weighted cores
/// of a)`, minus the paper's keep-local incentive scaled by the fraction
/// of home-owned cores — the same `δ = incentive / (total_cores + 1)`
/// tiebreak the LP applies. Lower is better. `INFINITY` marks an apprank
/// with work but no capacity (an invalid allocation).
pub fn score(problem: &AllocationProblem, sol: &AllocationSolution) -> f64 {
    let mut load: f64 = 0.0;
    let mut home_cores = 0usize;
    for (a, cores) in sol.cores.iter().enumerate() {
        let eff: f64 = cores
            .iter()
            .zip(&problem.adjacency[a])
            .map(|(&c, &n)| c as f64 * problem.node_speed[n])
            .sum();
        home_cores += cores[0];
        if problem.work[a] > 0.0 {
            if eff <= 0.0 {
                return f64::INFINITY;
            }
            load = load.max(problem.work[a] / eff);
        }
    }
    let total: f64 = problem.node_cores.iter().sum::<usize>() as f64;
    load - problem.keep_local_incentive * home_cores as f64 / (total + 1.0)
}

/// Structural feasibility of a candidate: shapes match the adjacency,
/// every worker keeps its ≥ 1 DLB core, and no node is oversubscribed.
fn valid_solution(problem: &AllocationProblem, sol: &AllocationSolution) -> bool {
    if sol.cores.len() != problem.appranks() || sol.work_share.len() != problem.appranks() {
        return false;
    }
    let mut used = vec![0usize; problem.nodes()];
    for (a, cores) in sol.cores.iter().enumerate() {
        if cores.len() != problem.adjacency[a].len()
            || sol.work_share[a].len() != problem.adjacency[a].len()
        {
            return false;
        }
        for (&c, &n) in cores.iter().zip(&problem.adjacency[a]) {
            if c == 0 {
                return false;
            }
            used[n] += c;
        }
    }
    used.iter()
        .zip(&problem.node_cores)
        .all(|(&u, &cap)| u <= cap)
}

/// Largest-remainder split of `total` units proportional to `weights`
/// (ties to the lower index). All-zero weights split evenly.
fn largest_remainder(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    let quotas: Vec<f64> = if sum > 0.0 {
        weights.iter().map(|w| total as f64 * w / sum).collect()
    } else {
        vec![total as f64 / weights.len().max(1) as f64; weights.len()]
    };
    let mut out: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let mut left = total - out.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&i, &j| {
        let (ri, rj) = (quotas[i] - quotas[i].floor(), quotas[j] - quotas[j].floor());
        rj.partial_cmp(&ri).unwrap().then(i.cmp(&j))
    });
    for &i in &order {
        if left == 0 {
            break;
        }
        out[i] += 1;
        left -= 1;
    }
    out
}

/// Greedy water-filling (the portfolio's own heuristic): after the 1-core
/// DLB floor, grant the remaining cores one at a time to the apprank with
/// the highest current load `work_a / eff_a` (ties to the lower apprank),
/// placing each core on its first adjacent node with free capacity (home
/// first). Work splits proportional to the resulting effective cores.
pub fn greedy_waterfill(problem: &AllocationProblem) -> Result<AllocationSolution, LpError> {
    problem.validate()?;
    let appranks = problem.appranks();
    let mut cores: Vec<Vec<usize>> = problem
        .adjacency
        .iter()
        .map(|adj| vec![1usize; adj.len()])
        .collect();
    let mut free = problem.node_cores.clone();
    for adj in &problem.adjacency {
        for &n in adj {
            free[n] -= 1; // validate() guarantees this cannot underflow
        }
    }
    let eff = |cores: &[Vec<usize>], a: usize| -> f64 {
        cores[a]
            .iter()
            .zip(&problem.adjacency[a])
            .map(|(&c, &n)| c as f64 * problem.node_speed[n])
            .sum()
    };
    let total_work: f64 = problem.work.iter().sum();
    let spare: usize = free.iter().sum();
    if total_work <= 0.0 {
        // Nothing to balance: split each node's spare cores evenly over
        // its workers (mirrors the LP's no-work path).
        for (n, &spare_n) in free.iter().enumerate() {
            let workers: Vec<(usize, usize)> = (0..appranks)
                .flat_map(|a| {
                    problem.adjacency[a]
                        .iter()
                        .enumerate()
                        .filter(move |&(_, &m)| m == n)
                        .map(move |(k, _)| (a, k))
                })
                .collect();
            if workers.is_empty() {
                continue;
            }
            let split = largest_remainder(spare_n, &vec![1.0; workers.len()]);
            for ((a, k), extra) in workers.into_iter().zip(split) {
                cores[a][k] += extra;
            }
        }
    } else {
        for _ in 0..spare {
            // Most-loaded apprank that still has somewhere to grow.
            let mut pick: Option<(f64, usize)> = None;
            for a in 0..appranks {
                if !problem.adjacency[a].iter().any(|&n| free[n] > 0) {
                    continue;
                }
                let load = problem.work[a] / eff(&cores, a);
                if pick.as_ref().is_none_or(|&(best, _)| load > best) {
                    pick = Some((load, a));
                }
            }
            let Some((_, a)) = pick else { break };
            let k = problem.adjacency[a]
                .iter()
                .position(|&n| free[n] > 0)
                .expect("picked apprank has free capacity");
            cores[a][k] += 1;
            free[problem.adjacency[a][k]] -= 1;
        }
    }
    let mut objective: f64 = 0.0;
    let mut work_share = Vec::with_capacity(appranks);
    for a in 0..appranks {
        let e = eff(&cores, a);
        if problem.work[a] > 0.0 {
            objective = objective.max(problem.work[a] / e);
        }
        work_share.push(
            cores[a]
                .iter()
                .zip(&problem.adjacency[a])
                .map(|(&c, &n)| problem.work[a] * (c as f64 * problem.node_speed[n]) / e)
                .collect(),
        );
    }
    Ok(AllocationSolution {
        objective,
        work_share,
        cores,
        iterations: 0,
    })
}

/// Local convergence as a portfolio strategy: all work stays home; each
/// node splits its spare cores among its *home* appranks proportional to
/// their work (largest remainder, ties low); helpers keep the 1-core
/// floor. Mirrors `LocalPolicy` but runs on an [`AllocationProblem`].
pub fn local_converge(problem: &AllocationProblem) -> Result<AllocationSolution, LpError> {
    problem.validate()?;
    let appranks = problem.appranks();
    let mut cores: Vec<Vec<usize>> = problem
        .adjacency
        .iter()
        .map(|adj| vec![1usize; adj.len()])
        .collect();
    let mut free = problem.node_cores.clone();
    for adj in &problem.adjacency {
        for &n in adj {
            free[n] -= 1;
        }
    }
    for (n, &spare_n) in free.iter().enumerate() {
        if spare_n == 0 {
            continue;
        }
        let home: Vec<usize> = (0..appranks)
            .filter(|&a| problem.adjacency[a][0] == n)
            .collect();
        if !home.is_empty() {
            let weights: Vec<f64> = home.iter().map(|&a| problem.work[a]).collect();
            for (&a, extra) in home.iter().zip(largest_remainder(spare_n, &weights)) {
                cores[a][0] += extra;
            }
        } else {
            // No home apprank (possible in dead-node sub-problems): split
            // evenly over whatever helpers live here.
            let helpers: Vec<(usize, usize)> = (0..appranks)
                .flat_map(|a| {
                    problem.adjacency[a]
                        .iter()
                        .enumerate()
                        .filter(move |&(_, &m)| m == n)
                        .map(move |(k, _)| (a, k))
                })
                .collect();
            if helpers.is_empty() {
                continue;
            }
            let split = largest_remainder(spare_n, &vec![1.0; helpers.len()]);
            for ((a, k), extra) in helpers.into_iter().zip(split) {
                cores[a][k] += extra;
            }
        }
    }
    let mut objective: f64 = 0.0;
    let work_share: Vec<Vec<f64>> = (0..appranks)
        .map(|a| {
            let mut share = vec![0.0; problem.adjacency[a].len()];
            share[0] = problem.work[a];
            share
        })
        .collect();
    for (a, cores_a) in cores.iter().enumerate() {
        if problem.work[a] <= 0.0 {
            continue;
        }
        let eff: f64 = cores_a
            .iter()
            .zip(&problem.adjacency[a])
            .map(|(&c, &n)| c as f64 * problem.node_speed[n])
            .sum();
        objective = objective.max(problem.work[a] / eff);
    }
    Ok(AllocationSolution {
        objective,
        work_share,
        cores,
        iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `appranks` over `nodes`, each apprank homed at `a % nodes` with
    /// `degree - 1` helper nodes following in a ring.
    fn ring_problem(
        appranks: usize,
        nodes: usize,
        degree: usize,
        cores: usize,
    ) -> AllocationProblem {
        let adjacency: Vec<Vec<usize>> = (0..appranks)
            .map(|a| (0..degree).map(|s| (a + s) % nodes).collect())
            .collect();
        let mut rng = tlb_rng::Rng::seed_from_u64(11 + appranks as u64);
        let work = (0..appranks).map(|_| rng.range_f64(1.0, 40.0)).collect();
        AllocationProblem::new(work, adjacency, cores, nodes)
    }

    #[test]
    fn strategy_codes_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::from_code(s.code()), Some(s));
            assert_eq!(Strategy::parse(s.name()), Ok(s));
        }
        assert!(Strategy::parse("cplex").is_err());
    }

    #[test]
    fn config_parse_variants() {
        let all = PortfolioConfig::parse("all").unwrap();
        assert_eq!(all.strategies, Strategy::ALL.to_vec());
        assert!(!all.adaptive);

        let two = PortfolioConfig::parse("greedy,simplex").unwrap();
        assert_eq!(two.strategies, vec![Strategy::Simplex, Strategy::Greedy]);

        let ad = PortfolioConfig::parse("adaptive:all").unwrap();
        assert!(ad.adaptive);

        assert!(PortfolioConfig::parse("").is_err());
        assert!(PortfolioConfig::parse("simplex,simplex").is_err());
        assert!(PortfolioConfig::parse("cplex").is_err());
        assert!(PortfolioConfig::default()
            .with_budget(SimTime::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn greedy_and_local_produce_valid_allocations() {
        for &(appranks, nodes, degree, cores) in &[
            (4usize, 2usize, 2usize, 8usize),
            (8, 4, 3, 16),
            (6, 3, 1, 12),
        ] {
            let p = ring_problem(appranks, nodes, degree, cores);
            for solver in [greedy_waterfill, local_converge] {
                let sol = solver(&p).unwrap();
                assert!(valid_solution(&p, &sol));
                assert!(score(&p, &sol).is_finite());
                // Every node's cores fully distributed.
                let mut used = vec![0usize; nodes];
                for (a, cs) in sol.cores.iter().enumerate() {
                    for (&c, &n) in cs.iter().zip(&p.adjacency[a]) {
                        used[n] += c;
                    }
                }
                assert_eq!(used, p.node_cores, "all cores assigned");
                // Work is conserved.
                for (a, shares) in sol.work_share.iter().enumerate() {
                    let sum: f64 = shares.iter().sum();
                    assert!((sum - p.work[a]).abs() < 1e-9 * p.work[a].max(1.0));
                }
            }
        }
    }

    #[test]
    fn greedy_handles_zero_work() {
        let mut p = ring_problem(4, 2, 2, 8);
        p.work = vec![0.0; 4];
        let sol = greedy_waterfill(&p).unwrap();
        assert!(valid_solution(&p, &sol));
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn winner_never_scores_worse_than_any_candidate() {
        let mut engine = PortfolioEngine::new(PortfolioConfig::default()).unwrap();
        for size in [(4, 2, 2, 8), (8, 4, 3, 48), (12, 6, 4, 48)] {
            let p = ring_problem(size.0, size.1, size.2, size.3);
            let out = engine.solve(&p).unwrap();
            for c in &out.candidates {
                if let Some(sc) = c.score {
                    assert!(
                        out.score <= sc + 1e-12,
                        "winner {} ({}) vs {} ({sc})",
                        out.winner.name(),
                        out.score,
                        c.strategy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn race_is_bitwise_identical_across_pool_threads() {
        let problems: Vec<AllocationProblem> =
            (0..6).map(|i| ring_problem(6 + i, 3, 2, 24)).collect();
        let run = |threads: usize| {
            let cfg = PortfolioConfig::default().with_pool_threads(threads);
            let mut engine = PortfolioEngine::new(cfg).unwrap();
            let mut picks = Vec::new();
            for p in &problems {
                let out = engine.solve(p).unwrap();
                picks.push((out.winner, out.score.to_bits(), out.solution.cores));
            }
            (picks, engine.stats().clone())
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn tiny_budget_times_everything_out() {
        let cfg = PortfolioConfig::default().with_budget(SimTime::from_nanos(1));
        let mut engine = PortfolioEngine::new(cfg).unwrap();
        let p = ring_problem(4, 2, 2, 8);
        assert!(matches!(engine.solve(&p), Err(LpError::IterationLimit)));
        let stats = engine.stats();
        assert_eq!(stats.no_winner, 1);
        for s in Strategy::ALL {
            assert_eq!(stats.of(s).timeouts, 1);
        }
    }

    #[test]
    fn fault_disable_degrades_then_recovers() {
        let mut engine = PortfolioEngine::new(PortfolioConfig::default()).unwrap();
        let p = ring_problem(4, 2, 2, 8);
        for s in Strategy::ALL {
            engine.disable_strategy(s);
        }
        assert_eq!(engine.runnable(), vec![]);
        assert!(engine.solve(&p).is_err());
        engine.enable_strategy(Strategy::Greedy);
        let out = engine.solve(&p).unwrap();
        assert_eq!(out.winner, Strategy::Greedy);
        for s in Strategy::ALL {
            engine.enable_strategy(s);
        }
        assert_eq!(engine.runnable().len(), Strategy::COUNT);
    }

    #[test]
    fn adaptive_demotes_persistent_losers_and_probes_them() {
        let cfg = PortfolioConfig {
            adaptive: true,
            demote_after: 3,
            probe_every: 5,
            ..PortfolioConfig::default()
        };
        let mut engine = PortfolioEngine::new(cfg).unwrap();
        let p = ring_problem(8, 4, 3, 16);
        for _ in 0..4 {
            engine.solve(&p).unwrap();
        }
        // Some strategy must have lost 3 races in a row by now.
        let demoted: Vec<Strategy> = Strategy::ALL
            .iter()
            .copied()
            .filter(|&s| engine.is_demoted(s))
            .collect();
        assert!(!demoted.is_empty(), "expected at least one demotion");
        let racing = engine.stats().of(demoted[0]).attempts;
        // Solves 5, 6 ... skip demoted strategies except the probe at
        // solves % 5 == 0.
        for _ in 4..11 {
            engine.solve(&p).unwrap();
        }
        let after = engine.stats().of(demoted[0]).attempts;
        assert!(
            after > racing,
            "probe races must include demoted strategies"
        );
        assert!(after < racing + 7, "demoted strategy must skip most races");
    }

    #[test]
    fn stats_account_every_attempt() {
        let mut engine = PortfolioEngine::new(PortfolioConfig::default()).unwrap();
        for i in 0..5 {
            let p = ring_problem(4 + i, 2, 2, 16);
            engine.solve(&p).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.solves, 5);
        let wins: usize = Strategy::ALL.iter().map(|&s| stats.of(s).wins).sum();
        assert_eq!(wins, 5);
        for s in Strategy::ALL {
            let st = stats.of(s);
            assert_eq!(st.attempts, 5);
            assert!(st.virtual_cost > SimTime::ZERO);
            assert_eq!(st.timeouts + st.infeasible + st.errors, 0);
        }
    }
}
