//! In-tree deterministic pseudo-random numbers.
//!
//! The workspace must build and test with no network access, so it carries
//! its own generator instead of depending on `rand`/`rand_chacha`. Two
//! classic, public-domain algorithms cover everything the simulator needs:
//!
//! * **SplitMix64** expands a 64-bit seed (or a label hash) into
//!   well-distributed state words, and is the only mixer used when deriving
//!   substreams;
//! * **Xoshiro256++** generates the actual streams: 256 bits of state, a
//!   period of 2²⁵⁶−1, and a few nanoseconds per draw — markedly cheaper
//!   than the ChaCha20 rounds the previous external dependency ran for
//!   every sample in the expander candidate search and the workload
//!   generators.
//!
//! # Stream splitting
//!
//! [`Rng::split`] and [`Rng::split_u64`] derive *independent substreams*
//! from a parent generator without consuming any of the parent's output:
//! the substream seed is a SplitMix64 mix of the parent's *root key* and
//! the label. Two guarantees follow:
//!
//! 1. **Reproducibility** — a substream depends only on the root seed and
//!    the label path that produced it, never on how many numbers any other
//!    stream drew. Task A's randomness cannot perturb task B's.
//! 2. **Distinctness** — distinct labels give distinct SplitMix64 inputs
//!    and therefore (with overwhelming probability) unrelated streams.
//!
//! This is what lets per-candidate expander searches and per-task workload
//! draws run in parallel while staying bitwise reproducible.

/// SplitMix64 step: advance `state` and return the next mixed output.
/// The standard constants from Steele, Lea & Flood (2014).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string — stable label hashing for [`Rng::split`].
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic Xoshiro256++ stream seeded via SplitMix64.
///
/// Cloning copies the stream position; [`Rng::split`] derives an
/// *independent* substream instead (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
    /// Root key this stream was derived from; splitting mixes labels into
    /// this key rather than into the evolving state, so substreams do not
    /// depend on the parent's position.
    key: u64,
}

impl Rng {
    /// Seed a stream from a 64-bit value (SplitMix64 state expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state is the one invalid Xoshiro state; SplitMix64
        // cannot produce four zero outputs in a row, but keep the guard
        // explicit for hand-rolled constructions.
        debug_assert!(s.iter().any(|&w| w != 0));
        Rng { s, key: seed }
    }

    /// The root key this stream (or its ancestors) was seeded with.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Derive the substream for a string label. Does not consume parent
    /// output; the same `(root seed, label)` pair always yields the same
    /// stream.
    pub fn split(&self, label: &str) -> Rng {
        self.split_u64(fnv1a(label.as_bytes()))
    }

    /// Derive the substream for a numeric label (e.g. a candidate or task
    /// index). `split_u64(a) != split_u64(b)` streams for `a != b`.
    pub fn split_u64(&self, label: u64) -> Rng {
        // Mix key and label through two SplitMix64 steps so that
        // (key, label) and (key', label') collide only if the full mixed
        // 64-bit seeds collide.
        let mut sm = self.key;
        let k1 = splitmix64(&mut sm);
        let mut sm2 = k1 ^ label;
        let derived = splitmix64(&mut sm2);
        Rng::seed_from_u64(derived)
    }

    /// Next 64 uniformly random bits (Xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi` or the bounds are not
    /// finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + (hi - lo) * self.f64_unit()
    }

    /// Uniform integer in `[0, bound)` by rejection sampling (unbiased).
    /// Panics if `bound == 0`.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject the final partial block so every residue is equally
        // likely.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "bad range");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Standard normal deviate (Box–Muller; uses two uniform draws).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.f64_unit().max(1e-300);
        let u2 = self.f64_unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.u64_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.u64_below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn split_is_independent_of_parent_position() {
        let parent_fresh = Rng::seed_from_u64(7);
        let mut parent_used = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            parent_used.next_u64();
        }
        let mut s1 = parent_fresh.split("task");
        let mut s2 = parent_used.split("task");
        for _ in 0..32 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn distinct_labels_distinct_streams() {
        let root = Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let mut s = root.split_u64(i);
            assert!(seen.insert(s.next_u64()), "stream collision at label {i}");
        }
        let mut a = root.split("alpha");
        let mut b = root.split("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn nested_splits_differ() {
        let root = Rng::seed_from_u64(9);
        let mut aa = root.split("a").split("a");
        let mut ab = root.split("a").split("b");
        let mut ba = root.split("b").split("a");
        let x = aa.next_u64();
        assert_ne!(x, ab.next_u64());
        assert_ne!(x, ba.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64_unit();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_f64_bounds() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.range_f64(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn u64_below_unbiased_small_bound() {
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.u64_below(3) as usize] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn range_usize_covers_all_values() {
        let mut rng = Rng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.range_usize(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let g = rng.gaussian();
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from_u64(12);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn pick_empty_and_nonempty() {
        let mut rng = Rng::seed_from_u64(13);
        assert_eq!(rng.pick::<u8>(&[]), None);
        let v = [10, 20, 30];
        assert!(v.contains(rng.pick(&v).unwrap()));
    }
}
