//! Randomized tests for the expander graph generator: structural
//! invariants over random machine shapes. Seeded `tlb-rng` loops stand in
//! for proptest (no registry deps).

use tlb_expander::{generate_circulant, generate_random, BipartiteGraph, ExpanderConfig};
use tlb_rng::Rng;

// (nodes, appranks_per_node, degree)
fn shape(rng: &mut Rng) -> (usize, usize, usize) {
    let nodes = rng.range_usize(2, 24);
    let per = rng.range_usize(1, 3);
    let degree = rng.range_usize(1, 5).min(nodes);
    (nodes, per, degree)
}

const CASES: usize = 64;

/// Every generated graph is biregular, home-rooted, and sorted.
#[test]
fn generated_graphs_satisfy_invariants() {
    let root = Rng::seed_from_u64(0xE59_0001);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let (nodes, per, degree) = shape(&mut rng);
        let seed = rng.range_u64(0, 1000);
        let appranks = nodes * per;
        let cfg = ExpanderConfig::new(appranks, nodes, degree).with_seed(seed);
        let g = BipartiteGraph::generate(&cfg).unwrap();
        g.check().unwrap();
        // Apprank degree and node degree as configured.
        for a in 0..appranks {
            assert_eq!(g.nodes_of(a).len(), degree, "case {case}");
            assert_eq!(g.home_node(a), a / per, "case {case}");
        }
        for n in 0..nodes {
            assert_eq!(g.appranks_on(n).len(), degree * per, "case {case}");
        }
        // Adjacency is consistent both ways.
        for a in 0..appranks {
            for &n in g.nodes_of(a) {
                assert!(g.appranks_on(n).contains(&a), "case {case}");
            }
        }
    }
}

/// Generation is deterministic in the seed — in particular, the parallel
/// candidate screening must pick the same winner as any other run.
#[test]
fn generation_is_deterministic() {
    let root = Rng::seed_from_u64(0xE59_0002);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let (nodes, per, degree) = shape(&mut rng);
        let seed = rng.range_u64(0, 1000);
        let appranks = nodes * per;
        let cfg = ExpanderConfig::new(appranks, nodes, degree).with_seed(seed);
        let g1 = BipartiteGraph::generate(&cfg).unwrap();
        let g2 = BipartiteGraph::generate(&cfg).unwrap();
        for a in 0..appranks {
            assert_eq!(g1.nodes_of(a), g2.nodes_of(a), "case {case}");
        }
    }
}

/// Degree ≥ 2 graphs from the screened generator are connected for
/// every shape we can build (the screening's whole point).
#[test]
fn screened_graphs_are_connected() {
    let root = Rng::seed_from_u64(0xE59_0003);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let (nodes, per, degree) = shape(&mut rng);
        if degree < 2 {
            continue;
        }
        let seed = rng.range_u64(0, 200);
        let appranks = nodes * per;
        let cfg = ExpanderConfig::new(appranks, nodes, degree).with_seed(seed);
        let g = BipartiteGraph::generate(&cfg).unwrap();
        assert!(g.is_connected(), "case {case}");
    }
}

/// The exact isoperimetric number is monotone in the degree for the
/// circulant family (more strides can only improve expansion).
#[test]
fn circulant_expansion_monotone_in_degree() {
    for nodes in 4usize..14 {
        let mut last = 0.0f64;
        for degree in 1..=3usize.min(nodes - 1) {
            let strides: Vec<usize> = (1..degree).collect();
            let cfg = ExpanderConfig::new(nodes, nodes, degree);
            let g = generate_circulant(&cfg, &strides).unwrap();
            let iso = tlb_expander::isoperimetric_exact(&g);
            assert!(iso >= last - 1e-12, "degree {degree}: {iso} < {last}");
            last = iso;
        }
    }
}

/// Save/load round-trips exactly for any generated graph.
#[test]
fn persistence_roundtrip() {
    let root = Rng::seed_from_u64(0xE59_0004);
    for case in 0..CASES {
        let mut rng = root.split_u64(case as u64);
        let (nodes, per, degree) = shape(&mut rng);
        let seed = rng.range_u64(0, 100);
        let appranks = nodes * per;
        let cfg = ExpanderConfig::new(appranks, nodes, degree).with_seed(seed);
        let g = BipartiteGraph::generate(&cfg).unwrap();
        let dir = std::env::temp_dir().join("tlb_expander_prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g_{nodes}_{per}_{degree}_{seed}.json"));
        g.save_json(&path).unwrap();
        let g2 = BipartiteGraph::load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for a in 0..appranks {
            assert_eq!(g.nodes_of(a), g2.nodes_of(a), "case {case}");
        }
        assert_eq!(g.config(), g2.config(), "case {case}");
    }
}

/// Distinct candidate indices derive distinct RNG substreams: the graphs
/// drawn for different candidates of the same root seed must differ (for
/// shapes with enough freedom). This pins the `split_u64`-based candidate
/// seed derivation against the ad-hoc multiply-derived seeds it replaced,
/// which could collide or correlate.
#[test]
fn candidate_substreams_are_distinct() {
    let cfg = ExpanderConfig::new(64, 32, 4);
    let r = Rng::seed_from_u64(cfg.seed);
    let mut distinct = 0;
    let total = 8;
    let graphs: Vec<_> = (0..total)
        .map(|c| generate_random(&cfg, r.split_u64(c as u64).next_u64()).unwrap())
        .collect();
    for i in 0..total {
        for j in i + 1..total {
            let same = (0..64).all(|a| graphs[i].nodes_of(a) == graphs[j].nodes_of(a));
            if !same {
                distinct += 1;
            }
        }
    }
    assert_eq!(
        distinct,
        total * (total - 1) / 2,
        "some candidate pairs drew identical graphs"
    );
}

/// The same label always derives the same substream, regardless of how far
/// the parent stream has advanced (split is position-independent).
#[test]
fn candidate_substream_position_independent() {
    let cfg = ExpanderConfig::new(32, 16, 3);
    let r1 = Rng::seed_from_u64(cfg.seed);
    let mut r2 = Rng::seed_from_u64(cfg.seed);
    for _ in 0..100 {
        r2.next_u64(); // advance the parent
    }
    for c in 0..4u64 {
        let g1 = generate_random(&cfg, r1.split_u64(c).next_u64()).unwrap();
        let g2 = generate_random(&cfg, r2.split_u64(c).next_u64()).unwrap();
        for a in 0..32 {
            assert_eq!(g1.nodes_of(a), g2.nodes_of(a), "candidate {c}");
        }
    }
}
