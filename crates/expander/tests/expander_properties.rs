//! Property tests for the expander graph generator: structural invariants
//! over random machine shapes.

use proptest::prelude::*;
use tlb_expander::{generate_circulant, BipartiteGraph, ExpanderConfig};

fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    // (nodes, appranks_per_node, degree)
    (2usize..24, 1usize..3, 1usize..5)
        .prop_map(|(nodes, per, degree)| (nodes, per, degree.min(nodes)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated graph is biregular, home-rooted, and sorted.
    #[test]
    fn generated_graphs_satisfy_invariants((nodes, per, degree) in shapes(), seed in 0u64..1000) {
        let appranks = nodes * per;
        let cfg = ExpanderConfig::new(appranks, nodes, degree).with_seed(seed);
        let g = BipartiteGraph::generate(&cfg).unwrap();
        g.check().unwrap();
        // Apprank degree and node degree as configured.
        for a in 0..appranks {
            prop_assert_eq!(g.nodes_of(a).len(), degree);
            prop_assert_eq!(g.home_node(a), a / per);
        }
        for n in 0..nodes {
            prop_assert_eq!(g.appranks_on(n).len(), degree * per);
        }
        // Adjacency is consistent both ways.
        for a in 0..appranks {
            for &n in g.nodes_of(a) {
                prop_assert!(g.appranks_on(n).contains(&a));
            }
        }
    }

    /// Generation is deterministic in the seed.
    #[test]
    fn generation_is_deterministic((nodes, per, degree) in shapes(), seed in 0u64..1000) {
        let appranks = nodes * per;
        let cfg = ExpanderConfig::new(appranks, nodes, degree).with_seed(seed);
        let g1 = BipartiteGraph::generate(&cfg).unwrap();
        let g2 = BipartiteGraph::generate(&cfg).unwrap();
        for a in 0..appranks {
            prop_assert_eq!(g1.nodes_of(a), g2.nodes_of(a));
        }
    }

    /// Degree ≥ 2 graphs from the screened generator are connected for
    /// every shape we can build (the screening’s whole point).
    #[test]
    fn screened_graphs_are_connected((nodes, per, degree) in shapes(), seed in 0u64..200) {
        prop_assume!(degree >= 2);
        let appranks = nodes * per;
        let cfg = ExpanderConfig::new(appranks, nodes, degree).with_seed(seed);
        let g = BipartiteGraph::generate(&cfg).unwrap();
        prop_assert!(g.is_connected());
    }

    /// The exact isoperimetric number is monotone in the degree for the
    /// circulant family (more strides can only improve expansion).
    #[test]
    fn circulant_expansion_monotone_in_degree(nodes in 4usize..14) {
        let mut last = 0.0f64;
        for degree in 1..=3usize.min(nodes - 1) {
            let strides: Vec<usize> = (1..degree).collect();
            let cfg = ExpanderConfig::new(nodes, nodes, degree);
            let g = generate_circulant(&cfg, &strides).unwrap();
            let iso = tlb_expander::isoperimetric_exact(&g);
            prop_assert!(iso >= last - 1e-12, "degree {degree}: {iso} < {last}");
            last = iso;
        }
    }

    /// Save/load round-trips bytes exactly for any generated graph.
    #[test]
    fn persistence_roundtrip((nodes, per, degree) in shapes(), seed in 0u64..100) {
        let appranks = nodes * per;
        let cfg = ExpanderConfig::new(appranks, nodes, degree).with_seed(seed);
        let g = BipartiteGraph::generate(&cfg).unwrap();
        let dir = std::env::temp_dir().join("tlb_expander_prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g_{nodes}_{per}_{degree}_{seed}.json"));
        g.save_json(&path).unwrap();
        let g2 = BipartiteGraph::load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for a in 0..appranks {
            prop_assert_eq!(g.nodes_of(a), g2.nodes_of(a));
        }
    }
}
