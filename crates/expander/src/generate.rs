//! Graph construction: random biregular matching with screening, plus a
//! deterministic circulant fallback.

#![allow(clippy::needless_range_loop)] // index loops touch several arrays at once
use crate::graph::{BipartiteGraph, ExpanderConfig, ExpanderError};
use tlb_rng::Rng;

/// Screen one candidate: generate, check connectivity, score by the
/// (sampled or exact) isoperimetric number.
fn screen_candidate(config: &ExpanderConfig, rng: Rng) -> Option<(f64, BipartiteGraph)> {
    let g = generate_random_from(config, rng).ok()?;
    if !g.is_connected() {
        return None;
    }
    let iso = g.isoperimetric_number();
    Some((iso, g))
}

/// Top-level generation: draw `config.candidates` random graphs, screen by
/// connectivity (always) and the isoperimetric number (cheap enough up to a
/// few thousand appranks via sampling), and keep the best. Falls back to the
/// deterministic circulant construction when the random search fails — e.g.
/// when the shape is so constrained that almost all random matchings have
/// multi-edges.
///
/// Candidates are screened in parallel (scoped threads, one per candidate
/// up to the machine's parallelism); each candidate derives its own RNG
/// substream via [`Rng::split_u64`], so results are identical to the
/// serial screening regardless of thread count or completion order: the
/// winner is the highest isoperimetric number, ties broken by lowest
/// candidate index (the serial "first best wins" rule).
pub(crate) fn generate(config: &ExpanderConfig) -> Result<BipartiteGraph, ExpanderError> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    generate_with_workers(config, workers)
}

/// [`BipartiteGraph::generate`] with an explicit screening thread count
/// (1 = serial). Results are identical for every `workers` value; the
/// knob exists for scaling measurements (`perf_smoke`) and tests.
pub fn generate_with_workers(
    config: &ExpanderConfig,
    workers: usize,
) -> Result<BipartiteGraph, ExpanderError> {
    config.validate()?;
    if config.degree == 1 {
        // Baseline: no offloading, the graph is just the home placement.
        return generate_circulant(config, &[]);
    }

    let root = Rng::seed_from_u64(config.seed);
    let workers = workers.min(config.candidates).max(1);
    let mut results: Vec<Option<(f64, BipartiteGraph)>> = Vec::new();
    if workers <= 1 || config.candidates <= 1 {
        for candidate in 0..config.candidates {
            results.push(screen_candidate(config, root.split_u64(candidate as u64)));
        }
    } else {
        results.resize_with(config.candidates, || None);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots = std::sync::Mutex::new(&mut results);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let candidate = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if candidate >= config.candidates {
                        return;
                    }
                    let r = screen_candidate(config, root.split_u64(candidate as u64));
                    slots.lock().unwrap()[candidate] = r;
                });
            }
        });
    }
    let mut best: Option<(f64, BipartiteGraph)> = None;
    // Reduce in candidate order: ties keep the earliest candidate, exactly
    // as the serial loop's strict `iso > best` comparison did.
    for r in results.into_iter().flatten() {
        let (iso, g) = r;
        if best.as_ref().is_none_or(|(b, _)| iso > *b) {
            best = Some((iso, g));
        }
    }
    match best {
        Some((iso, g)) if iso >= config.min_expansion || config.min_expansion <= 1.0 => Ok(g),
        Some((_, g)) => Ok(g), // keep best-effort graph; caller may re-screen
        None => {
            // Deterministic fallback: circulant strides 1, 2, ..., degree-1.
            let strides: Vec<usize> = (1..config.degree).collect();
            let g = generate_circulant(config, &strides)?;
            if g.is_connected() {
                Ok(g)
            } else {
                Err(ExpanderError::GenerationFailed {
                    attempts: config.candidates,
                })
            }
        }
    }
}

/// One attempt at a uniformly random simple biregular graph.
///
/// Home edges are fixed by block placement. The remaining `degree - 1`
/// helper edges per apprank are drawn by the configuration model: a pool of
/// node *slots* (each node has `node_degree - appranks_per_node` helper
/// slots) is shuffled and dealt to appranks; a deal that would create a
/// duplicate apprank–node pair triggers a local swap repair, and if repair
/// fails the whole attempt is retried with a perturbed shuffle (up to 64
/// times).
pub fn generate_random(
    config: &ExpanderConfig,
    seed: u64,
) -> Result<BipartiteGraph, ExpanderError> {
    generate_random_from(config, Rng::seed_from_u64(seed))
}

/// [`generate_random`] driven by an already-derived RNG stream (the
/// parallel candidate screening hands each candidate its own substream).
fn generate_random_from(
    config: &ExpanderConfig,
    mut rng: Rng,
) -> Result<BipartiteGraph, ExpanderError> {
    config.validate()?;
    let per_node = config.appranks_per_node();
    let helper_slots_per_node = config.node_degree() - per_node;
    let helpers_per_apprank = config.degree - 1;

    const MAX_ATTEMPTS: usize = 64;
    'attempt: for _ in 0..MAX_ATTEMPTS {
        // Slot pool: each node appears once per helper slot.
        let mut pool: Vec<usize> = (0..config.nodes)
            .flat_map(|n| std::iter::repeat_n(n, helper_slots_per_node))
            .collect();
        rng.shuffle(&mut pool);

        let mut adj: Vec<Vec<usize>> = (0..config.appranks)
            .map(|a| vec![BipartiteGraph::expected_home(config, a)])
            .collect();

        let mut cursor = 0usize;
        for a in 0..config.appranks {
            for _ in 0..helpers_per_apprank {
                // Find a pool entry not already adjacent to `a`.
                let mut take = cursor;
                let mut found = false;
                // Search forward, then attempt a swap with any later entry.
                for probe in cursor..pool.len() {
                    if !adj[a].contains(&pool[probe]) {
                        pool.swap(cursor, probe);
                        take = cursor;
                        found = true;
                        break;
                    }
                }
                if !found {
                    // Repair: swap an already-consumed slot belonging to some
                    // earlier apprank. Cheaper to just retry the attempt.
                    continue 'attempt;
                }
                adj[a].push(pool[take]);
                cursor += 1;
            }
            adj[a][1..].sort_unstable();
            // Re-check for a duplicate of home that sneaked in via sorting
            // (cannot happen: contains() included home). Keep helper list
            // strictly increasing; duplicates abort the attempt.
            if adj[a][1..].windows(2).any(|w| w[0] == w[1]) {
                continue 'attempt;
            }
        }
        return BipartiteGraph::from_adjacency(config.clone(), adj);
    }
    Err(ExpanderError::GenerationFailed {
        attempts: MAX_ATTEMPTS,
    })
}

/// Deterministic circulant construction: apprank `a` with home node `h`
/// offloads to nodes `h + stride (mod nodes)` for each given stride.
/// Strides must be distinct, nonzero modulo `nodes`.
///
/// Used for the degree-1 baseline (empty strides), for tiny graphs where
/// the paper uses a "known-optimal solution", and as a last-resort fallback.
pub fn generate_circulant(
    config: &ExpanderConfig,
    strides: &[usize],
) -> Result<BipartiteGraph, ExpanderError> {
    config.validate()?;
    if strides.len() != config.degree - 1 {
        return Err(ExpanderError::Invalid(format!(
            "need {} strides for degree {}, got {}",
            config.degree - 1,
            config.degree,
            strides.len()
        )));
    }
    let mut adj = Vec::with_capacity(config.appranks);
    for a in 0..config.appranks {
        let home = BipartiteGraph::expected_home(config, a);
        let mut nodes = vec![home];
        for &s in strides {
            let n = (home + s) % config.nodes;
            if n == home || nodes.contains(&n) {
                return Err(ExpanderError::Invalid(format!(
                    "stride {s} collides for apprank {a} (home {home}, {} nodes)",
                    config.nodes
                )));
            }
            nodes.push(n);
        }
        nodes[1..].sort_unstable();
        adj.push(nodes);
    }
    BipartiteGraph::from_adjacency(config.clone(), adj)
}

/// Convenience used by tests and benches: generate with retry over seeds
/// until a connected graph appears (guaranteed to terminate for any shape
/// where the circulant fallback is connected).
pub(crate) fn _generate_connected(
    config: &ExpanderConfig,
    rng: &mut Rng,
) -> Result<BipartiteGraph, ExpanderError> {
    for _ in 0..32 {
        let g = generate_random(config, rng.next_u64())?;
        if g.is_connected() {
            return Ok(g);
        }
    }
    let strides: Vec<usize> = (1..config.degree).collect();
    generate_circulant(config, &strides)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_biregular() {
        let cfg = ExpanderConfig::new(32, 16, 3);
        let g = generate_random(&cfg, 42).unwrap();
        g.check().unwrap();
        assert_eq!(g.node_degree(), 6);
        for n in 0..16 {
            assert_eq!(g.appranks_on(n).len(), 6);
        }
    }

    #[test]
    fn random_graph_includes_home() {
        let cfg = ExpanderConfig::new(8, 4, 2);
        let g = generate_random(&cfg, 1).unwrap();
        for a in 0..8 {
            assert_eq!(g.home_node(a), a / 2);
            assert!(g.can_offload_to(a, a / 2));
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let cfg = ExpanderConfig::new(16, 8, 3);
        let g1 = generate_random(&cfg, 9).unwrap();
        let g2 = generate_random(&cfg, 9).unwrap();
        for a in 0..16 {
            assert_eq!(g1.nodes_of(a), g2.nodes_of(a));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ExpanderConfig::new(64, 32, 4);
        let g1 = generate_random(&cfg, 1).unwrap();
        let g2 = generate_random(&cfg, 2).unwrap();
        let same = (0..64).all(|a| g1.nodes_of(a) == g2.nodes_of(a));
        assert!(!same, "two seeds produced identical graphs");
    }

    #[test]
    fn circulant_baseline_degree_one() {
        let cfg = ExpanderConfig::new(8, 8, 1);
        let g = generate_circulant(&cfg, &[]).unwrap();
        for a in 0..8 {
            assert_eq!(g.nodes_of(a), &[a]);
        }
    }

    #[test]
    fn circulant_ring_connected() {
        let cfg = ExpanderConfig::new(8, 8, 2);
        let g = generate_circulant(&cfg, &[1]).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn circulant_rejects_colliding_stride() {
        let cfg = ExpanderConfig::new(4, 4, 2);
        assert!(generate_circulant(&cfg, &[4]).is_err()); // stride = nodes → home
        assert!(generate_circulant(&cfg, &[0]).is_err());
    }

    #[test]
    fn top_level_generate_connected_graphs() {
        for &(appranks, nodes, degree) in &[
            (4usize, 4usize, 2usize),
            (8, 8, 3),
            (32, 16, 3),
            (64, 64, 4),
            (128, 64, 4),
        ] {
            let cfg = ExpanderConfig::new(appranks, nodes, degree).with_seed(3);
            let g = BipartiteGraph::generate(&cfg).unwrap();
            g.check().unwrap();
            assert!(
                g.is_connected(),
                "{appranks}x{nodes} d{degree} disconnected"
            );
        }
    }

    #[test]
    fn degree_full_connectivity() {
        // degree == nodes means every apprank reaches every node.
        let cfg = ExpanderConfig::new(4, 4, 4);
        let g = BipartiteGraph::generate(&cfg).unwrap();
        for a in 0..4 {
            for n in 0..4 {
                assert!(g.can_offload_to(a, n));
            }
        }
    }
}
